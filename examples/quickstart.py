"""Quickstart: evaluating safe and unsafe queries with partial lineage.

Run:  python examples/quickstart.py
"""

from repro import (
    PartialLineageEvaluator,
    ProbabilisticDatabase,
    brute_force_probability,
    dnf_probability,
    is_hierarchical,
    lifted_probability,
    lineage_of_query,
    parse_query,
)
from repro.query.grounding import world_satisfies


def main() -> None:
    # A tuple-independent probabilistic database: each tuple carries the
    # probability that it is present.
    db = ProbabilisticDatabase()
    db.add_relation("Person", ("name",), {
        ("ann",): 0.9,
        ("bob",): 0.7,
        ("carl",): 1.0,          # certain tuple
    })
    db.add_relation("Visited", ("name", "city"), {
        ("ann", "paris"): 0.8,
        ("ann", "tokyo"): 0.5,
        ("bob", "paris"): 0.6,
        ("carl", "tokyo"): 0.95,
    })
    db.add_relation("Capital", ("city",), {
        ("paris",): 1.0,
        ("tokyo",): 0.9,
    })

    # ---------------------------------------------------------- safe query
    q_safe = parse_query("Person(x), Visited(x, y)")
    print(f"q_safe = {q_safe}")
    print(f"  hierarchical (safe)? {is_hierarchical(q_safe)}")
    print(f"  lifted (extensional) Pr = {lifted_probability(q_safe, db):.6f}")

    # -------------------------------------------------------- unsafe query
    # The pattern R(x), S(x,y), T(y) — #P-hard in general (Section 4.1).
    q_unsafe = parse_query("Person(x), Visited(x, y), Capital(y)")
    print(f"\nq_unsafe = {q_unsafe}")
    print(f"  hierarchical (safe)? {is_hierarchical(q_unsafe)}")

    result = PartialLineageEvaluator(db).evaluate_query(q_unsafe)
    print(f"  partial lineage Pr   = {result.boolean_probability():.6f}")
    print(f"  offending tuples     = {result.offending_count} "
          f"(conditioned; the rest was handled extensionally)")
    print(f"  And-Or network size  = {len(result.network)} nodes")

    # Cross-check against the intensional baseline and the ground truth.
    f, probs = lineage_of_query(q_unsafe, db)
    print(f"  full-lineage DPLL Pr = {dnf_probability(f, probs):.6f} "
          f"({len(f)} clauses over {len(f.variables())} tuple variables)")
    oracle = brute_force_probability(db, lambda w: world_satisfies(q_unsafe, w))
    print(f"  possible worlds Pr   = {oracle:.6f}   (exhaustive enumeration)")

    # ----------------------------------------------- per-answer probabilities
    q_heads = parse_query("q(y) :- Person(x), Visited(x, y), Capital(y)")
    answers = PartialLineageEvaluator(db).evaluate_query(q_heads)
    print(f"\n{q_heads}")
    for row, p in sorted(answers.answer_probabilities().items()):
        print(f"  Pr[{row[0]}] = {p:.6f}")


if __name__ == "__main__":
    main()
