"""Approximate confidence computation beyond the exact frontier.

Figure 6's message: exact evaluation hits a phase transition as the data gets
denser — "beyond this one must resort to approximate computations". This
script builds an instance past the comfortable exact region and compares the
approximate toolbox on one hard query answer:

* forward Monte-Carlo on the And-Or network (Section 7's suggestion);
* Karp-Luby on the partial-lineage DNF vs on the full lineage — the partial
  DNF is the smaller inference problem, as Section 4.2 promises;
* [19]-style interval bounds with an epsilon knob;
* OBDD compilation [17] as a second exact reference.

Run:  python examples/approximation.py
"""

import random
import time

from repro import (
    PartialLineageEvaluator,
    approximate_probability,
    build_obdd,
    karp_luby,
    lineage_of_query,
    parse_query,
    partial_lineage_dnf,
)
from repro.core.approximate import forward_sample_marginal, hoeffding_samples
from repro.workload.generator import WorkloadParams, generate_database


def main() -> None:
    db = generate_database(
        WorkloadParams(N=1, m=80, fanout=3, r_f=0.5, r_d=1.0, seed=99)
    )
    q = parse_query("R1(h,x), S1(h,x,y), R2(h,y)")
    result = PartialLineageEvaluator(db).evaluate_query(q, ["R1", "S1", "R2"])
    ((row, node, scale),) = list(result.relation.items())
    print(f"instance: m=80, r_f=0.5 — {result.offending_count} offending "
          f"tuples, network of {len(result.network)} nodes")

    from repro.core.inference import compute_marginal

    start = time.perf_counter()
    exact = scale * compute_marginal(result.network, node)
    print(f"\nexact Pr(q) = {exact:.6f}   "
          f"({time.perf_counter() - start:.3f}s)")

    n = hoeffding_samples(epsilon=0.01, delta=0.05)
    print(f"\nHoeffding says {n} samples give ±0.01 at 95% confidence:")
    start = time.perf_counter()
    est = scale * forward_sample_marginal(
        result.network, node, n, random.Random(0)
    )
    print(f"  forward sampling      = {est:.6f}  "
          f"(err {abs(est - exact):.5f}, {time.perf_counter() - start:.3f}s)")

    pdnf, pprobs = partial_lineage_dnf(result.network, node)
    fdnf, fprobs = lineage_of_query(q, db)
    print(f"\npartial-lineage DNF: {len(pdnf)} clauses / "
          f"{len(pdnf.variables())} vars;  full lineage: {len(fdnf)} clauses "
          f"/ {len(fdnf.variables())} vars")
    for label, dnf, probs, factor in (
        ("partial", pdnf, pprobs, scale),
        ("full   ", fdnf, fprobs, 1.0),
    ):
        start = time.perf_counter()
        est = factor * karp_luby(dnf, probs, 20000, random.Random(1))
        print(f"  Karp-Luby {label} DNF = {est:.6f}  "
              f"(err {abs(est - exact):.5f}, "
              f"{time.perf_counter() - start:.3f}s)")

    print("\ninterval bounds on the partial DNF:")
    for epsilon in (0.2, 0.02, 0.002):
        start = time.perf_counter()
        iv = approximate_probability(pdnf, pprobs, epsilon=epsilon)
        print(f"  ε={epsilon:<6} -> [{scale * iv.low:.5f}, "
              f"{scale * iv.high:.5f}]  "
              f"({time.perf_counter() - start:.3f}s)")
        assert iv.low - 1e-9 <= exact / scale <= iv.high + 1e-9

    start = time.perf_counter()
    obdd = build_obdd(pdnf)
    value = scale * obdd.probability(pprobs)
    print(f"\nOBDD of the partial DNF: {len(obdd)} nodes, "
          f"Pr = {value:.6f} ({time.perf_counter() - start:.3f}s) — and "
          f"reusable: changing tuple probabilities re-evaluates in one pass.")


if __name__ == "__main__":
    main()
