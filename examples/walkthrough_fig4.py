"""Figure 4 / Section 4.2 walkthrough: the partial-lineage pipeline, step by
step, on the paper's running example q :- R(x), S(x,y), T(y).

R's values a1, a2 violate the functional dependency x -> y in S (they join
with two S tuples each) and become the offending tuples; a3, a4 are handled
purely extensionally. Prints every operator's output, reproducing the partial
lineage the paper shows:

    pi_y(R ⋈ S) = { (b1, 0.11·r1 ∨ 0.13·r2 ∨ 0.10612),
                    (b2, 0.12·r1 ∨ 0.14·r2) }

Run:  python examples/walkthrough_fig4.py
"""

from repro import AndOrNetwork, EPSILON, PLRelation, ProbabilisticDatabase
from repro.core.operators import independent_project, deduplicate, pl_join, project
from repro.core.inference import compute_marginal
from repro.core.network import NodeKind


def show(rel: PLRelation, title: str) -> None:
    print(f"\n{title}")
    net = rel.network
    for row, l, p in rel.items():
        if l == EPSILON:
            lineage = "ε"
        else:
            kind = net.kind(l).value
            lineage = f"n{l}({kind})"
        print(f"  {row!r:24s} l={lineage:10s} p={p:.6g}")


def show_network(net: AndOrNetwork) -> None:
    print("\nAnd-Or network:")
    for v in net.nodes():
        kind = net.kind(v)
        if kind is NodeKind.LEAF:
            label = "ε" if v == EPSILON else f"leaf P={net.leaf_probability(v)}"
            print(f"  n{v}: {label}")
        else:
            parents = ", ".join(f"n{w}@{q:g}" for w, q in net.parents(v))
            print(f"  n{v}: {kind.value}({parents})")


def main() -> None:
    db = ProbabilisticDatabase()
    db.add_relation("R", ("A",), {
        ("a1",): 0.5, ("a2",): 0.5, ("a3",): 0.3, ("a4",): 0.4,
    })
    db.add_relation("S", ("A", "B"), {
        ("a1", "b1"): 0.11, ("a1", "b2"): 0.12,
        ("a2", "b1"): 0.13, ("a2", "b2"): 0.14,
        ("a3", "b1"): 0.15, ("a4", "b1"): 0.16,
    })
    db.add_relation("T", ("B",), {("b1",): 0.2, ("b2",): 0.3})

    net = AndOrNetwork()
    r = PLRelation.from_base(db["R"], net)
    s = PLRelation.from_base(db["S"], net)
    t = PLRelation.from_base(db["T"], net)
    show(r, "R (base; all lineage ε)")

    # Join 1: R ⋈ S. a1, a2 are uncertain with two join partners each, so
    # cSet conditioning (Cond in Fig. 4) fires on them first.
    joined, conditioned = pl_join(r, s, ("A",))
    print(f"\nCond: conditioned {conditioned} offending tuples (a1, a2)")
    show(joined, "R ⋈_pL S (offending rows keep symbols; rest are numbers)")

    # Projection π_y = independent project + deduplication.
    ip = independent_project(joined, ("B",))
    print("\nIndProj (group by value AND lineage, OR the probabilities):")
    for row, l, p in ip:
        print(f"  {row!r:10s} l={'ε' if l == EPSILON else f'n{l}'} p={p:.6g}")
    projected = deduplicate(joined, ("B",), ip)
    show(projected, "Dedup: duplicate groups become Or nodes "
                    "(note ε's edge probability 0.10612)")

    # Join 2 is 1-1 (each y-row meets one T tuple): no conditioning needed.
    final_join, conditioned2 = pl_join(projected, t, ("B",))
    print(f"\nSecond join conditioned {conditioned2} tuples (1-1: data safe)")
    show(final_join, "π_y(R ⋈ S) ⋈_pL T")

    answer = project(final_join, ())
    show(answer, "π_∅(...): the Boolean answer tuple")
    show_network(net)

    ((l, p),) = [(answer.lineage(()), answer.probability(()))]
    marginal = compute_marginal(net, l)
    print(f"\nPr(q) = p · Pr(n{l}=1) = {p:.6g} · {marginal:.6g} "
          f"= {p * marginal:.6g}")

    from repro import brute_force_probability, parse_query
    from repro.query.grounding import world_satisfies

    q = parse_query("R(x), S(x,y), T(y)")
    oracle = brute_force_probability(db, lambda w: world_satisfies(q, w))
    print(f"possible-worlds check          = {oracle:.6g}")


if __name__ == "__main__":
    main()
