"""Sensor-network monitoring — one of the paper's motivating applications.

A building has rooms instrumented with sensors. Sensor deployment records are
uncertain (installation logs are stale), readings are probabilistic event
detections, and the event catalogue marks which events are alarms with a
confidence. We ask: *for each room, what is the probability that some sensor
in it detected an alarm-class event?*

    q(room) :- Deployed(room, sensor), Detected(sensor, event), Alarm(event)

This is the P1/S1 pattern of Table 1 — unsafe in general, but *nearly* data
safe here: most sensors detected at most one event (the functional dependency
sensor -> event mostly holds), so partial lineage conditions only a handful
of offending tuples while the bulk of the computation is extensional.

Run:  python examples/sensor_network.py
"""

import random

from repro import PartialLineageEvaluator, ProbabilisticDatabase, parse_query
from repro.bench.harness import run_full_lineage
from repro.lineage.dnf import answer_lineages
from repro.lineage.exact import dnf_probability


def build_database(seed: int = 42) -> ProbabilisticDatabase:
    rng = random.Random(seed)
    rooms = [f"room{i}" for i in range(6)]
    sensors = [f"s{i}" for i in range(30)]
    events = [f"e{i}" for i in range(40)]

    db = ProbabilisticDatabase()
    deployed = {}
    for i, sensor in enumerate(sensors):
        room = rooms[i % len(rooms)]
        # installation logs: mostly reliable, occasionally uncertain
        deployed[(room, sensor)] = 1.0 if rng.random() < 0.6 else rng.uniform(0.6, 0.95)
    db.add_relation("Deployed", ("room", "sensor"), deployed)

    detected = {}
    for sensor in sensors:
        # most sensors saw one event; ~15% are noisy and saw several
        count = 1 if rng.random() < 0.85 else rng.randint(2, 3)
        for event in rng.sample(events, count):
            detected[(sensor, event)] = rng.uniform(0.3, 0.99)
    db.add_relation("Detected", ("sensor", "event"), detected)

    alarm = {}
    for event in events:
        if rng.random() < 0.5:
            alarm[(event,)] = rng.uniform(0.5, 1.0)
    db.add_relation("Alarm", ("event",), alarm)
    return db


def main() -> None:
    db = build_database()
    q = parse_query("q(room) :- Deployed(room, sensor), "
                    "Detected(sensor, event), Alarm(event)")
    result = PartialLineageEvaluator(db).evaluate_query(
        q, ["Deployed", "Detected", "Alarm"]
    )
    answers = result.answer_probabilities()

    print("Alarm probability per room (partial lineage):")
    for room, p in sorted(answers.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(p * 40)
        print(f"  {room[0]:8s} {p:6.4f}  {bar}")

    total = db.total_tuples()
    print(f"\n{total} tuples; {result.offending_count} offending "
          f"({100 * result.offending_count / total:.1f}% conditioned — the "
          f"rest was pure in-database arithmetic)")
    print(f"And-Or network: {len(result.network)} nodes")

    # cross-check against full intensional evaluation
    dnfs, probs = answer_lineages(q, db)
    for room, f in dnfs.items():
        exact = dnf_probability(f, probs)
        assert abs(exact - answers[room]) < 1e-9, room
    print("Cross-checked against full-lineage DPLL: all rooms agree.")


if __name__ == "__main__":
    main()
