"""Data cleaning / integration — the smooth extensional-intensional transition.

Two customer databases were merged. Entity resolution produced *probabilistic
matches*, and the merged address table is dirty: a customer should have one
address (the functional dependency customer -> address), but unresolved
duplicates violate it for some customers. We ask whether (and how probably)
each marketing region contains a high-value customer:

    q(region) :- InRegion(region, addr), LivesAt(cust, addr), HighValue(cust)

The dirtier the data (more FD violations in LivesAt), the more offending
tuples partial lineage must condition on — this script sweeps the dirtiness
and prints how the evaluation *smoothly* shifts from fully extensional
(0 conditioned tuples) to increasingly intensional, while the answers remain
exact at every point (checked against the full-lineage DPLL).

Run:  python examples/data_cleaning.py
"""

import random
import time

from repro import PartialLineageEvaluator, ProbabilisticDatabase, parse_query
from repro.lineage.dnf import answer_lineages
from repro.lineage.exact import dnf_probability


def build_database(dirtiness: float, seed: int = 7) -> ProbabilisticDatabase:
    rng = random.Random(seed)
    regions = [f"region{i}" for i in range(4)]
    addresses = [f"addr{i}" for i in range(40)]
    customers = [f"cust{i}" for i in range(40)]

    db = ProbabilisticDatabase()
    db.add_relation(
        "InRegion",
        ("region", "addr"),
        {(regions[i % len(regions)], a): 1.0 for i, a in enumerate(addresses)},
    )

    lives_at = {}
    for cust in customers:
        # a clean customer has one address; a dirty one has unresolved
        # duplicates pointing at several addresses
        n = 1 if rng.random() > dirtiness else rng.randint(2, 3)
        for addr in rng.sample(addresses, n):
            lives_at[(cust, addr)] = rng.uniform(0.5, 0.95)
    db.add_relation("LivesAt", ("cust", "addr"), lives_at)

    db.add_relation(
        "HighValue",
        ("cust",),
        {(c,): rng.uniform(0.05, 0.9) for c in customers if rng.random() < 0.4},
    )
    return db


def main() -> None:
    q = parse_query(
        "q(region) :- InRegion(region, addr), LivesAt(cust, addr), "
        "HighValue(cust)"
    )
    order = ["HighValue", "LivesAt", "InRegion"]
    print(f"{q}\n")
    print(f"{'dirtiness':>9s}  {'offending':>9s}  {'network':>8s}  "
          f"{'PL time':>8s}  {'DPLL time':>9s}  agreement")
    for dirtiness in (0.0, 0.1, 0.25, 0.5, 0.75, 1.0):
        db = build_database(dirtiness)
        start = time.perf_counter()
        result = PartialLineageEvaluator(db).evaluate_query(q, order)
        answers = result.answer_probabilities()
        pl_time = time.perf_counter() - start

        start = time.perf_counter()
        dnfs, probs = answer_lineages(q, db)
        exact = {r: dnf_probability(f, probs) for r, f in dnfs.items()}
        fl_time = time.perf_counter() - start

        agree = set(exact) == set(answers) and all(
            abs(exact[r] - answers[r]) < 1e-9 for r in exact
        )
        print(f"{dirtiness:9.2f}  {result.offending_count:9d}  "
              f"{len(result.network):8d}  {pl_time:7.3f}s  {fl_time:8.3f}s  "
              f"{'exact match' if agree else 'MISMATCH'}")

    db = build_database(0.25)
    result = PartialLineageEvaluator(db).evaluate_query(q, order)
    print("\nPer-region probabilities at dirtiness 0.25:")
    for region, p in sorted(result.answer_probabilities().items()):
        print(f"  {region[0]:8s} {p:.4f}")


if __name__ == "__main__":
    main()
