"""Beyond tuple-independence: block-independent-disjoint (BID) data.

Section 8 lists "evaluate queries over more complicated models" as future
work; BID is the canonical next model — tuples grouped into blocks of
mutually exclusive alternatives (an entity has exactly one true value, we
just don't know which).

Scenario: a people-directory integration. Entity resolution produced, per
person, a *distribution over home cities* (alternatives of one block — they
cannot all be true). City records carry their own confidence. We ask which
persons probably live in a covered city, and contrast the BID semantics with
the (wrong) tuple-independent reading of the same numbers.

Run:  python examples/bid_model.py
"""

from repro import (
    BIDDatabase,
    ProbabilisticDatabase,
    PartialLineageEvaluator,
    bid_query_probability,
    parse_query,
)
from repro.query.grounding import world_satisfies


def main() -> None:
    bid = BIDDatabase()
    bid.add_relation(
        "LivesIn", ("person", "city"), ("person",),   # key: person
        {
            ("ann", "paris"): 0.6,
            ("ann", "tokyo"): 0.4,          # ann lives in exactly one city
            ("bob", "paris"): 0.5,
            ("bob", "oslo"): 0.3,           # 0.2: bob matched no city at all
            ("eva", "oslo"): 0.8,   # 0.2: eva matched no city
        },
    )
    bid.add_relation(
        "Covered", ("city",), ("city",),
        {("paris",): 0.9, ("oslo",): 0.7},
    )

    q = parse_query("LivesIn(x, y), Covered(y)")
    p_bid = bid_query_probability(q, bid)
    p_truth = bid.brute_force_probability(lambda w: world_satisfies(q, w))
    print(f"Pr[somebody lives in a covered city], BID semantics: "
          f"{p_bid:.6f}  (worlds check: {p_truth:.6f})")

    # The same numbers misread as tuple-independent: alternatives of one
    # person wrongly treated as independent events.
    ti = ProbabilisticDatabase()
    ti.add_relation("LivesIn", ("person", "city"), {
        ("ann", "paris"): 0.6, ("ann", "tokyo"): 0.4,
        ("bob", "paris"): 0.5, ("bob", "oslo"): 0.3,
        ("eva", "oslo"): 0.8,
    })
    ti.add_relation("Covered", ("city",), {("paris",): 0.9, ("oslo",): 0.7})
    p_ti = (
        PartialLineageEvaluator(ti).evaluate_query(q).boolean_probability()
    )
    print(f"same numbers, tuple-independent misreading:        {p_ti:.6f}")
    print(f"difference: {abs(p_ti - p_bid):.6f} — exclusivity matters.\n")

    print("per-person probability of living in a covered city (BID):")
    for person in ("ann", "bob", "eva"):
        qp = parse_query(f"LivesIn('{person}', y), Covered(y)")
        print(f"  {person}: {bid_query_probability(qp, bid):.4f}")


if __name__ == "__main__":
    main()
