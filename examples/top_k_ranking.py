"""Top-k ranking over probabilistic answers (in the style of Ré et al. [21]).

A movie-recommendation integration: uncertain viewing records, probabilistic
genre tags, and noisy similarity links. We want the 3 movies most probably
enjoyed by a target user's taste cluster — without paying exact inference for
every candidate. The multisimulation-style loop samples all candidates'
And-Or lineage jointly, prunes clear losers by confidence intervals, and
finalises only the survivors exactly.

Run:  python examples/top_k_ranking.py
"""

import random
import time

from repro import PartialLineageEvaluator, ProbabilisticDatabase, parse_query
from repro.core.topk import top_k_answers


def build_database(seed: int = 11) -> ProbabilisticDatabase:
    rng = random.Random(seed)
    movies = [f"m{i:02d}" for i in range(25)]
    users = [f"u{i}" for i in range(12)]
    genres = ["drama", "scifi", "noir", "comedy"]

    db = ProbabilisticDatabase()
    watched = {}
    for user in users:
        for movie in rng.sample(movies, rng.randint(2, 6)):
            watched[(user, movie)] = rng.uniform(0.4, 1.0)
    db.add_relation("Watched", ("user", "movie"), watched)

    tagged = {}
    for movie in movies:
        for genre in rng.sample(genres, rng.randint(1, 2)):
            tagged[(movie, genre)] = rng.uniform(0.5, 1.0)
    db.add_relation("Tagged", ("movie", "genre"), tagged)

    likes = {}
    for user in users:
        for genre in rng.sample(genres, rng.randint(1, 3)):
            likes[(user, genre)] = rng.uniform(0.3, 0.95)
    db.add_relation("Likes", ("user", "genre"), likes)
    return db


def main() -> None:
    db = build_database()
    # probability that movie m is tagged with a genre some watcher of m likes
    q = parse_query(
        "q(movie) :- Watched(user, movie), Likes(user, genre), "
        "Tagged(movie, genre)"
    )
    result = PartialLineageEvaluator(db).evaluate_query(
        q, ["Watched", "Likes", "Tagged"]
    )
    n_answers = len(result.relation)
    print(f"{n_answers} candidate movies, "
          f"{result.offending_count} offending tuples conditioned\n")

    start = time.perf_counter()
    report = top_k_answers(result, 3, rng=random.Random(0), batch=300)
    topk_time = time.perf_counter() - start
    print(f"top-3 via multisimulation ({report.rounds} rounds, "
          f"{report.samples_spent} shared samples, "
          f"{report.pruned_early} candidates pruned early, "
          f"{topk_time:.3f}s):")
    for rank, answer in enumerate(report.answers, start=1):
        print(f"  {rank}. {answer.row[0]}  Pr = {answer.low:.4f}"
              f"{' (exact)' if answer.exact else ''}")

    start = time.perf_counter()
    exact = result.answer_probabilities()
    exact_time = time.perf_counter() - start
    ranked = sorted(exact.items(), key=lambda kv: -kv[1])[:3]
    print(f"\nexact ranking for comparison ({exact_time:.3f}s over all "
          f"{n_answers} answers):")
    for rank, (row, p) in enumerate(ranked, start=1):
        print(f"  {rank}. {row[0]}  Pr = {p:.4f}")
    assert [a.row for a in report.answers] == [row for row, _ in ranked]
    print("\nrankings agree.")


if __name__ == "__main__":
    main()
