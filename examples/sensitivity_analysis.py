"""What-if analysis: which dirty tuples drive an answer?

Partial lineage makes sensitivity analysis nearly free: after one
evaluation, each answer is a function of the *offending tuples only*
(everything clean was folded into constants), and compiling that function to
an OBDD lets us re-evaluate under hypothetical probabilities in microseconds.

Scenario: an insurance fraud screen. Claims link to incidents through
probabilistic entity resolution; some claimants match several incidents
(resolution conflicts = offending tuples). For the flagged region we ask:
*which unresolved match, if confirmed or refuted, would move the fraud
probability the most?* — i.e. where should a human reviewer spend time.

Run:  python examples/sensitivity_analysis.py
"""

import random

from repro import (
    PartialLineageEvaluator,
    ProbabilisticDatabase,
    WhatIfAnalysis,
    parse_query,
)


def build_database(seed: int = 4) -> ProbabilisticDatabase:
    rng = random.Random(seed)
    db = ProbabilisticDatabase()
    claimants = [f"c{i}" for i in range(10)]
    incidents = [f"i{i}" for i in range(14)]

    suspicious = {
        (c,): rng.uniform(0.2, 0.8) for c in claimants if rng.random() < 0.6
    }
    db.add_relation("Suspicious", ("claimant",), suspicious)

    matched = {}
    for c in claimants:
        # entity resolution: usually one incident, sometimes conflicts
        n = 1 if rng.random() < 0.7 else rng.randint(2, 3)
        for i in rng.sample(incidents, n):
            matched[(c, i)] = rng.uniform(0.3, 0.9)
    db.add_relation("MatchedTo", ("claimant", "incident"), matched)

    flagged = {
        (i,): rng.uniform(0.5, 1.0) for i in incidents if rng.random() < 0.5
    }
    db.add_relation("FlaggedIncident", ("incident",), flagged)
    return db


def main() -> None:
    db = build_database()
    q = parse_query(
        "q() :- Suspicious(c), MatchedTo(c, i), FlaggedIncident(i)"
    )
    result = PartialLineageEvaluator(db).evaluate_query(
        q, ["Suspicious", "MatchedTo", "FlaggedIncident"]
    )
    base = result.boolean_probability()
    print(f"Pr[some suspicious claimant matches a flagged incident] "
          f"= {base:.4f}")
    print(f"offending tuples (unresolved conflicts): "
          f"{result.offending_count}\n")

    analysis = WhatIfAnalysis(result)
    print("review priorities (largest probability swing first):")
    print(f"{'source':24s} {'row':16s} {'if refuted':>10s} "
          f"{'if confirmed':>12s} {'swing':>7s}")
    for s in analysis.sensitivities(())[:6]:
        print(f"{s.tuple.source:24s} {str(s.tuple.row):16s} "
              f"{s.when_absent:10.4f} {s.when_certain:12.4f} "
              f"{s.swing:7.4f}")

    top = analysis.sensitivities(())[0]
    confirmed = analysis.probability((), {top.tuple: 1.0})
    print(f"\nconfirming {top.tuple.source}{top.tuple.row} would move the "
          f"answer from {base:.4f} to {confirmed:.4f} — "
          f"recomputed via the compiled OBDD, no re-evaluation.")


if __name__ == "__main__":
    main()
