# Convenience targets. `install` prefers pip's editable mode and falls back
# to `setup.py develop` on toolchains without the `wheel` package (pip needs
# it to build PEP 660 editable wheels).

PYTHON ?= python

.PHONY: install test bench bench-full examples docs clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_SCALE=full $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script || exit 1; done

docs:
	$(PYTHON) docs/generate_api.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
