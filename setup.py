"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work on
environments whose setuptools predates PEP 660 editable wheels (the offline
toolchain this project targets).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Bridging intensional and extensional query evaluation in "
        "probabilistic databases (EDBT 2010 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "networkx>=3.0"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
