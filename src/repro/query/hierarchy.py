"""Hierarchy tests: safe and strictly hierarchical queries.

Background (Sections 1-4 of the paper):

* A self-join-free Boolean conjunctive query is **safe** — evaluable by an
  extensional plan on *every* instance — iff it is **hierarchical**: for every
  two existential variables ``x, y``, the subgoal sets ``Sg(x)`` and ``Sg(y)``
  are either disjoint or one contains the other (Dalvi-Suciu dichotomy [8]).
* A query is **strictly hierarchical** (Definition 4.1) if its atoms can be
  ordered so their variable sets form a chain ``x̄1 ⊆ x̄2 ⊆ ... ⊆ x̄m``.
  Theorem 4.2 shows these are exactly the queries whose lineage has bounded
  treewidth — a strict subset of the safe queries.

Head variables are treated as constants throughout: the benchmark queries
``q(h)`` are evaluated once per ``h`` value, so safety is judged on the
Boolean query obtained by fixing ``h``.
"""

from __future__ import annotations

from itertools import combinations

from repro.query.syntax import ConjunctiveQuery, Variable


def _existential_subgoals(query: ConjunctiveQuery) -> dict[Variable, frozenset[str]]:
    """``Sg(x)`` for each existential (non-head) variable ``x``."""
    return {v: query.subgoals_of(v) for v in query.existential_variables()}


def is_hierarchical(query: ConjunctiveQuery) -> bool:
    """Decide whether *query* is hierarchical (equivalently: safe).

    Examples
    --------
    >>> from repro.query.parser import parse_query
    >>> is_hierarchical(parse_query("R(x), S(x,y)"))
    True
    >>> is_hierarchical(parse_query("R(x), S(x,y), T(y)"))
    False
    >>> is_hierarchical(parse_query("q(h) :- R1(h,x), S1(h,x,y), R2(h,y)"))
    False
    """
    sg = _existential_subgoals(query)
    for x, y in combinations(sg, 2):
        a, b = sg[x], sg[y]
        if a & b and not (a <= b or b <= a):
            return False
    return True


def is_strictly_hierarchical(query: ConjunctiveQuery) -> bool:
    """Decide Definition 4.1: atoms orderable with nested variable sets.

    Head variables count as constants, mirroring the per-head Boolean view.

    Examples
    --------
    >>> from repro.query.parser import parse_query
    >>> is_strictly_hierarchical(parse_query("R(x), S(x,y)"))
    True
    >>> is_strictly_hierarchical(parse_query("R(x,y), S(x,z)"))  # safe, not strict
    False
    """
    head = set(query.head)
    varsets = [frozenset(set(a.variables()) - head) for a in query.atoms]
    varsets.sort(key=len)
    return all(a <= b for a, b in zip(varsets, varsets[1:]))


def hierarchy_violations(
    query: ConjunctiveQuery,
) -> list[tuple[Variable, Variable]]:
    """Pairs of existential variables witnessing non-hierarchicality.

    Each returned pair ``(x, y)`` has overlapping, incomparable subgoal sets.
    An empty list means the query is hierarchical.
    """
    sg = _existential_subgoals(query)
    out = []
    for x, y in combinations(sg, 2):
        a, b = sg[x], sg[y]
        if a & b and not (a <= b or b <= a):
            out.append((x, y))
    return out


def root_variables(query: ConjunctiveQuery) -> list[Variable]:
    """Existential variables occurring in *every* atom of the query.

    These are the variables a safe plan can project on first; the lifted
    evaluator (``repro.extensional.lifted``) recurses on one of them.
    """
    n = len(query.atoms)
    return [v for v, sg in _existential_subgoals(query).items() if len(sg) == n]
