"""Grounding conjunctive queries against deterministic instances.

Two uses:

* Boolean satisfaction in a possible world (:func:`world_satisfies`) — the
  primitive the brute-force oracle needs;
* full grounding (:func:`all_groundings`) — every satisfying assignment, which
  is exactly the clause set of the lineage DNF (Definition 3.5).

The enumeration is a straightforward backtracking join with greedy atom
ordering (most-bound atom first) and per-relation hash indexes, which is ample
for the instance sizes the intensional baselines can handle anyway.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.db.schema import Row
from repro.errors import QuerySemanticsError
from repro.query.syntax import Atom, ConjunctiveQuery, Constant, Variable

#: A deterministic instance: relation name -> collection of rows.
Instance = Mapping[str, Iterable[Row]]

#: An assignment of query variables to constants.
Binding = dict[Variable, object]


def _order_atoms(atoms: Sequence[Atom]) -> list[Atom]:
    """Greedy join order: maximise already-bound variables, then minimise new
    ones. Preferring bound variables avoids cross-product orders (an atom
    sharing two variables with the prefix filters far better than a smaller
    atom sharing one)."""
    remaining = list(atoms)
    bound: set[Variable] = set()
    ordered: list[Atom] = []
    while remaining:
        def score(a: Atom) -> tuple[int, int, int]:
            vars_ = set(a.variables())
            shared = len(vars_ & bound)
            return (-shared, len(vars_) - shared, len(vars_))

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables())
    return ordered


def groundings(
    query: ConjunctiveQuery, instance: Instance, binding: Binding | None = None
) -> Iterator[Binding]:
    """Yield every assignment of the query's variables satisfying *instance*.

    Assignments are complete over the body variables. The same assignment is
    yielded exactly once. Internally this is an index nested-loop join: each
    atom is hash-indexed on the variables bound before it in the greedy atom
    order, so the cost is proportional to input plus output, not to the
    product of relation sizes.
    """
    initial: Binding = dict(binding or {})
    # Comparison selections prune eagerly: each predicate fires the moment
    # its variable gets bound (including via the caller's partial binding).
    compare_by_var: dict[Variable, list] = {}
    for c in query.comparisons:
        compare_by_var.setdefault(c.variable, []).append(c)
    for var, value in initial.items():
        if not all(c.evaluate(value) for c in compare_by_var.get(var, ())):
            return
    ordered = _order_atoms(query.atoms)

    # Per atom, in join order: which of its variables are already bound, and
    # which positions introduce new variables.
    plans: list[tuple[Atom, list[Variable], list[tuple[int, Variable]], dict]] = []
    bound: set[Variable] = set(initial)
    for atom in ordered:
        key_vars: list[Variable] = []
        new_positions: list[tuple[int, Variable]] = []
        first_position: dict[Variable, int] = {}
        for i, term in enumerate(atom.terms):
            if isinstance(term, Variable) and term not in first_position:
                first_position[term] = i
                if term in bound:
                    key_vars.append(term)
                else:
                    new_positions.append((i, term))
        index: dict[tuple, list[Row]] = {}
        for row in instance.get(atom.relation, ()):
            if len(row) != atom.arity:
                raise QuerySemanticsError(
                    f"atom {atom} has arity {atom.arity} but row {row!r} "
                    f"has {len(row)}"
                )
            ok = True
            for i, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    if term.value != row[i]:
                        ok = False
                        break
                elif row[first_position[term]] != row[i]:
                    ok = False
                    break
            if ok:
                key = tuple(row[first_position[v]] for v in key_vars)
                index.setdefault(key, []).append(row)
        plans.append((atom, key_vars, new_positions, index))
        bound.update(first_position)

    def recurse(i: int, binding: Binding) -> Iterator[Binding]:
        if i == len(plans):
            yield binding
            return
        _, key_vars, new_positions, index = plans[i]
        key = tuple(binding[v] for v in key_vars)
        for row in index.get(key, ()):
            extended = dict(binding)
            ok = True
            for pos, var in new_positions:
                value = row[pos]
                if not all(
                    c.evaluate(value) for c in compare_by_var.get(var, ())
                ):
                    ok = False
                    break
                extended[var] = value
            if ok:
                yield from recurse(i + 1, extended)

    yield from recurse(0, initial)


def all_groundings(
    query: ConjunctiveQuery, instance: Instance
) -> list[dict[str, Row]]:
    """All satisfying assignments, as maps from relation name to the matched row.

    Each entry corresponds to one clause of the lineage DNF: the conjunction of
    the tuple events it maps to. Duplicate clauses (identical row selections
    under different variable assignments) are preserved-by-set: the result list
    is deduplicated, since ``x ∨ x = x``.
    """
    seen: set[tuple[tuple[str, Row], ...]] = set()
    out: list[dict[str, Row]] = []
    for binding in groundings(query, instance):
        clause: dict[str, Row] = {}
        for atom in query.atoms:
            row = tuple(
                t.value if isinstance(t, Constant) else binding[t]
                for t in atom.terms
            )
            clause[atom.relation] = row
        key = tuple(sorted(clause.items()))
        if key not in seen:
            seen.add(key)
            out.append(clause)
    return out


def world_satisfies(query: ConjunctiveQuery, world: Instance) -> bool:
    """True iff the Boolean query is satisfied in the deterministic *world*."""
    q = query.boolean_view()
    for _ in groundings(q, world):
        return True
    return False


def answers_in_world(query: ConjunctiveQuery, world: Instance) -> set[tuple]:
    """The set of head-tuples the query returns on a deterministic *world*."""
    if query.is_boolean:
        return {()} if world_satisfies(query, world) else set()
    out: set[tuple] = set()
    for binding in groundings(query, world):
        out.add(tuple(binding[v] for v in query.head))
    return out


def active_domain(
    query: ConjunctiveQuery, instance: Instance, var: Variable
) -> set:
    """Values *var* can take: the union over atoms of the matching columns."""
    values: set = set()
    for atom in query.atoms:
        positions = [i for i, t in enumerate(atom.terms) if t == var]
        if not positions:
            continue
        for row in instance.get(atom.relation, ()):
            for i in positions:
                values.add(row[i])
    return values
