"""Conjunctive query language and structural analysis.

The paper studies Boolean conjunctive queries built from selections,
projections, and eq-joins, *without self-joins* (Section 2). Queries with a
head variable — like the benchmark queries ``q(h) :- R1(h,x), S1(h,x,y),
R2(h,y)`` of Table 1 — are treated as a family of Boolean queries, one per
head value.

Modules
-------
``syntax``
    Terms, atoms, and :class:`ConjunctiveQuery`.
``parser``
    A small datalog-style parser: ``parse_query("q(h) :- R(h,x), S(h,x,y)")``.
``grounding``
    Homomorphism enumeration: Boolean satisfaction in a world, and lineage
    grounding (all satisfying assignments).
``hierarchy``
    The hierarchical (safe) and strictly-hierarchical (Definition 4.1) tests.
"""

from repro.query.syntax import (
    Atom,
    ComparisonPredicate,
    ConjunctiveQuery,
    Constant,
    Variable,
)
from repro.query.parser import parse_query
from repro.query.grounding import (
    all_groundings,
    answers_in_world,
    world_satisfies,
)
from repro.query.hierarchy import is_hierarchical, is_strictly_hierarchical

__all__ = [
    "Variable",
    "Constant",
    "Atom",
    "ComparisonPredicate",
    "ConjunctiveQuery",
    "parse_query",
    "world_satisfies",
    "answers_in_world",
    "all_groundings",
    "is_hierarchical",
    "is_strictly_hierarchical",
]
