"""Abstract syntax for conjunctive queries.

A query is a head (possibly empty tuple of variables) and a body of atoms.
Terms are either :class:`Variable` or :class:`Constant`. The paper's queries
are *self-join free*: each relation name appears in at most one atom; this is
validated by :class:`ConjunctiveQuery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import QuerySemanticsError


@dataclass(frozen=True)
class Variable:
    """A query variable, e.g. ``x`` in ``R(x, y)``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant term, e.g. ``3`` or ``'seattle'``."""

    value: object

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


Term = Variable | Constant


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(t1, ..., tk)``.

    Examples
    --------
    >>> a = Atom("R", (Variable("x"), Constant(3)))
    >>> str(a)
    'R(x, 3)'
    >>> a.variables()
    (Variable(name='x'),)
    """

    relation: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))
        for t in self.terms:
            if not isinstance(t, (Variable, Constant)):
                raise QuerySemanticsError(f"atom term {t!r} is not a Variable/Constant")

    @property
    def arity(self) -> int:
        """Number of terms."""
        return len(self.terms)

    def variables(self) -> tuple[Variable, ...]:
        """The distinct variables of this atom, in first-occurrence order."""
        seen: list[Variable] = []
        for t in self.terms:
            if isinstance(t, Variable) and t not in seen:
                seen.append(t)
        return tuple(seen)

    def substitute(self, binding: dict[Variable, object]) -> "Atom":
        """Replace bound variables by constants according to *binding*."""
        new_terms: list[Term] = []
        for t in self.terms:
            if isinstance(t, Variable) and t in binding:
                new_terms.append(Constant(binding[t]))
            else:
                new_terms.append(t)
        return Atom(self.relation, tuple(new_terms))

    def is_ground(self) -> bool:
        """True if the atom has no variables."""
        return all(isinstance(t, Constant) for t in self.terms)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A self-join-free conjunctive query ``q(head) :- atom1, ..., atomn``.

    The Boolean queries of the paper have an empty head. Queries with head
    variables (Table 1) are evaluated per head value; head variables act as
    constants for safety analysis.

    Examples
    --------
    >>> from repro.query.parser import parse_query
    >>> q = parse_query("q(h) :- R(h,x), S(h,x,y)")
    >>> q.is_boolean
    False
    >>> [str(a) for a in q.atoms]
    ['R(h, x)', 'S(h, x, y)']
    """

    head: tuple[Variable, ...]
    atoms: tuple[Atom, ...]
    name: str = "q"

    def __post_init__(self) -> None:
        object.__setattr__(self, "head", tuple(self.head))
        object.__setattr__(self, "atoms", tuple(self.atoms))
        if not self.atoms:
            raise QuerySemanticsError("a conjunctive query needs at least one atom")
        names = [a.relation for a in self.atoms]
        if len(set(names)) != len(names):
            raise QuerySemanticsError(
                f"self-joins are not supported (Section 2): {names}"
            )
        body_vars = set(self.variables())
        for v in self.head:
            if v not in body_vars:
                raise QuerySemanticsError(f"head variable {v} not used in the body")

    @property
    def is_boolean(self) -> bool:
        """True when the head is empty."""
        return not self.head

    def variables(self) -> tuple[Variable, ...]:
        """All distinct body variables, in first-occurrence order."""
        seen: list[Variable] = []
        for a in self.atoms:
            for v in a.variables():
                if v not in seen:
                    seen.append(v)
        return tuple(seen)

    def existential_variables(self) -> tuple[Variable, ...]:
        """Body variables that are not head variables."""
        head = set(self.head)
        return tuple(v for v in self.variables() if v not in head)

    def subgoals_of(self, var: Variable) -> frozenset[str]:
        """``Sg(x)``: the set of relation names whose atom mentions *var*."""
        return frozenset(a.relation for a in self.atoms if var in a.variables())

    def atom_for(self, relation: str) -> Atom:
        """The unique atom over *relation* (queries are self-join free)."""
        for a in self.atoms:
            if a.relation == relation:
                return a
        raise QuerySemanticsError(f"query has no atom over relation {relation!r}")

    def substitute(self, binding: dict[Variable, object]) -> "ConjunctiveQuery":
        """Bind variables to constants, dropping bound head variables."""
        return ConjunctiveQuery(
            head=tuple(v for v in self.head if v not in binding),
            atoms=tuple(a.substitute(binding) for a in self.atoms),
            name=self.name,
        )

    def boolean_view(self) -> "ConjunctiveQuery":
        """The same body with an empty head (used for per-head evaluation)."""
        if self.is_boolean:
            return self
        return ConjunctiveQuery(head=(), atoms=self.atoms, name=self.name)

    def connected_components(
        self, *, treat_as_constants: Iterable[Variable] = ()
    ) -> list["ConjunctiveQuery"]:
        """Split the body into variable-connected components.

        Two atoms are connected when they share a variable (head variables, or
        any in *treat_as_constants*, do not connect atoms — they are fixed per
        evaluation). Per Section 2, ``Pr(q1 q2) = Pr(q1) Pr(q2)`` for
        unconnected ``q1, q2``.
        """
        skip = set(self.head) | set(treat_as_constants)
        n = len(self.atoms)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for i in range(n):
            for j in range(i + 1, n):
                vi = set(self.atoms[i].variables()) - skip
                vj = set(self.atoms[j].variables()) - skip
                if vi & vj:
                    ri, rj = find(i), find(j)
                    if ri != rj:
                        parent[ri] = rj
        groups: dict[int, list[Atom]] = {}
        for i, a in enumerate(self.atoms):
            groups.setdefault(find(i), []).append(a)
        out = []
        for atoms in groups.values():
            comp_vars = {v for a in atoms for v in a.variables()}
            out.append(
                ConjunctiveQuery(
                    head=tuple(v for v in self.head if v in comp_vars),
                    atoms=tuple(atoms),
                    name=self.name,
                )
            )
        return out

    def __str__(self) -> str:
        head = f"{self.name}({', '.join(str(v) for v in self.head)})"
        return f"{head} :- {', '.join(str(a) for a in self.atoms)}"
