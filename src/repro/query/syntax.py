"""Abstract syntax for conjunctive queries.

A query is a head (possibly empty tuple of variables) and a body of atoms.
Terms are either :class:`Variable` or :class:`Constant`. The paper's queries
are *self-join free*: each relation name appears in at most one atom; this is
validated by :class:`ConjunctiveQuery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import QuerySemanticsError


@dataclass(frozen=True)
class Variable:
    """A query variable, e.g. ``x`` in ``R(x, y)``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant term, e.g. ``3`` or ``'seattle'``."""

    value: object

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


Term = Variable | Constant

#: Comparison operators accepted in query bodies (``=`` normalises to ``==``).
COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class ComparisonPredicate:
    """A comparison between a body variable and a constant, e.g. ``y < 10``.

    Comparisons are selections, not atoms: they restrict the bindings of one
    variable and never connect atoms. The plan builder pushes them below all
    joins, onto the first scan binding the variable
    (:func:`repro.core.plan.left_deep_plan`).

    Examples
    --------
    >>> c = ComparisonPredicate(Variable("y"), "<", 10)
    >>> str(c)
    'y < 10'
    >>> c.evaluate(3), c.evaluate(12)
    (True, False)
    """

    variable: Variable
    op: str
    value: object

    def __post_init__(self) -> None:
        if not isinstance(self.variable, Variable):
            raise QuerySemanticsError(
                f"comparison left-hand side {self.variable!r} is not a variable"
            )
        if self.op not in COMPARISON_OPS:
            raise QuerySemanticsError(
                f"unknown comparison operator {self.op!r}; choose from "
                f"{COMPARISON_OPS}"
            )
        if isinstance(self.value, (Variable, Constant)):
            raise QuerySemanticsError(
                "comparison right-hand side must be a plain constant value"
            )

    def evaluate(self, value) -> bool:
        """Apply the comparison to a candidate binding of the variable."""
        if self.op == "==":
            return value == self.value
        if self.op == "!=":
            return value != self.value
        if self.op == "<":
            return value < self.value
        if self.op == "<=":
            return value <= self.value
        if self.op == ">":
            return value > self.value
        return value >= self.value

    def __str__(self) -> str:
        rhs = repr(self.value) if isinstance(self.value, str) else str(self.value)
        return f"{self.variable} {self.op} {rhs}"


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(t1, ..., tk)``.

    Examples
    --------
    >>> a = Atom("R", (Variable("x"), Constant(3)))
    >>> str(a)
    'R(x, 3)'
    >>> a.variables()
    (Variable(name='x'),)
    """

    relation: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))
        for t in self.terms:
            if not isinstance(t, (Variable, Constant)):
                raise QuerySemanticsError(f"atom term {t!r} is not a Variable/Constant")

    @property
    def arity(self) -> int:
        """Number of terms."""
        return len(self.terms)

    def variables(self) -> tuple[Variable, ...]:
        """The distinct variables of this atom, in first-occurrence order."""
        seen: list[Variable] = []
        for t in self.terms:
            if isinstance(t, Variable) and t not in seen:
                seen.append(t)
        return tuple(seen)

    def substitute(self, binding: dict[Variable, object]) -> "Atom":
        """Replace bound variables by constants according to *binding*."""
        new_terms: list[Term] = []
        for t in self.terms:
            if isinstance(t, Variable) and t in binding:
                new_terms.append(Constant(binding[t]))
            else:
                new_terms.append(t)
        return Atom(self.relation, tuple(new_terms))

    def is_ground(self) -> bool:
        """True if the atom has no variables."""
        return all(isinstance(t, Constant) for t in self.terms)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A self-join-free conjunctive query ``q(head) :- atom1, ..., atomn``.

    The Boolean queries of the paper have an empty head. Queries with head
    variables (Table 1) are evaluated per head value; head variables act as
    constants for safety analysis.

    Examples
    --------
    >>> from repro.query.parser import parse_query
    >>> q = parse_query("q(h) :- R(h,x), S(h,x,y)")
    >>> q.is_boolean
    False
    >>> [str(a) for a in q.atoms]
    ['R(h, x)', 'S(h, x, y)']
    """

    head: tuple[Variable, ...]
    atoms: tuple[Atom, ...]
    name: str = "q"
    #: Comparison selections over body variables (``R(x,y), y < 10``).
    comparisons: tuple[ComparisonPredicate, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "head", tuple(self.head))
        object.__setattr__(self, "atoms", tuple(self.atoms))
        object.__setattr__(self, "comparisons", tuple(self.comparisons))
        if not self.atoms:
            raise QuerySemanticsError("a conjunctive query needs at least one atom")
        names = [a.relation for a in self.atoms]
        if len(set(names)) != len(names):
            raise QuerySemanticsError(
                f"self-joins are not supported (Section 2): {names}"
            )
        body_vars = set(self.variables())
        for v in self.head:
            if v not in body_vars:
                raise QuerySemanticsError(f"head variable {v} not used in the body")
        for c in self.comparisons:
            if c.variable not in body_vars:
                raise QuerySemanticsError(
                    f"comparison variable {c.variable} not used in the body"
                )

    @property
    def is_boolean(self) -> bool:
        """True when the head is empty."""
        return not self.head

    def variables(self) -> tuple[Variable, ...]:
        """All distinct body variables, in first-occurrence order."""
        seen: list[Variable] = []
        for a in self.atoms:
            for v in a.variables():
                if v not in seen:
                    seen.append(v)
        return tuple(seen)

    def existential_variables(self) -> tuple[Variable, ...]:
        """Body variables that are not head variables."""
        head = set(self.head)
        return tuple(v for v in self.variables() if v not in head)

    def subgoals_of(self, var: Variable) -> frozenset[str]:
        """``Sg(x)``: the set of relation names whose atom mentions *var*."""
        return frozenset(a.relation for a in self.atoms if var in a.variables())

    def atom_for(self, relation: str) -> Atom:
        """The unique atom over *relation* (queries are self-join free)."""
        for a in self.atoms:
            if a.relation == relation:
                return a
        raise QuerySemanticsError(f"query has no atom over relation {relation!r}")

    def substitute(self, binding: dict[Variable, object]) -> "ConjunctiveQuery":
        """Bind variables to constants, dropping bound head variables.

        Comparisons over still-unbound variables are kept; binding a compared
        variable is rejected (the bound query would need a truth value, not a
        syntax tree — evaluate comparison queries through the pL engines).
        """
        for c in self.comparisons:
            if c.variable in binding:
                raise QuerySemanticsError(
                    f"cannot substitute compared variable {c.variable}; "
                    "comparison queries evaluate through the pL engines"
                )
        return ConjunctiveQuery(
            head=tuple(v for v in self.head if v not in binding),
            atoms=tuple(a.substitute(binding) for a in self.atoms),
            name=self.name,
            comparisons=self.comparisons,
        )

    def boolean_view(self) -> "ConjunctiveQuery":
        """The same body with an empty head (used for per-head evaluation)."""
        if self.is_boolean:
            return self
        return ConjunctiveQuery(
            head=(), atoms=self.atoms, name=self.name,
            comparisons=self.comparisons,
        )

    def connected_components(
        self, *, treat_as_constants: Iterable[Variable] = ()
    ) -> list["ConjunctiveQuery"]:
        """Split the body into variable-connected components.

        Two atoms are connected when they share a variable (head variables, or
        any in *treat_as_constants*, do not connect atoms — they are fixed per
        evaluation). Per Section 2, ``Pr(q1 q2) = Pr(q1) Pr(q2)`` for
        unconnected ``q1, q2``.
        """
        skip = set(self.head) | set(treat_as_constants)
        n = len(self.atoms)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for i in range(n):
            for j in range(i + 1, n):
                vi = set(self.atoms[i].variables()) - skip
                vj = set(self.atoms[j].variables()) - skip
                if vi & vj:
                    ri, rj = find(i), find(j)
                    if ri != rj:
                        parent[ri] = rj
        groups: dict[int, list[Atom]] = {}
        for i, a in enumerate(self.atoms):
            groups.setdefault(find(i), []).append(a)
        out = []
        for atoms in groups.values():
            comp_vars = {v for a in atoms for v in a.variables()}
            out.append(
                ConjunctiveQuery(
                    head=tuple(v for v in self.head if v in comp_vars),
                    atoms=tuple(atoms),
                    name=self.name,
                    comparisons=tuple(
                        c for c in self.comparisons if c.variable in comp_vars
                    ),
                )
            )
        return out

    def __str__(self) -> str:
        head = f"{self.name}({', '.join(str(v) for v in self.head)})"
        body = ", ".join(
            [str(a) for a in self.atoms] + [str(c) for c in self.comparisons]
        )
        return f"{head} :- {body}"
