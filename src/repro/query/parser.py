"""Datalog-style parser for conjunctive queries.

Grammar (whitespace-insensitive)::

    query    := head ':-' body | body          # bare body means Boolean query
    head     := NAME '(' termlist? ')' | NAME
    body     := item (',' item)*
    item     := atom | comparison
    atom     := NAME '(' termlist ')'
    comparison := NAME OP constant             # e.g. y < 10  (OP also: = alias ==)
    termlist := term (',' term)*
    term     := NAME            # a variable (identifiers are variables)
              | INT | FLOAT    # numeric constant
              | 'string'       # quoted string constant

Examples
--------
>>> q = parse_query("q(h) :- R1(h,x), S1(h,x,y), R2(h,y)")
>>> str(q)
'q(h) :- R1(h, x), S1(h, x, y), R2(h, y)'
>>> parse_query("R(x, 3), S(x, 'a')").is_boolean
True
>>> str(parse_query("q(x) :- R(x,y), y < 10"))
'q(x) :- R(x, y), y < 10'
"""

from __future__ import annotations

import re

from repro.errors import QuerySyntaxError
from repro.query.syntax import (
    Atom,
    ComparisonPredicate,
    ConjunctiveQuery,
    Constant,
    Term,
    Variable,
)

_TOKEN = re.compile(
    r"""\s*(?:
        (?P<name>[A-Za-z_]\w*)
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<string>'[^']*'|"[^"]*")
      | (?P<op><=|>=|!=|==|<|>|=)
      | (?P<punct>:-|[(),])
    )""",
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None:
            if text[pos:].strip() == "":
                break
            raise QuerySyntaxError(f"cannot tokenize query at: {text[pos:]!r}")
        pos = m.end()
        kind = m.lastgroup
        tokens.append((kind, m.group(kind)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.i = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise QuerySyntaxError(f"unexpected end of query: {self.text!r}")
        self.i += 1
        return tok

    def expect(self, value: str) -> None:
        kind, tok = self.next()
        del kind
        if tok != value:
            raise QuerySyntaxError(
                f"expected {value!r} but found {tok!r} in {self.text!r}"
            )

    def term(self) -> Term:
        kind, tok = self.next()
        if kind == "name":
            return Variable(tok)
        if kind == "number":
            return Constant(float(tok) if "." in tok else int(tok))
        if kind == "string":
            return Constant(tok[1:-1])
        raise QuerySyntaxError(f"expected a term, found {tok!r} in {self.text!r}")

    def termlist(self) -> list[Term]:
        terms = [self.term()]
        while self.peek() == ("punct", ","):
            self.next()
            terms.append(self.term())
        return terms

    def atom(self) -> Atom:
        kind, name = self.next()
        if kind != "name":
            raise QuerySyntaxError(f"expected relation name, found {name!r}")
        self.expect("(")
        terms = self.termlist()
        self.expect(")")
        return Atom(name, tuple(terms))

    def comparison(self) -> ComparisonPredicate:
        kind, name = self.next()
        if kind != "name":
            raise QuerySyntaxError(f"expected variable name, found {name!r}")
        _, op = self.next()
        rhs = self.term()
        if isinstance(rhs, Variable):
            raise QuerySyntaxError(
                f"comparison {name} {op} {rhs} must compare against a constant"
            )
        return ComparisonPredicate(
            Variable(name), "==" if op == "=" else op, rhs.value
        )

    def item(self) -> Atom | ComparisonPredicate:
        # One token of lookahead disambiguates: `R(` starts an atom, `y <`
        # starts a comparison.
        after = (
            self.tokens[self.i + 1] if self.i + 1 < len(self.tokens) else None
        )
        if after is not None and after[0] == "op":
            return self.comparison()
        return self.atom()

    def body(self) -> tuple[list[Atom], list[ComparisonPredicate]]:
        atoms: list[Atom] = []
        comparisons: list[ComparisonPredicate] = []
        while True:
            got = self.item()
            if isinstance(got, Atom):
                atoms.append(got)
            else:
                comparisons.append(got)
            if self.peek() != ("punct", ","):
                return atoms, comparisons
            self.next()


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query from datalog-ish text.

    Accepts both headed form (``q(h) :- R(h,x)``), Boolean form with an
    explicit empty head (``q :- R(x)`` or ``q() :- R(x)``), and a bare body
    (``R(x), S(x,y)``).

    Raises
    ------
    QuerySyntaxError
        On malformed input.
    QuerySemanticsError
        For structurally invalid queries (self-joins, unbound head variables).
    """
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
        hp = _Parser(head_text)
        kind, qname = hp.next()
        if kind != "name":
            raise QuerySyntaxError(f"expected query name in head: {head_text!r}")
        head_vars: list[Variable] = []
        if hp.peek() == ("punct", "("):
            hp.next()
            if hp.peek() != ("punct", ")"):
                for t in hp.termlist():
                    if not isinstance(t, Variable):
                        raise QuerySyntaxError("head terms must be variables")
                    head_vars.append(t)
            hp.expect(")")
        if hp.peek() is not None:
            raise QuerySyntaxError(f"trailing tokens in head: {head_text!r}")
        bp = _Parser(body_text)
        atoms, comparisons = bp.body()
        if bp.peek() is not None:
            raise QuerySyntaxError(f"trailing tokens in body: {body_text!r}")
        return ConjunctiveQuery(
            head=tuple(head_vars),
            atoms=tuple(atoms),
            name=qname,
            comparisons=tuple(comparisons),
        )

    p = _Parser(text)
    atoms, comparisons = p.body()
    if p.peek() is not None:
        raise QuerySyntaxError(f"trailing tokens in query: {text!r}")
    return ConjunctiveQuery(
        head=(), atoms=tuple(atoms), comparisons=tuple(comparisons)
    )
