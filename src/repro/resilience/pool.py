"""Fault-tolerant process-pool dispatch.

:func:`run_chunks` is the retry/timeout engine under
:func:`repro.perf.parallel.parallel_marginals`: it fans chunk payloads out
over a ``ProcessPoolExecutor`` and survives the failure modes a plain
``future.result()`` loop does not —

* **worker crashes** (``BrokenProcessPool``): every future of the broken
  pool fails, but completed chunks keep their results; the survivors are
  re-dispatched in a *fresh* pool (a broken executor is unusable);
* **stuck workers**: a per-dispatch timeout bounds each round; unfinished
  chunks are treated as failed and the hung pool is abandoned
  (``shutdown(wait=False, cancel_futures=True)``);
* **in-worker errors**: any :class:`~repro.errors.ReproError` raised by a
  chunk is retryable — transient (an injected fault, a poisoned cache)
  errors heal on retry, genuine ones re-raise identically from the serial
  fallback, so nothing is swallowed;
* **poisoned results**: an optional *validate* hook inspects each result at
  merge-back (e.g. NaN detection) and turns silent corruption into a retry.

After ``max_retries`` pool rounds, surviving chunks are *requeued to
serial*: solved in-process by the caller's ``serial_fn``, where no fault
injection applies and a genuine error finally propagates. Every retry,
timeout, and requeue emits :mod:`repro.obs` metrics and span events.

Fault injection itself happens in the worker (see
:mod:`repro.resilience.faults`); this module only ships the plan inside
each payload via the caller's ``payload_fn(index, attempt)``.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ReproError
from repro.obs import telemetry
from repro.obs.trace import span as _span

__all__ = ["ChunkOutcome", "run_chunks"]


@dataclass
class ChunkOutcome:
    """How one chunk eventually got solved."""

    result: Any = None
    #: Pool dispatch attempts consumed (0 = solved serially without a pool).
    attempts: int = 0
    #: True when the chunk fell back to the in-process serial path.
    requeued_serial: bool = False
    #: Failure history, one ``"attempt<N>:<reason>"`` entry per failed try.
    events: list[str] = field(default_factory=list)


def run_chunks(
    worker_fn: Callable,
    payload_fn: Callable[[int, int], Any],
    count: int,
    *,
    workers: int,
    serial_fn: Callable[[int], Any],
    timeout: float | None = None,
    max_retries: int = 2,
    validate: Callable[[Any], str | None] | None = None,
    registry=None,
) -> list[ChunkOutcome]:
    """Solve *count* chunks on a fault-tolerant pool of *workers* processes.

    ``worker_fn`` must be a picklable module-level callable;
    ``payload_fn(index, attempt)`` builds its argument per dispatch (the
    attempt number lets deterministic fault plans fire on chosen retries).
    ``serial_fn(index)`` is the in-process fallback of last resort — its
    exceptions propagate to the caller. ``validate(result)`` may return a
    failure reason to reject a structurally delivered but corrupt result.

    *timeout* bounds each dispatch round (all of a round's chunks run
    concurrently, so the bound is per-chunk up to queueing); ``None``
    disables it. *max_retries* is the number of pool rounds before a chunk
    is requeued to serial.
    """
    outcomes = [ChunkOutcome() for _ in range(count)]
    pending = list(range(count))
    for attempt in range(max(0, max_retries)):
        if not pending or workers < 1:
            break
        with _span(
            "pool_dispatch", attempt=attempt, chunks=len(pending)
        ) as sp:
            failures = _dispatch_round(
                worker_fn, payload_fn, pending, outcomes,
                workers=workers, attempt=attempt, timeout=timeout,
                validate=validate, registry=registry,
            )
            sp.add("failures", len(failures))
            for index, reason in failures:
                outcomes[index].events.append(f"attempt{attempt}:{reason}")
                if registry is not None:
                    registry.inc(f"pool.chunk_failure.{reason}")
            if failures and registry is not None:
                registry.inc("pool.chunk_retries", len(failures))
        pending = [index for index, _ in failures]
    for index in pending:
        with _span("chunk_serial_requeue", chunk=index):
            if registry is not None:
                registry.inc("pool.requeued_serial")
            outcomes[index].result = serial_fn(index)
            outcomes[index].requeued_serial = True
    for index, outcome in enumerate(outcomes):
        telemetry.record(
            "pool_chunk", chunk=index, attempts=outcome.attempts,
            requeued_serial=outcome.requeued_serial,
            events=list(outcome.events), workers=workers,
        )
    return outcomes


def _dispatch_round(
    worker_fn, payload_fn, pending, outcomes, *,
    workers, attempt, timeout, validate, registry,
) -> list[tuple[int, str]]:
    """One pool round over *pending*; returns ``(index, reason)`` failures."""
    failures: list[tuple[int, str]] = []
    pool = ProcessPoolExecutor(max_workers=workers)
    clean = True
    try:
        futures = {}
        for index in pending:
            outcomes[index].attempts += 1
            try:
                future = pool.submit(worker_fn, payload_fn(index, attempt))
            except BrokenProcessPool:
                # An earlier chunk of this round already killed the pool.
                clean = False
                failures.append((index, "worker_crash"))
                if registry is not None:
                    registry.inc("pool.worker_crashes")
                continue
            futures[future] = index
        deadline = None if timeout is None else time.monotonic() + timeout
        not_done = set(futures)
        while not_done:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                break
            done, not_done = wait(
                not_done, timeout=remaining, return_when=FIRST_COMPLETED
            )
            if not done:
                break  # timed out with nothing new finished
            for future in done:
                index = futures[future]
                try:
                    result = future.result()
                except BrokenProcessPool:
                    clean = False
                    failures.append((index, "worker_crash"))
                    if registry is not None:
                        registry.inc("pool.worker_crashes")
                    continue
                except ReproError as exc:
                    failures.append((index, type(exc).__name__))
                    continue
                reason = None if validate is None else validate(result)
                if reason is not None:
                    failures.append((index, reason))
                else:
                    outcomes[index].result = result
        for future in not_done:  # still running past the deadline
            clean = False
            failures.append((futures[future], "timeout"))
            if registry is not None:
                registry.inc("pool.timeouts")
    finally:
        # A broken or hung pool must not be joined: abandon it and let the
        # interpreter reap the processes. A clean pool shuts down normally.
        pool.shutdown(wait=clean, cancel_futures=True)
    return failures
