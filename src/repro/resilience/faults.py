"""Deterministic fault injection for the parallel-inference pool.

Chaos testing needs failures that are *reproducible*: the same plan must
crash the same worker on the same chunk every run. A :class:`FaultPlan`
is a picklable description of which chunk fails, how, and on which retry
attempts; it ships to the workers inside the chunk payload, and
:func:`apply_fault` fires inside the worker right before the chunk solves.

Four fault kinds cover the failure modes the pool must survive:

``crash``
    ``os._exit`` — the worker process dies without cleanup, surfacing as
    ``BrokenProcessPool`` in the parent (a segfault/OOM-kill stand-in).
``slow``
    ``time.sleep`` — the chunk hangs long enough to trip the per-chunk
    timeout (a stuck-worker stand-in).
``capacity``
    raise :class:`~repro.errors.CapacityError` — a hard-instance blow-up
    in the worker (DNF explosion stand-in).
``nan``
    poison every marginal in the chunk result with NaN — a numerical
    corruption the parent must detect at merge-back, not propagate.

Faults are keyed by chunk index and fire only on the listed attempt
numbers, so a plan like ``FaultSpec("crash", chunk=0)`` (attempts
``(0,)``) fails the first dispatch and lets the retry succeed, while
``attempts=(0, 1)`` exhausts the pool retries and exercises the
requeue-to-serial path — the serial fallback never applies faults.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field

from repro.errors import CapacityError

__all__ = ["FaultSpec", "FaultPlan", "apply_fault", "poison_nan", "FAULT_KINDS"]

#: The injectable failure modes.
FAULT_KINDS = ("crash", "slow", "capacity", "nan")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: *kind* on *chunk*, firing on *attempts*."""

    kind: str
    #: Chunk index (dispatch order) the fault applies to.
    chunk: int
    #: Pool attempt numbers on which the fault fires (0 = first dispatch).
    attempts: tuple[int, ...] = (0,)
    #: Sleep duration for ``slow`` faults.
    seconds: float = 1.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A picklable set of :class:`FaultSpec` entries.

    Examples
    --------
    >>> plan = FaultPlan((FaultSpec("crash", chunk=0),))
    >>> plan.for_chunk(0, attempt=0).kind
    'crash'
    >>> plan.for_chunk(0, attempt=1) is None    # retry is clean
    True
    """

    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def for_chunk(self, chunk: int, attempt: int) -> FaultSpec | None:
        """The fault that fires for this (chunk, attempt), if any."""
        for spec in self.faults:
            if spec.chunk == chunk and attempt in spec.attempts:
                return spec
        return None

    def __bool__(self) -> bool:
        return bool(self.faults)


def apply_fault(spec: FaultSpec | None) -> bool:
    """Fire *spec* inside a worker; returns True when results must be
    NaN-poisoned afterwards (the ``nan`` kind corrupts output rather than
    control flow)."""
    if spec is None:
        return False
    if spec.kind == "crash":
        # Hard death: no exception propagation, no executor cleanup — the
        # parent sees BrokenProcessPool, exactly like a segfault.
        os._exit(17)
    if spec.kind == "slow":
        time.sleep(spec.seconds)
        return False
    if spec.kind == "capacity":
        raise CapacityError("injected capacity fault")
    return spec.kind == "nan"


def poison_nan(solved: list[dict[int, float]]) -> list[dict[int, float]]:
    """Replace every marginal with NaN (the ``nan`` fault payload)."""
    return [{k: math.nan for k in d} for d in solved]
