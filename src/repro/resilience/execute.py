"""Resilient final inference: the ladder, component-sliced and pool-backed.

:func:`resilient_marginals` is the degradation-aware counterpart of
:func:`repro.perf.parallel.parallel_marginals`: the same
group-by-component slicing and LPT cost chunking, but every component
solves through the :mod:`~repro.resilience.ladder` (so hard components
return sound intervals instead of raising) and the process fan-out runs on
the fault-tolerant :func:`~repro.resilience.pool.run_chunks` dispatcher
(so worker crashes, stuck workers, and poisoned results retry and finally
requeue to the serial path). One hard component never blanks the other
answers; one dead worker never blanks its chunk.

Determinism: each component's sampling rung seeds its own
``random.Random`` from ``(seed, original first target id)``, so the pool
and serial paths — and any retry — produce identical results.
"""

from __future__ import annotations

import math
import random

from repro.core.network import EPSILON, AndOrNetwork
from repro.obs.trace import Tracer, current_tracer
from repro.obs.trace import span as _span
from repro.perf.cache import SubformulaCache
from repro.perf.parallel import _chunk_by_cost, group_by_component
from repro.resilience.budget import QueryBudget
from repro.resilience.faults import FaultPlan, apply_fault
from repro.resilience.ladder import MarginalOutcome, resilient_component_marginals
from repro.resilience.pool import run_chunks

__all__ = ["exact_fractions", "resilient_marginals"]


def _component_rng(seed: int, rng_key: int) -> random.Random:
    return random.Random(f"{seed}/{rng_key}")


def exact_fractions(works) -> list[float]:
    """Per-component deadline slices for the ladder's exact rung.

    A uniform ``sub(0.5)`` gives the query's one expensive component the
    same slice as its trivial siblings — it starves while they waste.
    Instead each component's slice shrinks with its share of the total
    estimated cost: cheap components (tiny share) keep up to 90% of the
    remaining deadline, the dominant component leaves most of the deadline
    to its own fallback rungs. Deterministic, and 0.5 whenever there is
    nothing to compare against (single component, zero estimates).
    """
    total = sum(w.cost for w in works)
    if len(works) <= 1 or total <= 0.0:
        return [0.5] * len(works)
    fractions = []
    for w in works:
        share = w.cost / total
        fractions.append(min(0.9, max(0.1, 0.9 * (1.0 - share))))
    return fractions


def _validate_outcomes(result) -> str | None:
    """Reject chunk results whose enclosures are not finite sound intervals
    (the NaN-poisoning chaos scenario: corruption must retry, not merge)."""
    solved_list, _entries, _spans = result
    for solved in solved_list:
        for outcome in solved.values():
            if not (
                math.isfinite(outcome.lower)
                and math.isfinite(outcome.upper)
                and outcome.lower <= outcome.upper
            ):
                return "poisoned_result"
    return None


def _resilient_chunk(payload):
    """Worker entry point: ladder-solve a list of component tasks.

    Applies the chunk's injected fault first (chaos tests only), then
    solves each ``(subnet, targets, narrow, rng_key, exact_fraction,
    est_cost)`` task with a fresh subformula cache, returning the outcome
    dicts, the cache entries for merge-back, and — when the parent traced —
    the local span forest.
    """
    tasks, budget, seed, traced, chunk, attempt, fault_plan = payload
    fault = None if fault_plan is None else fault_plan.for_chunk(chunk, attempt)
    poison = apply_fault(fault)
    budget = budget.start() if budget is not None else None
    cache = SubformulaCache()

    def solve_all():
        return [
            resilient_component_marginals(
                subnet,
                targets,
                budget=budget,
                cache=cache,
                rng=_component_rng(seed, rng_key),
                narrow=narrow,
                exact_fraction=fraction,
                est_cost=est_cost,
            )
            for subnet, targets, narrow, rng_key, fraction, est_cost in tasks
        ]

    if traced:
        with Tracer() as tracer:
            with tracer.span("worker_chunk", tasks=len(tasks), resilient=True):
                solved = solve_all()
        spans = tracer.roots
    else:
        solved = solve_all()
        spans = []
    if poison:
        solved = [
            {t: MarginalOutcome(math.nan, math.nan, o.method, o.exact, o.steps)
             for t, o in d.items()}
            for d in solved
        ]
    return solved, cache.entries(), spans


def resilient_marginals(
    net: AndOrNetwork,
    nodes,
    *,
    budget: QueryBudget | None = None,
    workers: int | None = None,
    cache: SubformulaCache | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    chunks_per_worker: int = 4,
    fault_plan: FaultPlan | None = None,
    registry=None,
    seed: int = 0,
) -> dict[int, MarginalOutcome]:
    """Sound marginal enclosures of *nodes*, degradation- and fault-tolerant.

    Serial (``workers`` unset or < 2, or a single component): every
    component ladder-solves in-process. Parallel: components are packed
    into cost-balanced chunks and dispatched through
    :func:`~repro.resilience.pool.run_chunks` with per-dispatch *timeout*,
    *max_retries* pool rounds, and serial requeue — so the call returns an
    outcome for **every** node no matter which workers die. *fault_plan*
    deterministically injects failures (chaos tests).

    Unlike the exact path there is no cost threshold: the caller asked for
    resilience explicitly, and tiny workloads are exactly the ones whose
    pool startup cost does not matter.
    """
    budget = (budget or QueryBudget()).start()
    works = group_by_component(net, nodes)
    out: dict[int, MarginalOutcome] = {
        EPSILON: MarginalOutcome(1.0, 1.0, "exact", True)
    }
    parallel = workers is not None and workers >= 2 and len(works) >= 2
    with _span(
        "resilient_marginals",
        components=len(works),
        mode="parallel" if parallel else "serial",
    ) as sp:
        if registry is not None:
            registry.gauge("resilience.components", len(works))
        if cache is None:
            cache = SubformulaCache()
        fractions = exact_fractions(works)
        if not parallel:
            for work, fraction in zip(works, fractions):
                solved = resilient_component_marginals(
                    work.slice.network,
                    work.targets,
                    budget=budget,
                    cache=cache,
                    rng=_component_rng(seed, work.slice.to_orig(work.targets[0])),
                    registry=registry,
                    narrow=work.narrow,
                    exact_fraction=fraction,
                    est_cost=work.cost,
                )
                for sub, outcome in solved.items():
                    out[work.slice.to_orig(sub)] = outcome
            return out

        chunks = _chunk_by_cost(works, workers * chunks_per_worker)
        sp.annotate(workers=workers, chunks=len(chunks))
        if registry is not None:
            registry.gauge("pool.workers", workers)
            registry.inc("pool.dispatches")
        tracer = current_tracer()

        def chunk_tasks(members):
            return [
                (
                    works[i].slice.network,
                    works[i].targets,
                    works[i].narrow,
                    works[i].slice.to_orig(works[i].targets[0]),
                    fractions[i],
                    works[i].cost,
                )
                for i in members
            ]

        def payload_fn(index, attempt):
            return (
                chunk_tasks(chunks[index]),
                budget.for_worker(),
                seed,
                tracer is not None,
                index,
                attempt,
                fault_plan,
            )

        def serial_fn(index):
            solved = [
                resilient_component_marginals(
                    subnet,
                    targets,
                    budget=budget,
                    cache=cache,
                    rng=_component_rng(seed, rng_key),
                    registry=registry,
                    narrow=narrow,
                    exact_fraction=fraction,
                    est_cost=est_cost,
                )
                for subnet, targets, narrow, rng_key, fraction, est_cost
                in chunk_tasks(chunks[index])
            ]
            return solved, [], []

        outcomes = run_chunks(
            _resilient_chunk,
            payload_fn,
            len(chunks),
            workers=workers,
            serial_fn=serial_fn,
            timeout=timeout,
            max_retries=max_retries,
            validate=_validate_outcomes,
            registry=registry,
        )
        for index, chunk_outcome in enumerate(outcomes):
            solved_list, entries, worker_spans = chunk_outcome.result
            for i, solved in zip(chunks[index], solved_list):
                for sub, outcome in solved.items():
                    out[works[i].slice.to_orig(sub)] = outcome
            if entries:
                cache.merge(entries)
            if worker_spans and tracer is not None:
                tracer.attach(worker_spans, under=sp.span)
    return out
