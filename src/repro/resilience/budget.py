"""Cooperative execution budgets: deadlines and resource caps.

A :class:`QueryBudget` bounds one query execution end to end: a wall-clock
deadline plus caps on network growth, elimination width, DPLL calls, OBDD
nodes, approximation work, and Monte-Carlo samples. It is *cooperative*:
nothing preempts a running kernel — instead the evaluator, both pL engines,
and every inference backend call :meth:`QueryBudget.checkpoint` at natural
step boundaries (one relational operator, one eliminated variable, one
clique-tree message, a block of DPLL calls), and the checkpoint raises
:class:`~repro.errors.DeadlineExceededError` once the deadline has passed.

Checkpoints cost one ``time.monotonic()`` call, so leaving a budget attached
is cheap; a ``None`` budget costs nothing at all (every call site guards
with ``if budget is not None``).

Budgets cross process boundaries: :meth:`QueryBudget.for_worker` converts
the absolute monotonic deadline back into a relative remaining-seconds
budget, which the worker re-anchors against its own clock via
:meth:`QueryBudget.start`. :meth:`QueryBudget.sub` carves out a fraction of
the remaining time for one rung of the degradation ladder so a hopeless
exact attempt cannot starve the fallbacks behind it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.errors import BudgetExceededError, DeadlineExceededError

__all__ = ["QueryBudget", "UNLIMITED"]


@dataclass
class QueryBudget:
    """Resource budget for one query execution.

    All caps are optional; the default budget is unlimited, so attaching one
    never changes behaviour until a cap is set. Budgets are picklable while
    un-started; a started budget must cross process boundaries through
    :meth:`for_worker` (monotonic clocks do not compare across processes).

    Examples
    --------
    >>> b = QueryBudget(deadline_seconds=30.0, max_network_nodes=100_000)
    >>> b.start().expired
    False
    >>> QueryBudget().checkpoint("anything")   # unlimited: always a no-op
    """

    #: Wall-clock deadline for the whole execution, in seconds; ``None``
    #: means no deadline.
    deadline_seconds: float | None = None
    #: Cap on And-Or network size during evaluation (offending-tuple-dense
    #: instances grow the network; this bounds the memory/inference exposure).
    max_network_nodes: int | None = None
    #: Elimination-width cap for the exact VE/junction paths; ``None`` keeps
    #: the engine default (:data:`repro.core.inference.VE_WIDTH_LIMIT`).
    max_width: int | None = None
    #: DPLL call budget for exact DNF solves.
    dpll_max_calls: int = 5_000_000
    #: OBDD construction budget (decision nodes).
    obdd_max_nodes: int = 200_000
    #: Target interval width for the bounds rung of the ladder.
    approx_epsilon: float = 0.01
    #: Expansion budget for the bounds rung.
    approx_max_calls: int = 200_000
    #: Monte-Carlo samples for the sampling rung.
    max_samples: int = 20_000
    #: Absolute monotonic deadline, set by :meth:`start`; internal.
    started_at: float | None = None

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "QueryBudget":
        """Anchor the deadline against this process's monotonic clock.

        Idempotent: calling it again keeps the original anchor, so nested
        layers can all ``budget.start()`` defensively.
        """
        if self.deadline_seconds is not None and self.started_at is None:
            self.started_at = time.monotonic()
        return self

    def for_worker(self) -> "QueryBudget":
        """A picklable copy carrying the *remaining* deadline.

        The worker re-anchors with :meth:`start` against its own clock, so
        time already spent in the parent counts against the worker too
        (minus pool dispatch latency, which we accept). A parent whose
        deadline has already passed yields a zero-second worker budget (never
        a negative one), which expires at the worker's first checkpoint.
        """
        remaining = self.remaining()
        return replace(
            self,
            deadline_seconds=max(0.0, remaining) if remaining is not None else None,
            started_at=None,
        )

    def sub(self, fraction: float) -> "QueryBudget":
        """A child budget owning *fraction* of the remaining time.

        Caps are inherited; only the deadline shrinks. Used by the
        degradation ladder to stop one rung from consuming the whole
        deadline. A child of an unlimited budget is unlimited.
        """
        remaining = self.remaining()
        if remaining is None:
            return replace(self, started_at=None)
        child = replace(
            self,
            deadline_seconds=max(0.0, remaining * fraction),
            started_at=None,
        )
        return child.start()

    # ------------------------------------------------------------- accounting
    def remaining(self) -> float | None:
        """Seconds until the deadline (``None`` when unlimited).

        Un-started budgets report their full ``deadline_seconds``.
        """
        if self.deadline_seconds is None:
            return None
        if self.started_at is None:
            return self.deadline_seconds
        return self.deadline_seconds - (time.monotonic() - self.started_at)

    @property
    def expired(self) -> bool:
        """True once the deadline has passed."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def admissible(self, min_seconds: float = 0.0) -> bool:
        """Whether dispatching work under this budget can possibly succeed.

        Admission control in :mod:`repro.serve` calls this *before* queueing
        a request: a budget with no deadline is always admissible; one whose
        remaining time is not strictly greater than *min_seconds* is
        rejected up front instead of being dispatched to die at its first
        mid-operator checkpoint.
        """
        remaining = self.remaining()
        return remaining is None or remaining > min_seconds

    # ------------------------------------------------------------ checkpoints
    def checkpoint(self, stage: str = "") -> None:
        """Cooperative deadline check; call at natural step boundaries.

        Raises
        ------
        DeadlineExceededError
            Once the wall-clock deadline has passed.
        """
        if self.deadline_seconds is None:
            return
        if self.expired:
            raise DeadlineExceededError(
                f"deadline of {self.deadline_seconds:.3f}s exceeded"
                + (f" during {stage}" if stage else "")
            )

    def check_nodes(self, nodes: int, stage: str = "") -> None:
        """Enforce the network-size cap.

        Raises
        ------
        BudgetExceededError
            When the network has grown past ``max_network_nodes``.
        """
        if self.max_network_nodes is not None and nodes > self.max_network_nodes:
            raise BudgetExceededError(
                f"network grew to {nodes} nodes, over the budget of "
                f"{self.max_network_nodes}"
                + (f" during {stage}" if stage else "")
            )

    def width_limit(self, default: int) -> int:
        """The VE width cap to use: ``max_width`` if set, else *default*."""
        return default if self.max_width is None else self.max_width


#: A shared no-cap budget for call sites that want to avoid ``None`` checks.
UNLIMITED = QueryBudget()
