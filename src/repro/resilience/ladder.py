"""The graceful-degradation ladder: exact where possible, sound bounds beyond.

Instance hardness varies wildly across the answers of one query (the
paper's central observation): most components of the And-Or network are
extensionally cheap, a few offending-tuple-dense ones are #P-hard. Without
this module, one such component kills the whole query with a
:class:`~repro.errors.CapacityError` or blows the deadline. With it, every
answer independently walks a five-rung ladder and *always* comes back with
a sound enclosure of its probability:

1. **exact** — the normal component solve
   (:func:`repro.perf.parallel.solve_slice`: tree propagation / variable
   elimination / junction tree / cached DPLL), under a fraction of the
   remaining deadline (adaptive: the caller sizes ``exact_fraction`` from
   its per-component cost estimates, and a hopeless estimate skips the
   rung outright);
2. **dissociation** — two linear-time extensional folds over the component
   (:func:`repro.dissociation.network.network_dissociation_bounds`): a
   sound enclosure that wins outright when its width is within the
   budget's tolerance, and otherwise rides down the ladder as a prior to
   intersect with;
3. **obdd** — compile the partial-lineage DNF into an OBDD
   (:func:`repro.lineage.obdd.build_obdd`) under the budget's node cap:
   still exact, and robust on formulas whose DPLL trace thrashes;
4. **bounds** — Olteanu-Huang-Koch truncated evaluation
   (:func:`repro.lineage.approx_bounds.approximate_probability`): a sound
   ``[lower, upper]`` interval whatever the expansion budget;
5. **sampling** — Karp-Luby on the DNF (or forward sampling on the
   network when the DNF itself was uncompilable) with a Hoeffding
   confidence interval.

Each attempt is recorded as a :class:`DegradationStep` (rung, outcome,
reason, seconds), so a degraded answer carries its full provenance; the
:class:`MarginalOutcome`/:class:`AnswerResult` objects expose
``(lower, upper)``, the winning rung, and whether the value is exact.
Every rung transition emits :mod:`repro.obs` metrics and spans.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.network import EPSILON, AndOrNetwork
from repro.dissociation.network import network_dissociation_bounds
from repro.errors import BudgetExceededError, CapacityError, InferenceError
from repro.lineage.approx_bounds import Interval, approximate_probability
from repro.obs.trace import span as _span
from repro.resilience.budget import QueryBudget

__all__ = [
    "DegradationStep",
    "MarginalOutcome",
    "AnswerResult",
    "resilient_component_marginals",
    "LADDER_RUNGS",
    "SAMPLING_DELTA",
]

#: The rungs, in fallback order.
LADDER_RUNGS = ("exact", "dissociation", "obdd", "bounds", "karp-luby", "forward")

#: Calibration for the rung-1 skip: if the component's estimated solve cost
#: (factor-table entries) exceeds what this throughput could process in the
#: remaining deadline, the exact attempt is hopeless and the ladder starts
#: at dissociation instead of burning its deadline slice.
EXACT_COST_PER_SECOND = 5e7

#: Confidence parameter for the sampling rung's Hoeffding interval: the
#: interval contains the true probability with probability ``1 - δ``.
SAMPLING_DELTA = 1e-6

#: Failures a rung may recover from; anything else is a real bug and raises.
_RECOVERABLE = (BudgetExceededError, CapacityError, InferenceError)


@dataclass(frozen=True)
class DegradationStep:
    """Provenance of one ladder attempt."""

    rung: str
    #: ``"ok"`` (this rung produced the result), ``"failed"``, or
    #: ``"skipped"`` (a prerequisite — e.g. the DNF — was unavailable).
    outcome: str
    reason: str
    seconds: float

    def as_dict(self) -> dict:
        return {
            "rung": self.rung,
            "outcome": self.outcome,
            "reason": self.reason,
            "seconds": self.seconds,
        }


@dataclass
class MarginalOutcome:
    """A sound enclosure of one node's marginal, with its provenance."""

    lower: float
    upper: float
    #: The ladder rung that produced the enclosure.
    method: str
    #: True when ``lower == upper`` came from an exact rung.
    exact: bool
    steps: list[DegradationStep] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when the first rung (plain exact inference) did not win.

        Note an OBDD fallback is degraded yet still ``exact``: the ladder
        moved past rung 1, but the value it produced is not approximate.
        """
        return self.method != "exact"

    @property
    def midpoint(self) -> float:
        return (self.lower + self.upper) / 2.0

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def as_dict(self) -> dict:
        return {
            "lower": self.lower,
            "upper": self.upper,
            "method": self.method,
            "exact": self.exact,
            "degraded": self.degraded,
            "steps": [s.as_dict() for s in self.steps],
        }


@dataclass
class AnswerResult:
    """One answer tuple's probability enclosure (the resilient API's unit).

    ``probability`` is the best point estimate — the exact value when
    ``exact``, the interval midpoint otherwise; ``(lower, upper)`` always
    soundly encloses the true answer probability (up to the sampling rung's
    ``1 - δ`` confidence)."""

    row: tuple
    lower: float
    upper: float
    method: str
    exact: bool
    steps: list[DegradationStep] = field(default_factory=list)

    @property
    def probability(self) -> float:
        return (self.lower + self.upper) / 2.0

    @property
    def degraded(self) -> bool:
        """True when a fallback rung (not plain exact inference) answered."""
        return self.method != "exact"

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float, tolerance: float = 1e-9) -> bool:
        """Is *value* inside the enclosure (up to float noise)?"""
        return self.lower - tolerance <= value <= self.upper + tolerance

    def as_dict(self) -> dict:
        return {
            "row": list(self.row),
            "probability": self.probability,
            "lower": self.lower,
            "upper": self.upper,
            "method": self.method,
            "exact": self.exact,
            "degraded": self.degraded,
            "steps": [s.as_dict() for s in self.steps],
        }

    @classmethod
    def from_marginal(
        cls, row: tuple, row_probability: float, outcome: MarginalOutcome
    ) -> "AnswerResult":
        """Scale a lineage-node enclosure by the row's own probability.

        The anonymous row event is independent of the network, so the
        answer probability is ``row_probability · Pr(lineage)`` and the
        enclosure scales linearly.
        """
        return cls(
            row=row,
            lower=row_probability * outcome.lower,
            upper=row_probability * outcome.upper,
            method=outcome.method,
            exact=outcome.exact,
            steps=outcome.steps,
        )


def _step(steps, registry, rung, outcome, reason, started) -> None:
    steps.append(DegradationStep(rung, outcome, reason, perf_counter() - started))
    if registry is not None:
        registry.inc(f"resilience.rung.{rung}.{outcome}")


def _reason(exc: Exception) -> str:
    return f"{type(exc).__name__}: {exc}"


def resilient_component_marginals(
    subnet: AndOrNetwork,
    targets,
    budget: QueryBudget | None = None,
    cache=None,
    rng: random.Random | None = None,
    registry=None,
    narrow: bool | None = None,
    exact_fraction: float = 0.5,
    est_cost: float | None = None,
) -> dict[int, MarginalOutcome]:
    """Ladder solve of one component slice: never raises on hard instances.

    Tries the exact engines on the whole component first (one solve shared
    by all its targets, like the non-resilient path), under
    ``exact_fraction`` of the remaining deadline — callers that know the
    per-component cost estimates size this adaptively, so cheap components
    keep generous slices and the expensive one cannot starve its own
    fallbacks. When *est_cost* (factor-table entries) says the exact solve
    cannot finish inside the remaining deadline at all, rung 1 is skipped
    outright. On failure the whole component gets linear-time dissociation
    bounds; targets whose enclosure is still too wide degrade *per target*
    through OBDD, interval bounds, and sampling, intersecting with the
    dissociation prior. Only genuine bugs
    (non-:class:`~repro.errors.ReproError` exceptions) propagate.
    """
    from repro.perf.parallel import solve_slice

    budget = (budget or QueryBudget()).start()
    rng = rng or random.Random(0)
    out: dict[int, MarginalOutcome] = {}
    with _span("ladder", nodes=len(subnet), targets=len(targets)) as sp:
        # Rung 1 — exact, on a slice of the remaining deadline.
        steps: list[DegradationStep] = []
        started = perf_counter()
        remaining = budget.remaining()
        if (
            est_cost is not None
            and remaining is not None
            and est_cost > EXACT_COST_PER_SECOND * max(remaining, 0.0)
        ):
            _step(
                steps, registry, "exact", "skipped",
                f"estimated cost {est_cost:.3g} entries exceeds deadline",
                started,
            )
            sp.annotate(exact="skipped")
        else:
            try:
                solved = solve_slice(
                    subnet,
                    list(targets),
                    "auto",
                    budget.dpll_max_calls,
                    cache,
                    narrow=narrow,
                    budget=budget.sub(exact_fraction),
                )
            except _RECOVERABLE as exc:
                _step(steps, registry, "exact", "failed", _reason(exc), started)
                sp.annotate(exact="failed")
            else:
                _step(steps, registry, "exact", "ok", "", started)
                for t in targets:
                    out[t] = MarginalOutcome(
                        solved[t], solved[t], "exact", True, steps
                    )
                return out

        # Rung 2 — dissociation: two linear-time folds bound the whole
        # component at once; a within-tolerance enclosure wins outright,
        # a wider one rides along as a prior for the lower rungs.
        priors: dict[int, tuple[float, float]] = {}
        started = perf_counter()
        dissoc = network_dissociation_bounds(
            subnet, [t for t in targets if t != EPSILON]
        )
        if dissoc is None:
            _step(
                steps, registry, "dissociation", "skipped",
                "conjunctive sharing", started,
            )
        else:
            priors = dissoc.bounds
            _step(
                steps, registry, "dissociation", "ok",
                "exact folds" if dissoc.exact
                else f"{dissoc.shared} shared nodes split",
                started,
            )
        degraded = 0
        for t in targets:
            if t == EPSILON:
                out[t] = MarginalOutcome(1.0, 1.0, "exact", True, list(steps))
                continue
            prior = priors.get(t)
            if prior is not None:
                lo, up = prior
                if registry is not None:
                    registry.observe("resilience.dissociation.width", up - lo)
                if up - lo <= budget.approx_epsilon:
                    out[t] = MarginalOutcome(
                        lo, up, "dissociation", lo == up, list(steps)
                    )
                    degraded += 1
                    continue
            out[t] = _degrade_target(
                subnet, t, budget, list(steps), rng, registry, prior=prior
            )
            degraded += 1
        sp.add("degraded", degraded)
        if registry is not None:
            registry.inc("resilience.degraded_targets", degraded)
    return out


def _degrade_target(
    subnet, target, budget, steps, rng, registry,
    prior: tuple[float, float] | None = None,
) -> MarginalOutcome:
    """Rungs 3-5 for one target whose exact and dissociation rungs failed.

    *prior* is the target's dissociation enclosure when one exists; every
    lower rung's interval intersects with it (both are sound, so the
    intersection is too).
    """
    if target == EPSILON:
        return MarginalOutcome(1.0, 1.0, "exact", True, steps)
    pr = Interval(prior[0], prior[1]) if prior is not None else None

    dnf = probs = None
    started = perf_counter()
    try:
        from repro.core.compile import partial_lineage_dnf

        dnf, probs = partial_lineage_dnf(subnet, target)
    except _RECOVERABLE as exc:
        _step(steps, registry, "obdd", "skipped", _reason(exc), started)
        _step(steps, registry, "bounds", "skipped", "no DNF", started)
        return _sampling_rung(subnet, target, None, None, budget, steps, rng,
                              registry, prior=pr)

    # Rung 3 — OBDD: still exact, materialised Shannon expansion.
    started = perf_counter()
    try:
        from repro.lineage.obdd import build_obdd

        obdd = build_obdd(
            dnf, max_nodes=budget.obdd_max_nodes, budget=budget.sub(0.5)
        )
        p = obdd.probability(probs)
    except _RECOVERABLE as exc:
        _step(steps, registry, "obdd", "failed", _reason(exc), started)
    else:
        _step(steps, registry, "obdd", "ok", "", started)
        return MarginalOutcome(p, p, "obdd", True, steps)

    # Rung 4 — sound interval bounds by truncated evaluation.
    started = perf_counter()
    try:
        iv = approximate_probability(
            dnf,
            probs,
            epsilon=budget.approx_epsilon,
            max_calls=budget.approx_max_calls,
            budget=budget,
        )
    except (_RECOVERABLE + (RecursionError,)) as exc:
        _step(steps, registry, "bounds", "failed", _reason(exc), started)
    else:
        _step(steps, registry, "bounds", "ok", "", started)
        iv = _intersect(iv, pr)
        if iv.width <= budget.approx_epsilon:
            return MarginalOutcome(
                iv.low, iv.high, "bounds", False, steps
            )
        # Interval too loose for the caller's tolerance: let sampling try
        # to do better, but keep this sound interval to intersect with.
        return _sampling_rung(
            subnet, target, dnf, probs, budget, steps, rng, registry,
            prior=iv,
        )
    return _sampling_rung(subnet, target, dnf, probs, budget, steps, rng,
                          registry, prior=pr)


def _intersect(iv: Interval, prior: Interval | None) -> Interval:
    """Intersect two sound enclosures; on float-noise crossing keep the
    narrower one."""
    if prior is None:
        return iv
    low, high = max(iv.low, prior.low), min(iv.high, prior.high)
    if low <= high:
        return Interval(low, high)
    return prior if prior.width < iv.width else iv


def _sampling_rung(
    subnet, target, dnf, probs, budget, steps, rng, registry,
    prior: Interval | None = None,
) -> MarginalOutcome:
    """Rung 4 — Monte-Carlo with a Hoeffding confidence interval.

    Karp-Luby on the DNF when it compiled (relative-error behaviour,
    better for small probabilities — the estimator is ``S · mean`` of a
    Bernoulli, so Hoeffding scales by the union weight ``S``); forward
    sampling on the sub-network otherwise. Never fails: the floor is a
    small sample count even with the deadline already blown, and the
    result is intersected with any sound *prior* interval from rung 3.
    """
    samples = max(64, budget.max_samples)
    half_log = math.log(2.0 / SAMPLING_DELTA) / 2.0
    started = perf_counter()
    if dnf is not None:
        from repro.lineage.sampling import karp_luby

        scale = min(
            float(len(dnf)),
            sum(math.prod(probs[v] for v in c) for c in dnf.clauses),
        )
        est = karp_luby(dnf, probs, samples, rng)
        eps = scale * math.sqrt(half_log / samples)
        method = "karp-luby"
    else:
        from repro.core.approximate import forward_sample_marginal

        est = forward_sample_marginal(subnet, target, samples, rng)
        eps = math.sqrt(half_log / samples)
        method = "forward"
    low, high = max(0.0, est - eps), min(1.0, est + eps)
    if prior is not None:
        # Both enclosures hold (the prior surely, ours with 1-δ), so their
        # intersection does too; guard against an empty float intersection.
        low, high = max(low, prior.low), min(high, prior.high)
        if low > high:
            low, high = prior.low, prior.high
    _step(steps, registry, method, "ok", f"{samples} samples", started)
    return MarginalOutcome(low, high, method, False, steps)
