"""repro.resilience — deadlines, graceful degradation, fault tolerance.

The production-path answer to instance hardness: a :class:`QueryBudget`
threads wall-clock deadlines and resource caps through the evaluator and
every inference backend as cooperative checkpoints; the degradation
ladder (:mod:`~repro.resilience.ladder`) turns budget blow-ups on hard
components into sound ``[lower, upper]`` enclosures instead of failures;
the fault-tolerant pool (:mod:`~repro.resilience.pool`) survives worker
crashes, stuck workers, and poisoned results with bounded retry and
serial requeue; and :mod:`~repro.resilience.faults` injects all of those
failures deterministically for the chaos test suite.

Entry points: :meth:`repro.core.executor.EvaluationResult
.resilient_answer_probabilities` (per-answer :class:`AnswerResult`
enclosures), :func:`resilient_marginals` (node-level), and the CLI's
``repro query --deadline/--degrade``.

Submodules import lazily so the core engines can depend on
:mod:`repro.resilience.pool`/``budget`` without cycles.
"""

from __future__ import annotations

__all__ = [
    "QueryBudget",
    "UNLIMITED",
    "AnswerResult",
    "MarginalOutcome",
    "DegradationStep",
    "LADDER_RUNGS",
    "resilient_component_marginals",
    "resilient_marginals",
    "exact_fractions",
    "FaultSpec",
    "FaultPlan",
    "ChunkOutcome",
    "run_chunks",
]

_HOMES = {
    "QueryBudget": "repro.resilience.budget",
    "UNLIMITED": "repro.resilience.budget",
    "AnswerResult": "repro.resilience.ladder",
    "MarginalOutcome": "repro.resilience.ladder",
    "DegradationStep": "repro.resilience.ladder",
    "LADDER_RUNGS": "repro.resilience.ladder",
    "resilient_component_marginals": "repro.resilience.ladder",
    "resilient_marginals": "repro.resilience.execute",
    "exact_fractions": "repro.resilience.execute",
    "FaultSpec": "repro.resilience.faults",
    "FaultPlan": "repro.resilience.faults",
    "ChunkOutcome": "repro.resilience.pool",
    "run_chunks": "repro.resilience.pool",
}


def __getattr__(name: str):
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module 'repro.resilience' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(home), name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
