"""Exact query evaluation on BID databases.

The intensional route generalises cleanly: ground the lineage DNF exactly as
for tuple-independent data (each block *alternative* is an event variable),
then run a DPLL whose Shannon step branches over a **block** — one branch per
alternative plus one for "no alternative" — instead of a variable's
true/false. Choosing an alternative makes its block-mates false, so the
mutual exclusion is enforced structurally, and the independent-component and
memoisation machinery carries over with one change: components must be
merged when they share a *block*, not just a variable.

On singleton blocks the branching degenerates to the plain Shannon expansion,
and the solver coincides with :func:`repro.lineage.exact.dnf_probability` —
tested.
"""

from __future__ import annotations

import sys
from collections import Counter
from typing import Mapping, Sequence

from repro.bid.relation import BIDDatabase
from repro.errors import InferenceError
from repro.lineage.dnf import DNF, EventVar
from repro.query.grounding import all_groundings
from repro.query.syntax import ConjunctiveQuery

_Clauses = frozenset[frozenset[int]]


class _BlockSolver:
    def __init__(
        self,
        probs: list[float],
        block_of: list[int],
        blocks: list[list[int]],
        none_probs: list[float],
        max_calls: int,
    ) -> None:
        self.probs = probs
        self.block_of = block_of
        self.blocks = blocks
        self.none_probs = none_probs
        self.max_calls = max_calls
        self.calls = 0
        self.memo: dict[_Clauses, float] = {}

    def probability(self, clauses: _Clauses) -> float:
        self.calls += 1
        if self.calls > self.max_calls:
            raise InferenceError(
                f"block-DPLL exceeded the budget of {self.max_calls} calls"
            )
        if not clauses:
            return 0.0
        if frozenset() in clauses:
            return 1.0
        hit = self.memo.get(clauses)
        if hit is not None:
            return hit
        groups = self._components(clauses)
        if len(groups) > 1:
            failure = 1.0
            for g in groups:
                failure *= 1.0 - self._branch(g)
                if failure == 0.0:
                    break
            result = 1.0 - failure
        else:
            result = self._branch(clauses)
        self.memo[clauses] = result
        return result

    def _components(self, clauses: _Clauses) -> list[_Clauses]:
        """Clauses grouped by connectivity through shared variables OR
        shared blocks (block-mates are correlated even if never co-located
        in a clause)."""
        parent: dict[int, int] = {}

        def find(v: int) -> int:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        def union(a: int, b: int) -> None:
            parent.setdefault(a, a)
            parent.setdefault(b, b)
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for c in clauses:
            it = iter(c)
            first = next(it)
            parent.setdefault(first, first)
            for v in it:
                union(first, v)
            for v in c:
                # connect the whole block through its first member
                union(v, self.blocks[self.block_of[v]][0])
        groups: dict[int, list[frozenset[int]]] = {}
        for c in clauses:
            groups.setdefault(find(next(iter(c))), []).append(c)
        return [frozenset(g) for g in groups.values()]

    def _branch(self, clauses: _Clauses) -> float:
        counts: Counter[int] = Counter()
        for c in clauses:
            counts.update(c)
        var, _ = counts.most_common(1)[0]
        block_id = self.block_of[var]
        members = self.blocks[block_id]
        total = 0.0
        for alt in members:
            p = self.probs[alt]
            if p == 0.0:
                continue
            conditioned = self._choose(clauses, alt, members)
            if frozenset() in conditioned:
                total += p
            elif conditioned:
                total += p * self.probability(conditioned)
        none_p = self.none_probs[block_id]
        if none_p > 0.0:
            conditioned = self._choose(clauses, None, members)
            if frozenset() in conditioned:
                total += none_p
            elif conditioned:
                total += none_p * self.probability(conditioned)
        return total

    @staticmethod
    def _choose(
        clauses: _Clauses, chosen: int | None, members: Sequence[int]
    ) -> _Clauses:
        """Condition on the block outcome: the chosen alternative becomes
        true (removed from clauses); all other members become false (their
        clauses drop)."""
        others = set(members)
        if chosen is not None:
            others.discard(chosen)
        out = set()
        for c in clauses:
            if c & others:
                continue
            out.add(c - {chosen} if chosen is not None and chosen in c else c)
        return frozenset(out)


def block_dnf_probability(
    dnf: DNF,
    probs: Mapping[EventVar, float],
    block_key,
    none_probability,
    max_calls: int = 2_000_000,
) -> float:
    """Probability of a DNF whose variables live in exclusive blocks.

    Parameters
    ----------
    dnf / probs:
        The formula and the alternatives' marginal probabilities.
    block_key:
        Function mapping an :class:`EventVar` to a hashable block identity;
        variables sharing it are mutually exclusive.
    none_probability:
        Function mapping a block identity to the probability that the block
        yields *no* alternative at all. For blocks only partially mentioned
        by the formula, fold the unmentioned alternatives into this value.
    """
    if dnf.is_true:
        return 1.0
    if dnf.is_false:
        return 0.0
    variables = sorted(dnf.variables())
    ids = {v: i for i, v in enumerate(variables)}
    p = [float(probs[v]) for v in variables]
    block_ids: dict[object, int] = {}
    block_of: list[int] = []
    blocks: list[list[int]] = []
    none_probs: list[float] = []
    for v in variables:
        key = block_key(v)
        if key not in block_ids:
            block_ids[key] = len(blocks)
            blocks.append([])
            none_probs.append(float(none_probability(key)))
        bid = block_ids[key]
        block_of.append(bid)
        blocks[bid].append(ids[v])
    for bid, members in enumerate(blocks):
        total = sum(p[m] for m in members) + none_probs[bid]
        if total > 1.0 + 1e-6:
            raise InferenceError(
                f"block {bid} probabilities sum to {total} > 1"
            )
    clauses = frozenset(frozenset(ids[v] for v in c) for c in dnf.clauses)
    solver = _BlockSolver(p, block_of, blocks, none_probs, max_calls)
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000 + 6 * len(variables)))
    try:
        return solver.probability(clauses)
    finally:
        sys.setrecursionlimit(old_limit)


def bid_query_probability(
    query: ConjunctiveQuery, db: BIDDatabase, max_calls: int = 2_000_000
) -> float:
    """Exact ``Pr(q)`` on a BID database, via block-aware lineage inference.

    Examples
    --------
    >>> db = BIDDatabase()
    >>> _ = db.add_relation("L", ("person", "city"), ("person",),
    ...     {("ann", "paris"): 0.6, ("ann", "tokyo"): 0.4})
    >>> _ = db.add_relation("C", ("city",), ("city",), {("paris",): 0.5})
    >>> q = __import__("repro.query.parser", fromlist=["parse_query"]
    ...     ).parse_query("L(x, y), C(y)")
    >>> round(bid_query_probability(q, db), 6)
    0.3
    """
    instance = db.deterministic_instance()
    clauses = []
    for ground in all_groundings(query.boolean_view(), instance):
        clauses.append(
            frozenset(EventVar(rel, row) for rel, row in ground.items())
        )
    dnf = DNF(clauses)
    if dnf.is_false:
        return 0.0
    probs = {v: db[v.relation].probability(v.row) for v in dnf.variables()}

    def block_key(v: EventVar):
        return (v.relation, db[v.relation].block_key(v.row))

    mentioned: dict[object, float] = {}
    for v in dnf.variables():
        key = block_key(v)
        mentioned[key] = mentioned.get(key, 0.0) + probs[v]

    def none_probability(key) -> float:
        # alternatives not mentioned by the lineage behave exactly like the
        # block's "no tuple" outcome as far as the formula is concerned
        return max(0.0, 1.0 - mentioned[key])

    return block_dnf_probability(
        dnf, probs, block_key, none_probability, max_calls
    )
