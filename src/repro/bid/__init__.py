"""Block-independent-disjoint (BID) probabilistic relations.

Section 8 lists "evaluate queries over more complicated models" as future
work. The standard next model up from tuple-independence is BID (the model
underlying MystiQ [4] and the dichotomy work [9]): tuples are grouped into
*blocks* sharing a key; tuples in one block are mutually exclusive
(at most one alternative is real), distinct blocks are independent.

This subpackage provides:

* ``relation`` — :class:`BIDRelation` / :class:`BIDDatabase`, with validation
  (block probabilities sum to ≤ 1) and possible-worlds enumeration;
* ``inference`` — exact query evaluation: ground the lineage as usual (each
  alternative is an event variable), then run a *block-aware* DPLL whose
  Shannon expansion branches over a block's alternatives (plus "none")
  instead of a single variable's true/false, preserving the independent-
  component and memoisation machinery.

Tuple-independent relations embed as BID relations with singleton blocks, in
which case the block-DPLL coincides with the plain one — tested.
"""

from repro.bid.relation import BIDDatabase, BIDRelation
from repro.bid.inference import bid_query_probability, block_dnf_probability

__all__ = [
    "BIDRelation",
    "BIDDatabase",
    "block_dnf_probability",
    "bid_query_probability",
]
