"""BID relations: blocks of mutually exclusive tuples.

A BID relation has a schema split into *key* attributes and *value*
attributes. Tuples sharing a key form a block; within a block at most one
tuple exists in a possible world, and block probabilities must sum to at
most 1 (the remainder is the probability that the block contributes no
tuple). Blocks are mutually independent.

Tuple-independence is the special case where the key is the whole schema
(every block a singleton).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, Mapping, Sequence

from repro.db.schema import RelationSchema, Row
from repro.errors import CapacityError, ProbabilityError, SchemaError

_SUM_TOLERANCE = 1e-9


class BIDRelation:
    """A block-independent-disjoint probabilistic relation.

    Parameters
    ----------
    schema:
        Relation schema.
    key:
        The block-key attributes (a subset of the schema). Tuples agreeing on
        the key are mutually exclusive alternatives.

    Examples
    --------
    A person has exactly one (uncertain) city:

    >>> rel = BIDRelation.create(
    ...     "Lives", ("person", "city"), ("person",),
    ...     {("ann", "paris"): 0.7, ("ann", "tokyo"): 0.3,
    ...      ("bob", "paris"): 0.5})
    >>> sorted(rel.block(("ann",)))
    [('ann', 'paris'), ('ann', 'tokyo')]
    >>> rel.none_probability(("bob",))
    0.5
    """

    __slots__ = ("schema", "key", "_key_idx", "_blocks")

    def __init__(
        self,
        schema: RelationSchema,
        key: Sequence[str],
        rows: Mapping[Row, float] | Iterable[tuple[Row, float]] | None = None,
    ) -> None:
        self.schema = schema
        self.key = tuple(key)
        self._key_idx = schema.indices_of(self.key)
        self._blocks: Dict[Row, Dict[Row, float]] = {}
        if rows is not None:
            items = rows.items() if isinstance(rows, Mapping) else rows
            for row, p in items:
                self.add(row, p)

    @classmethod
    def create(
        cls,
        name: str,
        attributes: Sequence[str],
        key: Sequence[str],
        rows: Mapping[Row, float] | None = None,
    ) -> "BIDRelation":
        """Build a BID relation from name, attributes, key, and rows."""
        return cls(RelationSchema(name, tuple(attributes)), key, rows)

    @property
    def name(self) -> str:
        """The relation name."""
        return self.schema.name

    def block_key(self, row: Row) -> Row:
        """The block key of *row*."""
        return tuple(row[i] for i in self._key_idx)

    def add(self, row: Iterable, probability: float) -> None:
        """Insert an alternative; validates the block's probability budget."""
        r = self.schema.check_row(row)
        p = float(probability)
        if not 0.0 < p <= 1.0:
            raise ProbabilityError(
                f"tuple {r!r} probability {p} outside (0, 1]"
            )
        block = self._blocks.setdefault(self.block_key(r), {})
        if r in block:
            raise SchemaError(f"duplicate tuple {r!r} in {self.name}")
        if sum(block.values()) + p > 1.0 + _SUM_TOLERANCE:
            raise ProbabilityError(
                f"block {self.block_key(r)!r} of {self.name} exceeds total "
                f"probability 1 with tuple {r!r}"
            )
        block[r] = p

    # --------------------------------------------------------------- access
    def blocks(self) -> Iterator[tuple[Row, dict[Row, float]]]:
        """Iterate over ``(key, {row: probability})`` blocks."""
        return iter(self._blocks.items())

    def block(self, key: Row) -> dict[Row, float]:
        """The alternatives of one block (empty dict when absent)."""
        return dict(self._blocks.get(tuple(key), {}))

    def none_probability(self, key: Row) -> float:
        """Probability the block contributes no tuple."""
        return max(0.0, 1.0 - sum(self._blocks.get(tuple(key), {}).values()))

    def rows(self) -> list[Row]:
        """All alternatives across all blocks."""
        return [r for block in self._blocks.values() for r in block]

    def probability(self, row: Row) -> float:
        """Marginal probability of one alternative."""
        r = tuple(row)
        return self._blocks.get(self.block_key(r), {}).get(r, 0.0)

    def __len__(self) -> int:
        return sum(len(b) for b in self._blocks.values())

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows())

    def is_tuple_independent(self) -> bool:
        """True when every block is a singleton (plain independence)."""
        return all(len(b) == 1 for b in self._blocks.values())

    def __repr__(self) -> str:
        return (
            f"<BIDRelation {self.schema} key={self.key} "
            f"{len(self._blocks)} blocks, {len(self)} alternatives>"
        )


class BIDDatabase:
    """A collection of independent BID relations."""

    def __init__(self, relations: Iterable[BIDRelation] = ()) -> None:
        self._relations: Dict[str, BIDRelation] = {}
        for rel in relations:
            self.attach(rel)

    def attach(self, relation: BIDRelation) -> BIDRelation:
        """Register a relation under its schema name."""
        if relation.name in self._relations:
            raise SchemaError(f"relation {relation.name} already exists")
        self._relations[relation.name] = relation
        return relation

    def add_relation(
        self,
        name: str,
        attributes: Sequence[str],
        key: Sequence[str],
        rows: Mapping[Row, float] | None = None,
    ) -> BIDRelation:
        """Create, register, and return a new BID relation."""
        return self.attach(BIDRelation.create(name, attributes, key, rows))

    def __getitem__(self, name: str) -> BIDRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __iter__(self) -> Iterator[BIDRelation]:
        return iter(self._relations.values())

    def names(self) -> list[str]:
        """Registered relation names."""
        return list(self._relations)

    def deterministic_instance(self) -> dict[str, set[Row]]:
        """All alternatives of all relations (for lineage grounding)."""
        return {rel.name: set(rel.rows()) for rel in self}

    # ----------------------------------------------------- possible worlds
    def enumerate_worlds(
        self, max_blocks: int = 14
    ) -> Iterator[tuple[dict[str, set[Row]], float]]:
        """Every possible world with its probability.

        A world picks, independently per block, one alternative or none.
        The count is ``Π (|block| + 1)`` over all blocks (certain blocks —
        a single alternative of probability 1 — don't branch).
        """
        choices: list[tuple[str, list[tuple[Row | None, float]]]] = []
        for rel in self:
            for key, block in rel.blocks():
                options: list[tuple[Row | None, float]] = [
                    (row, p) for row, p in block.items()
                ]
                none_p = rel.none_probability(key)
                if none_p > 0.0:
                    options.append((None, none_p))
                choices.append((rel.name, options))
        branching = [c for c in choices if len(c[1]) > 1]
        if len(branching) > max_blocks:
            raise CapacityError(
                f"{len(branching)} branching blocks exceed the enumeration "
                f"limit of {max_blocks}"
            )
        for combo in itertools.product(*(options for _, options in choices)):
            world: dict[str, set[Row]] = {name: set() for name in self.names()}
            weight = 1.0
            for (name, _), (row, p) in zip(choices, combo):
                weight *= p
                if row is not None:
                    world[name].add(row)
            if weight > 0.0:
                yield world, weight

    def brute_force_probability(self, satisfies) -> float:
        """Ground truth by world enumeration."""
        return sum(w for world, w in self.enumerate_worlds() if satisfies(world))
