"""Purely extensional evaluation of safe (hierarchical) queries.

The classical counterpart [8] the paper builds on: safe queries admit plans
whose operators manipulate probabilities only. ``lifted`` evaluates a
hierarchical query directly by lifted inference (independence + independent
project); ``safeplan`` constructs an explicit safe plan in the
:mod:`repro.core.plan` algebra, whose joins are 1-1 by construction on every
instance.
"""

from repro.extensional.lifted import lifted_probability, lifted_answer_probabilities
from repro.extensional.safeplan import safe_plan

__all__ = [
    "lifted_probability",
    "lifted_answer_probabilities",
    "safe_plan",
]
