"""Explicit safe-plan construction for hierarchical queries.

Builds, in the :mod:`repro.core.plan` algebra, a plan that is data safe on
*every* instance (Definition 3.3): all its joins are 1-1 by construction.

The recursion maintains the invariant that every atom of the current
component contains every accumulated *head* variable (true initially for
Boolean queries, and for headed queries whose head variables occur in every
atom — e.g. all Table 1 queries). Then:

* a single atom becomes ``π_head(Scan)`` — projections are always safe;
* a component splits on existential connectivity into parts whose schemas all
  equal the current head, so the parts join 1-1 on their full schemas;
* otherwise a hierarchical component has a root variable ``x``; recurse with
  head ``∪ {x}`` and project back.

Feeding the resulting plan to the partial-lineage evaluator conditions zero
tuples on any instance — a property the test suite checks — so the evaluation
is purely extensional, matching [8].
"""

from __future__ import annotations

from repro.core.plan import Join, Plan, Project, Scan
from repro.errors import UnsafePlanError
from repro.query.syntax import Atom, ConjunctiveQuery


def _atom_vars(atom: Atom) -> set[str]:
    return {v.name for v in atom.variables()}


def _components(atoms: tuple[Atom, ...], head: frozenset[str]) -> list[tuple[Atom, ...]]:
    """Split atoms into connected components over non-head variables."""
    n = len(atoms)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(n):
        for j in range(i + 1, n):
            if (_atom_vars(atoms[i]) - head) & (_atom_vars(atoms[j]) - head):
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[ri] = rj
    groups: dict[int, list[Atom]] = {}
    for i, a in enumerate(atoms):
        groups.setdefault(find(i), []).append(a)
    return [tuple(g) for g in groups.values()]


def _component_plan(atoms: tuple[Atom, ...], head: frozenset[str]) -> Plan:
    head_sorted = tuple(sorted(head))
    if len(atoms) == 1:
        atom = atoms[0]
        return Project(Scan(atom.relation, atom.terms), head_sorted)
    roots = set.intersection(*(_atom_vars(a) for a in atoms)) - head
    if not roots:
        raise UnsafePlanError(
            f"component {[str(a) for a in atoms]} has no root variable: "
            f"the query is not hierarchical and admits no safe plan"
        )
    x = min(roots)
    inner = _plan(atoms, head | {x})
    return Project(inner, head_sorted)


def _plan(atoms: tuple[Atom, ...], head: frozenset[str]) -> Plan:
    comps = _components(atoms, head)
    plans = [_component_plan(c, head) for c in comps]
    acc = plans[0]
    on = tuple(sorted(head))
    for sub in plans[1:]:
        # Both sides have schema exactly `head`, so this join is 1-1 on every
        # instance (each side holds at most one row per join key).
        acc = Join(acc, sub, on=on)
    return acc


def safe_plan(query: ConjunctiveQuery) -> Plan:
    """A plan that is data safe on every instance, or raise.

    Raises
    ------
    UnsafePlanError
        If the query is not hierarchical, or has a head variable missing from
        some atom (the construction requires head variables to be join keys
        everywhere, as in the paper's benchmark queries).

    Examples
    --------
    >>> from repro.query import parse_query
    >>> print(safe_plan(parse_query("R(x,y), S(x,z)")))
    π[∅]((π[x](R(x, y)) ⋈[x] π[x](S(x, z))))
    """
    head = frozenset(v.name for v in query.head)
    for atom in query.atoms:
        if not head <= _atom_vars(atom):
            raise UnsafePlanError(
                f"head variables {sorted(head)} must occur in every atom, "
                f"but {atom} misses {sorted(head - _atom_vars(atom))}"
            )
    plan = _plan(query.atoms, head)
    final = tuple(v.name for v in query.head)
    if isinstance(plan, Project) and plan.attributes == final:
        return plan
    return Project(plan, final)
