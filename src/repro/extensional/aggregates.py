"""Expectation aggregates over conjunctive queries.

Complementary to probability computation: the *expected number of answers*
(or of satisfying groundings) needs no inference at all, safe or unsafe — by
linearity of expectation it is a sum of per-grounding products, and its
variance needs only pairwise clause intersections. These are the classic
"aggregates are easy where probabilities are hard" facts, useful both as
features and as cheap sanity bounds (``Pr(q) ≤ E[#groundings]``).

All functions are exact and polynomial-time for any self-join-free
conjunctive query.
"""

from __future__ import annotations

from repro.db.database import ProbabilisticDatabase
from repro.db.schema import Row
from repro.lineage.dnf import EventVar, answer_lineages, lineage_of_query
from repro.query.syntax import ConjunctiveQuery


def _clause_probability(
    clause: frozenset[EventVar], probs: dict[EventVar, float]
) -> float:
    p = 1.0
    for v in clause:
        p *= probs[v]
    return p


def expected_grounding_count(
    query: ConjunctiveQuery, db: ProbabilisticDatabase
) -> float:
    """``E[number of satisfied groundings]`` of the Boolean view of *query*.

    By linearity: the sum over lineage clauses of their probabilities —
    no independence reasoning needed.

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5, (2,): 0.5})
    >>> _ = db.add_relation("S", ("A", "B"), {(1, 1): 0.5, (2, 1): 1.0})
    >>> expected_grounding_count(parse_query("R(x), S(x,y)"), db)
    0.75
    """
    dnf, probs = lineage_of_query(query, db)
    return sum(_clause_probability(c, probs) for c in dnf.clauses)


def grounding_count_variance(
    query: ConjunctiveQuery, db: ProbabilisticDatabase
) -> float:
    """``Var[number of satisfied groundings]``, exactly.

    ``Var = Σ_i Σ_j (Pr(c_i ∧ c_j) − Pr(c_i) Pr(c_j))`` where
    ``Pr(c_i ∧ c_j)`` is the product over the *union* of the clauses'
    variables. Quadratic in the number of groundings.
    """
    dnf, probs = lineage_of_query(query, db)
    clauses = sorted(dnf.clauses, key=lambda c: sorted(map(str, c)))
    single = [_clause_probability(c, probs) for c in clauses]
    variance = 0.0
    for i, ci in enumerate(clauses):
        # diagonal: Var of an indicator
        variance += single[i] * (1.0 - single[i])
        for j in range(i + 1, len(clauses)):
            joint = _clause_probability(ci | clauses[j], probs)
            variance += 2.0 * (joint - single[i] * single[j])
    return max(0.0, variance)


def expected_answer_counts(
    query: ConjunctiveQuery, db: ProbabilisticDatabase
) -> dict[Row, float]:
    """Per-answer expected grounding counts for a headed query."""
    dnfs, probs = answer_lineages(query, db)
    return {
        answer: sum(_clause_probability(c, probs) for c in f.clauses)
        for answer, f in dnfs.items()
    }


def expected_answer_cardinality(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase,
) -> float:
    """``E[number of distinct answers]`` of a headed query.

    This one *does* need per-answer probabilities (an answer exists iff its
    lineage holds), so it runs the partial-lineage evaluator and sums the
    answer marginals.
    """
    from repro.core.executor import PartialLineageEvaluator

    result = PartialLineageEvaluator(db).evaluate_query(query)
    return sum(result.answer_probabilities().values())


def markov_upper_bound(query: ConjunctiveQuery, db: ProbabilisticDatabase) -> float:
    """``min(1, E[#groundings])`` — a cheap upper bound on ``Pr(q)``.

    Exactly the union bound the interval engine starts from; exposed as a
    standalone because it is often all a query optimiser needs.
    """
    return min(1.0, expected_grounding_count(query, db))
