"""Lifted (extensional) inference for hierarchical queries.

The textbook safe-query algorithm, used here both as a baseline and as a
mid-size correctness oracle (it is exact for every hierarchical query, at any
scale the grounding fits in memory):

1. ground atoms are independent events — multiply;
2. unconnected sub-queries are independent — multiply;
3. a *root variable* (one occurring in every atom of a connected query) can be
   eliminated by an independent project over its active domain:
   ``Pr(q) = 1 - Π_a (1 - Pr(q[a/x]))``.

A connected query with no root variable is not hierarchical, hence unsafe
(Dalvi-Suciu dichotomy), and :class:`~repro.errors.UnsafePlanError` is raised.
"""

from __future__ import annotations

from repro.db.database import ProbabilisticDatabase
from repro.db.schema import Row
from repro.errors import UnsafePlanError
from repro.query.grounding import active_domain
from repro.query.hierarchy import root_variables
from repro.query.syntax import Atom, ConjunctiveQuery

#: Deterministic instance view used for active domains.
_Instance = dict[str, list[Row]]


def _atom_probability(atom: Atom, db: ProbabilisticDatabase) -> float:
    """Probability of a ground atom: the tuple's marginal (0 when absent)."""
    row = tuple(t.value for t in atom.terms)
    return db[atom.relation].probability(row)


def _lifted(query: ConjunctiveQuery, db: ProbabilisticDatabase, inst: _Instance) -> float:
    if all(a.is_ground() for a in query.atoms):
        prob = 1.0
        for a in query.atoms:
            prob *= _atom_probability(a, db)
            if prob == 0.0:
                return 0.0
        return prob

    components = query.connected_components()
    if len(components) > 1:
        prob = 1.0
        for comp in components:
            prob *= _lifted(comp, db, inst)
            if prob == 0.0:
                return 0.0
        return prob

    roots = root_variables(query)
    # Variables in ground atoms never block: a component with a ground atom
    # and variables elsewhere is still connected only through variables, so a
    # missing root is a genuine hierarchy violation.
    if not roots:
        raise UnsafePlanError(
            f"query {query} is not hierarchical; lifted inference does not apply"
        )
    x = roots[0]
    failure = 1.0
    for value in active_domain(query, inst, x):
        failure *= 1.0 - _lifted(query.substitute({x: value}), db, inst)
        if failure == 0.0:
            break
    return 1.0 - failure


def lifted_probability(query: ConjunctiveQuery, db: ProbabilisticDatabase) -> float:
    """Exact ``Pr(q)`` for a hierarchical Boolean query, by lifted inference.

    Raises
    ------
    UnsafePlanError
        If the query (viewed per head value) is not hierarchical.

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> _ = db.add_relation("S", ("A", "B"), {(1, 7): 0.5, (1, 8): 0.5})
    >>> round(lifted_probability(parse_query("R(x), S(x,y)"), db), 6)
    0.375
    """
    q = query.boolean_view()
    inst: _Instance = {rel.name: rel.rows() for rel in db}
    return _lifted(q, db, inst)


def lifted_answer_probabilities(
    query: ConjunctiveQuery, db: ProbabilisticDatabase
) -> dict[Row, float]:
    """Per-answer probabilities for a query with head variables.

    Evaluates the Boolean residual query once per head-value combination in
    the cross-product of the head variables' active domains (the paper's
    benchmark queries have a single head variable ``h``, making this the
    "run the Boolean query N times" loop of Section 6.1).
    """
    if query.is_boolean:
        return {(): lifted_probability(query, db)}
    inst: _Instance = {rel.name: rel.rows() for rel in db}
    domains = [sorted(active_domain(query, inst, v)) for v in query.head]

    def combos(i: int, prefix: tuple) -> list[tuple]:
        if i == len(domains):
            return [prefix]
        return [c for v in domains[i] for c in combos(i + 1, prefix + (v,))]

    out: dict[Row, float] = {}
    for head_value in combos(0, ()):
        binding = dict(zip(query.head, head_value))
        p = lifted_probability(query.substitute(binding), db)
        if p > 0.0:
            out[head_value] = p
    return out
