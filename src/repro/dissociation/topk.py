"""Bounds-first top-k certification.

Ranking answers only needs exact probabilities where the ranking is
actually contested. The certifier:

1. computes every answer's dissociation enclosure ``[lo, up]``
   (safe-plan speed, no inference);
2. takes the k-th largest lower bound as the decision threshold ``τ``:
   at least ``k`` answers are certainly ``≥`` their own lower bounds, so
   any answer with ``up < τ`` is certainly outside the top k;
3. refines only the surviving candidates with exact component-sliced
   inference, and ranks them by ``(-probability, row)``.

Soundness of the short-circuit: a skipped answer ``a`` has
``p(a) ≤ up(a) < τ ≤ lo(b) ≤ p(b)`` for at least ``k`` answers ``b``, so
``a`` can never displace a candidate. All candidates are refined exactly
and sorted by the same total order as exact-all evaluation, so the
returned top k is *identical* (set and order) to ranking every answer
exactly — the skipped work is pure savings.

Distinct from :mod:`repro.core.topk`, the sampling-based multisimulation
ranker: that one trades exactness for anytime behaviour; this one is exact
by construction and uses the dissociation bounds only to prune.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.executor import EvaluationResult
from repro.db.schema import Row
from repro.dissociation.engine import DissociationResult
from repro.obs.trace import span as _span

__all__ = ["CertifiedAnswer", "TopKCertification", "certified_top_k"]

#: Float-noise margin on the decision threshold: an answer whose upper bound
#: is within this of ``τ`` is refined rather than skipped.
BOUNDARY_MARGIN = 1e-12


@dataclass(frozen=True)
class CertifiedAnswer:
    """One ranked answer: exact probability plus its screening interval."""

    row: Row
    probability: float
    lower: float
    upper: float

    def as_dict(self) -> dict:
        return {
            "row": list(self.row),
            "probability": self.probability,
            "lower": self.lower,
            "upper": self.upper,
        }


@dataclass
class TopKCertification:
    """The certified top-k ranking and its cost accounting."""

    #: The top-k answers, best first — identical (set and order) to ranking
    #: every answer by exact probability.
    answers: list[CertifiedAnswer]
    #: Total answers considered.
    total_answers: int
    #: Candidates whose interval overlapped the decision boundary and were
    #: refined with exact inference.
    refined: int
    #: Answers certified out of the top k by their bounds alone — the
    #: inference calls saved.
    certified_out: int
    #: The decision threshold τ (k-th largest lower bound).
    threshold: float
    #: Wall time of the bound screening (plan-level dissociation included
    #: only if the caller charges it; see ``bounds_seconds`` of the result).
    refine_seconds: float = 0.0
    bounds_seconds: float = 0.0
    steps: list = field(default_factory=list)

    @property
    def k(self) -> int:
        return len(self.answers)

    def as_dict(self) -> dict:
        return {
            "k": self.k,
            "total_answers": self.total_answers,
            "refined": self.refined,
            "certified_out": self.certified_out,
            "threshold": self.threshold,
            "refine_seconds": self.refine_seconds,
            "bounds_seconds": self.bounds_seconds,
            "answers": [a.as_dict() for a in self.answers],
        }


def _rank_key(item):
    row, p = item
    return (-p, row)


def certified_top_k(
    result: EvaluationResult,
    bounds: DissociationResult,
    k: int,
    *,
    engine: str = "auto",
    dpll_max_calls: int = 5_000_000,
    workers: int | None = None,
    cache=None,
    budget=None,
) -> TopKCertification:
    """The exact top-*k* answers of *result*, screened by *bounds*.

    *result* is a pL evaluation of a plan and *bounds* the dissociation
    enclosures of the same plan (:class:`~repro.dissociation.engine.`
    ``DissociationEvaluator.evaluate`` on the identical plan). Exact
    inference runs only for answers whose enclosure overlaps the k-th
    decision boundary; everything else is certified out by its bounds.
    """
    from repro.core.network import EPSILON
    from repro.perf.parallel import parallel_marginals

    if k <= 0:
        raise ValueError(f"top-k needs k >= 1, got {k}")
    rows = list(result.relation.items())
    # Answer-level enclosures: the anonymous row probability scales the
    # lineage enclosure linearly, and the dissociation result is already at
    # answer level, so use it directly; rows the dissociated plan somehow
    # missed stay conservatively at [0, 1].
    enclosures = {row: bounds.interval(row) for row, _l, _p in rows}

    with _span("certified_top_k", k=k, answers=len(rows)) as sp:
        if len(rows) <= k:
            threshold = 0.0
            candidates = rows
        else:
            lowers = sorted(
                (b.lower for b in enclosures.values()), reverse=True
            )
            threshold = lowers[k - 1]
            candidates = [
                (row, l, p)
                for row, l, p in rows
                if enclosures[row].upper >= threshold - BOUNDARY_MARGIN
            ]
        refine_start = time.perf_counter()
        targets = sorted(
            {l for _row, l, _p in candidates if l != EPSILON}
        )
        marginals = {EPSILON: 1.0}
        if targets:
            marginals.update(
                parallel_marginals(
                    result.network,
                    targets,
                    workers=workers,
                    engine=engine,
                    dpll_max_calls=dpll_max_calls,
                    cache=cache,
                    budget=budget,
                )
            )
        exact = {row: p * marginals[l] for row, l, p in candidates}
        ranked = sorted(exact.items(), key=_rank_key)[:k]
        refine_seconds = time.perf_counter() - refine_start
        sp.add("refined", len(candidates))
        sp.add("certified_out", len(rows) - len(candidates))

    return TopKCertification(
        answers=[
            CertifiedAnswer(
                row,
                p,
                enclosures[row].lower,
                enclosures[row].upper,
            )
            for row, p in ranked
        ],
        total_answers=len(rows),
        refined=len(candidates),
        certified_out=len(rows) - len(candidates),
        threshold=threshold,
        refine_seconds=refine_seconds,
        bounds_seconds=bounds.seconds,
    )
