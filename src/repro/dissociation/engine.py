"""Extensional dissociation bounds: safe-plan-speed probability enclosures.

An unsafe plan forces intensional (#P-hard) inference because offending
tuples — uncertain tuples with more than one join partner — appear in many
lineage events at once. *Dissociation* (Gatterbauer & Suciu) removes the
sharing instead of tracking it:

* **Upper bound** — replace each offending tuple by fresh independent
  copies, one per join partner, every copy keeping the original probability
  ``p``. The dissociated plan is safe, so the plain extensional fold
  (``×`` at joins, ``1 - Π(1-p)`` at projections) evaluates it exactly, and
  independence can only *increase* an OR-combination's probability (the
  oblivious OR-dissociation upper bound).
* **Lower bound** — the symmetric assignment variant: a tuple with fanout
  ``c`` gives each copy ``p' = 1 - (1-p)^(1/c)``, splitting its failure
  mass evenly, so the exponents sum to one and the same fold is a sound
  lower bound.

Both variants are ordinary vectorized NumPy folds over the columnar
representation (or a row-at-a-time mirror) — no And-Or network, no DPLL,
no conditioning. On a data-safe instance no tuple has fanout > 1, both
folds coincide, and the result is the exact probability with zero width;
the interval widens only where conditioning would have happened. Because a
left-deep plan over a self-join-free query shares lineage exclusively in
OR-context (copies of a tuple meet again only at projection OR-groups,
never under one AND), the bounds are sound at every answer.

:class:`DissociationEvaluator` is the plan-level entry point;
:func:`repro.dissociation.network.network_dissociation_bounds` applies the
same two folds to an already-built And-Or component (the resilience
ladder's rung), and :mod:`repro.sqlbackend.executor` evaluates the same
rewriting in pure SQL.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core import columnar as _columnar
from repro.core.columnar import Comparison, ValueInterner
from repro.core.plan import (
    Filter,
    Join,
    Plan,
    Project,
    Scan,
    Select,
    left_deep_plan,
    plan_schema,
)
from repro.db.database import ProbabilisticDatabase
from repro.db.schema import Row
from repro.errors import PlanError
from repro.obs.trace import span as _span
from repro.query.syntax import ConjunctiveQuery, Constant

__all__ = [
    "DissociationBounds",
    "DissociationResult",
    "DissociationEvaluator",
    "dissociation_bounds",
]


@dataclass(frozen=True)
class DissociationBounds:
    """A sound ``[lower, upper]`` enclosure of one answer's probability."""

    lower: float
    upper: float

    @property
    def width(self) -> float:
        return self.upper - self.lower

    @property
    def midpoint(self) -> float:
        return (self.lower + self.upper) / 2.0

    def contains(self, value: float, tolerance: float = 1e-9) -> bool:
        """Is *value* inside the enclosure (up to float noise)?"""
        return self.lower - tolerance <= value <= self.upper + tolerance

    def as_dict(self) -> dict:
        return {"lower": self.lower, "upper": self.upper, "width": self.width}


@dataclass
class DissociationResult:
    """Per-answer dissociation enclosures for one plan evaluation.

    ``dissociated`` counts the (row, join) fanout splits applied; zero means
    the plan was data safe on this instance and every interval has zero
    width — the bounds *are* the exact probabilities.
    """

    attributes: tuple[str, ...]
    bounds: dict[Row, DissociationBounds]
    seconds: float
    dissociated: int

    @property
    def exact(self) -> bool:
        """True when no tuple was dissociated (bounds are exact)."""
        return self.dissociated == 0

    @property
    def max_width(self) -> float:
        return max((b.width for b in self.bounds.values()), default=0.0)

    def interval(self, row: Row) -> DissociationBounds:
        """The enclosure of *row* (``[0, 1]`` for rows never produced)."""
        hit = self.bounds.get(row)
        return hit if hit is not None else DissociationBounds(0.0, 1.0)

    def as_dict(self, limit: int | None = None) -> dict:
        rows = sorted(
            self.bounds.items(), key=lambda kv: (-kv[1].upper, kv[0])
        )
        if limit is not None:
            rows = rows[:limit]
        return {
            "attributes": list(self.attributes),
            "answers": len(self.bounds),
            "dissociated": self.dissociated,
            "exact": self.exact,
            "max_width": self.max_width,
            "seconds": self.seconds,
            "bounds": [
                {"row": list(row), **b.as_dict()} for row, b in rows
            ],
        }


# --------------------------------------------------------------- columnar rep
class _BoundsRel:
    """A columnar relation carrying two probability vectors (upper, lower).

    Quacks enough like :class:`~repro.core.columnar.ColumnarPLRelation`
    (``codes`` / ``index_of`` / ``interner`` / ``len``) for
    :meth:`Comparison.mask` to compile against it.
    """

    __slots__ = ("attributes", "codes", "up", "lo", "interner")

    def __init__(self, attributes, codes, up, lo, interner):
        self.attributes = tuple(attributes)
        self.codes = codes
        self.up = up
        self.lo = lo
        self.interner = interner

    def __len__(self) -> int:
        return self.up.shape[0]

    def index_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise PlanError(
                f"unknown attribute {attribute!r} of {self.attributes}"
            ) from None

    def take(self, idx: np.ndarray) -> "_BoundsRel":
        return _BoundsRel(
            self.attributes,
            self.codes[idx],
            self.up[idx],
            self.lo[idx],
            self.interner,
        )


def _split_lower(lo: np.ndarray, fanout: np.ndarray) -> tuple[np.ndarray, int]:
    """The symmetric failure split ``p' = 1 - (1-p)^(1/c)`` where ``c > 1``.

    Computed as ``-expm1(log1p(-p) / c)`` for precision near 0 and 1;
    ``p = 1`` rows are fixed points and skipped (no offending tuple is
    certain by definition).
    """
    mask = (fanout > 1) & (lo < 1.0)
    if not mask.any():
        return lo, 0
    out = lo.copy()
    with np.errstate(divide="ignore"):
        out[mask] = -np.expm1(np.log1p(-lo[mask]) / fanout[mask])
    return out, int(mask.sum())


def _or_fold(
    gid: np.ndarray, groups: int, first: np.ndarray, probs: np.ndarray
) -> np.ndarray:
    """Per-group independent-OR fold ``1 - Π(1-p)``, singletons bit-exact."""
    counts = np.bincount(gid, minlength=groups)
    with np.errstate(divide="ignore"):
        logs = np.log1p(-probs)
    out = np.clip(-np.expm1(np.bincount(gid, weights=logs, minlength=groups)),
                  0.0, 1.0)
    single = counts == 1
    out[single] = probs[first[single]]
    return out


class DissociationEvaluator:
    """Evaluate a plan's dissociation bounds extensionally.

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> _ = db.add_relation("S", ("A", "B"), {(1, 1): 0.5, (1, 2): 0.5})
    >>> _ = db.add_relation("T", ("B",), {(1,): 1.0, (2,): 1.0})
    >>> res = DissociationEvaluator(db).evaluate_query(
    ...     parse_query("q() :- R(x), S(x,y), T(y)"))
    >>> b = res.bounds[()]
    >>> b.lower <= 0.375 <= b.upper      # encloses the exact probability
    True
    """

    def __init__(
        self, db: ProbabilisticDatabase, *, engine: str = "columnar"
    ) -> None:
        if engine not in ("columnar", "rows"):
            raise PlanError(
                f"unknown dissociation engine {engine!r}; "
                "choose 'columnar' or 'rows'"
            )
        self.db = db
        self.engine = engine
        self._interner = ValueInterner()
        self._base_cache: dict = {}
        #: Incremented per evaluation by the join splits (reset each call).
        self._dissociated = 0

    # ------------------------------------------------------------ entry points
    def evaluate(self, plan: Plan) -> DissociationResult:
        """Dissociation bounds of every answer of *plan*."""
        plan_schema(plan, self.db)
        self._dissociated = 0
        start = time.perf_counter()
        with _span("dissociation", engine=self.engine) as sp:
            if self.engine == "columnar":
                rel = self._eval(plan)
                values = self._interner.decode_column(rel.codes.reshape(-1))
                k = len(rel.attributes)
                bounds = {}
                for i in range(len(rel)):
                    row = tuple(values[i * k : (i + 1) * k])
                    lo = float(min(rel.lo[i], rel.up[i]))
                    bounds[row] = DissociationBounds(lo, float(rel.up[i]))
                attrs = rel.attributes
            else:
                attrs, rows = self._eval_rows(plan)
                bounds = {
                    row: DissociationBounds(min(lo, up), up)
                    for row, (up, lo) in rows.items()
                }
            sp.add("answers", len(bounds))
            sp.add("dissociated", self._dissociated)
        return DissociationResult(
            attributes=tuple(attrs),
            bounds=bounds,
            seconds=time.perf_counter() - start,
            dissociated=self._dissociated,
        )

    def evaluate_query(
        self, query: ConjunctiveQuery, join_order: list[str] | None = None
    ) -> DissociationResult:
        """Bounds for the left-deep plan of *query*."""
        return self.evaluate(left_deep_plan(query, join_order))

    # ------------------------------------------------------- columnar operators
    def _base_arrays(self, name: str):
        base = self.db[name]
        key = (name, id(base), len(base))
        hit = self._base_cache.get(key)
        if hit is None:
            hit = _columnar.encode_base(base, self._interner)
            self._base_cache[key] = hit
        return hit

    def _eval(self, plan: Plan) -> _BoundsRel:
        if isinstance(plan, Scan):
            return self._scan(plan)
        if isinstance(plan, Select):
            rel = self._eval(plan.child)
            mask = np.ones(len(rel), dtype=bool)
            for attr, value in plan.conditions:
                code = self._interner.code_of(value)
                if code is None:
                    mask[:] = False
                else:
                    mask &= rel.codes[:, rel.index_of(attr)] == code
            return rel.take(np.flatnonzero(mask))
        if isinstance(plan, Filter):
            rel = self._eval(plan.child)
            mask = np.ones(len(rel), dtype=bool)
            for comparison in plan.predicates:
                mask &= comparison.mask(rel)
            return rel.take(np.flatnonzero(mask))
        if isinstance(plan, Project):
            return self._project(self._eval(plan.child), plan.attributes)
        if isinstance(plan, Join):
            return self._join(
                self._eval(plan.left), self._eval(plan.right), plan.on
            )
        raise PlanError(f"unknown plan node {plan!r}")

    def _scan(self, scan: Scan) -> _BoundsRel:
        base = self.db[scan.relation]
        codes, probs = self._base_arrays(scan.relation)
        if scan.terms is None:
            return _BoundsRel(
                base.schema.attributes, codes, probs, probs, self._interner
            )
        if len(scan.terms) != base.schema.arity:
            raise PlanError(
                f"scan of {scan.relation}: {len(scan.terms)} terms for arity "
                f"{base.schema.arity}"
            )
        mask = np.ones(len(base), dtype=bool)
        var_first: dict[str, int] = {}
        for i, t in enumerate(scan.terms):
            if isinstance(t, Constant):
                code = self._interner.code_of(t.value)
                mask = (
                    mask & (codes[:, i] == code)
                    if code is not None
                    else np.zeros(len(base), dtype=bool)
                )
            elif t.name in var_first:
                mask &= codes[:, i] == codes[:, var_first[t.name]]
            else:
                var_first[t.name] = i
        idx = np.flatnonzero(mask)
        positions = list(var_first.values())
        sub = (
            codes[idx][:, positions]
            if positions
            else np.empty((idx.size, 0), dtype=np.int64)
        )
        return _BoundsRel(
            tuple(var_first), sub, probs[idx], probs[idx], self._interner
        )

    def _project(self, rel: _BoundsRel, attributes) -> _BoundsRel:
        positions = [rel.index_of(a) for a in attributes]
        n = len(rel)
        cols = [rel.codes[:, j] for j in positions]
        gid, groups, first = _columnar._group_first_occurrence(n, cols)
        if groups == 0:
            return _BoundsRel(
                attributes,
                np.empty((0, len(positions)), dtype=np.int64),
                np.empty(0),
                np.empty(0),
                self._interner,
            )
        up = _or_fold(gid, groups, first, rel.up)
        lo = _or_fold(gid, groups, first, rel.lo)
        return _BoundsRel(
            attributes,
            rel.codes[first][:, positions]
            if positions
            else np.empty((groups, 0), dtype=np.int64),
            up,
            np.minimum(lo, up),
            self._interner,
        )

    def _join(self, left: _BoundsRel, right: _BoundsRel, on) -> _BoundsRel:
        lpos = [left.index_of(a) for a in on]
        rpos = [right.index_of(a) for a in on]
        keep = [
            i for i, a in enumerate(right.attributes) if a not in set(on)
        ]
        nl, nr = len(left), len(right)
        # Per-key fanout of each side seen from the other: the dissociation
        # degree c of every row (how many copies its partner-joins create).
        fused = _columnar._fuse(
            nl + nr,
            [
                np.concatenate([left.codes[:, lj], right.codes[:, rj]])
                for lj, rj in zip(lpos, rpos)
            ],
        )
        lkeys, rkeys = fused[:nl], fused[nl:]
        uniq, inverse = np.unique(np.concatenate([lkeys, rkeys]),
                                  return_inverse=True)
        linv, rinv = inverse[:nl], inverse[nl:]
        lcount = np.bincount(linv, minlength=uniq.size)
        rcount = np.bincount(rinv, minlength=uniq.size)
        lo_l, nsplit = _split_lower(left.lo, rcount[linv])
        self._dissociated += nsplit
        lo_r, nsplit = _split_lower(right.lo, lcount[rinv])
        self._dissociated += nsplit
        # Pair enumeration, exactly like pl_join_raw.
        r_order = np.argsort(rkeys, kind="stable")
        sorted_rkeys = rkeys[r_order]
        starts = np.searchsorted(sorted_rkeys, lkeys, "left")
        ends = np.searchsorted(sorted_rkeys, lkeys, "right")
        counts = ends - starts
        li = np.repeat(np.arange(nl), counts)
        ri = r_order[_columnar._concat_ranges(starts, counts)]
        codes = np.concatenate(
            [
                left.codes[li],
                right.codes[ri][:, keep]
                if keep
                else np.empty((li.size, 0), dtype=np.int64),
            ],
            axis=1,
        )
        return _BoundsRel(
            left.attributes
            + tuple(a for a in right.attributes if a not in set(on)),
            codes,
            left.up[li] * right.up[ri],
            lo_l[li] * lo_r[ri],
            self._interner,
        )

    # ------------------------------------------------------------ rows engine
    def _eval_rows(self, plan: Plan):
        """Row-at-a-time mirror: returns (attrs, {row: (up, lo)})."""
        if isinstance(plan, Scan):
            base = self.db[plan.relation]
            if plan.terms is None:
                return base.schema.attributes, {
                    tuple(row): (p, p) for row, p in base.items()
                }
            if len(plan.terms) != base.schema.arity:
                raise PlanError(
                    f"scan of {plan.relation}: {len(plan.terms)} terms for "
                    f"arity {base.schema.arity}"
                )
            var_first: dict[str, int] = {}
            for i, t in enumerate(plan.terms):
                if not isinstance(t, Constant) and t.name not in var_first:
                    var_first[t.name] = i
            out = {}
            for row, p in base.items():
                binding: dict[str, object] = {}
                ok = True
                for i, t in enumerate(plan.terms):
                    if isinstance(t, Constant):
                        ok = row[i] == t.value
                    elif t.name in binding:
                        ok = binding[t.name] == row[i]
                    else:
                        binding[t.name] = row[i]
                    if not ok:
                        break
                if ok:
                    out[tuple(row[i] for i in var_first.values())] = (p, p)
            return tuple(var_first), out
        if isinstance(plan, Select):
            attrs, rows = self._eval_rows(plan.child)
            idx = {a: i for i, a in enumerate(attrs)}
            conditions = [(idx[a], v) for a, v in plan.conditions]
            return attrs, {
                row: pr
                for row, pr in rows.items()
                if all(row[i] == v for i, v in conditions)
            }
        if isinstance(plan, Filter):
            attrs, rows = self._eval_rows(plan.child)
            idx = {a: i for i, a in enumerate(attrs)}
            return attrs, {
                row: pr
                for row, pr in rows.items()
                if all(
                    c.matches(row, idx.__getitem__) for c in plan.predicates
                )
            }
        if isinstance(plan, Project):
            attrs, rows = self._eval_rows(plan.child)
            positions = [attrs.index(a) for a in plan.attributes]
            groups: dict[Row, list[tuple[float, float]]] = {}
            for row, pr in rows.items():
                groups.setdefault(
                    tuple(row[i] for i in positions), []
                ).append(pr)
            out = {}
            for key, members in groups.items():
                if len(members) == 1:
                    up, lo = members[0]
                else:
                    up = -math.expm1(
                        sum(math.log1p(-u) for u, _ in members)
                        if all(u < 1.0 for u, _ in members)
                        else -math.inf
                    )
                    lo = -math.expm1(
                        sum(math.log1p(-l) for _, l in members)
                        if all(l < 1.0 for _, l in members)
                        else -math.inf
                    )
                    up = min(1.0, max(0.0, up))
                    lo = min(1.0, max(0.0, lo))
                out[key] = (up, min(lo, up))
            return tuple(plan.attributes), out
        if isinstance(plan, Join):
            lattrs, lrows = self._eval_rows(plan.left)
            rattrs, rrows = self._eval_rows(plan.right)
            lpos = [lattrs.index(a) for a in plan.on]
            rpos = [rattrs.index(a) for a in plan.on]
            keep = [
                i for i, a in enumerate(rattrs) if a not in set(plan.on)
            ]
            lfan: dict[Row, int] = {}
            rfan: dict[Row, int] = {}
            for row in lrows:
                key = tuple(row[i] for i in lpos)
                lfan[key] = lfan.get(key, 0) + 1
            for row in rrows:
                key = tuple(row[i] for i in rpos)
                rfan[key] = rfan.get(key, 0) + 1

            def split(lo: float, c: int) -> float:
                if c <= 1 or lo >= 1.0:
                    return lo
                self._dissociated += 1
                return -math.expm1(math.log1p(-lo) / c)

            index: dict[Row, list[tuple[Row, float, float]]] = {}
            for row, (up, lo) in rrows.items():
                key = tuple(row[i] for i in rpos)
                index.setdefault(key, []).append(
                    (row, up, split(lo, lfan.get(key, 0)))
                )
            out = {}
            for row, (up, lo) in lrows.items():
                key = tuple(row[i] for i in lpos)
                lo = split(lo, rfan.get(key, 0))
                for rrow, rup, rlo in index.get(key, ()):
                    merged = row + tuple(rrow[i] for i in keep)
                    out[merged] = (up * rup, lo * rlo)
            return (
                lattrs
                + tuple(a for a in rattrs if a not in set(plan.on)),
                out,
            )
        raise PlanError(f"unknown plan node {plan!r}")


def dissociation_bounds(
    db: ProbabilisticDatabase,
    query: ConjunctiveQuery,
    join_order: list[str] | None = None,
    *,
    engine: str = "columnar",
) -> DissociationResult:
    """One-shot convenience: bounds for *query*'s left-deep plan."""
    return DissociationEvaluator(db, engine=engine).evaluate_query(
        query, join_order
    )
