"""Dissociation bounds over an already-built And-Or component.

The plan-level evaluator (:mod:`repro.dissociation.engine`) never builds a
network; this module serves the opposite situation — the resilience ladder
holds a hard component of an existing network and wants a cheap sound
enclosure before paying for OBDD compilation or approximation.

The two folds mirror the plan-level rewrite. A node referenced by ``r > 1``
parents is an offending (shared) event:

* **upper** — treat every reference as a fresh independent copy with the
  node's own value: one bottom-up pass computing ``Π q·v`` at And gates and
  ``1 - Π (1 - q·v)`` at Or gates;
* **lower** — each reference consumes ``1 - (1 - v)^(1/r)``: the symmetric
  failure split, whose exponents sum to one across the copies.

Both passes are linear in the network. Soundness needs the sharing to be
*OR-context*: copies of a shared node must only meet again at Or gates.
Under one And gate, independence flips the error direction (an And of
positively correlated events is *more* likely than the product), so
:func:`network_dissociation_bounds` first runs a structural check — every
And gate's children must have pairwise-disjoint shared-node support — and
returns ``None`` when the component shares conjunctively. Networks grown
by the pL evaluator from self-join-free plans always pass: And gates there
combine join partners from different base relations, and Or gates do all
the merging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.network import EPSILON, AndOrNetwork, NodeKind

__all__ = ["NetworkDissociation", "network_dissociation_bounds"]


@dataclass
class NetworkDissociation:
    """Sound per-target enclosures from one pair of dissociated folds."""

    #: ``{node id: (lower, upper)}`` for every requested target.
    bounds: dict[int, tuple[float, float]]
    #: Number of shared (multi-referenced, uncertain) nodes dissociated.
    shared: int

    @property
    def exact(self) -> bool:
        """True when nothing was shared: the folds are the exact marginals."""
        return self.shared == 0

    def width(self, target: int) -> float:
        lo, up = self.bounds[target]
        return up - lo


def network_dissociation_bounds(
    net: AndOrNetwork, targets
) -> NetworkDissociation | None:
    """Dissociation enclosures of *targets*, or ``None`` on conjunctive sharing.

    Linear-time; never raises on hardness. ``None`` means the component
    shares some node under an And gate, where the oblivious bounds do not
    apply — the caller falls through to the next ladder rung.
    """
    n = len(net)
    kinds = [net.kind(v) for v in range(n)]
    plists = [net.parents(v) for v in range(n)]

    # Reference counts; a node is dissociated when >1 gate consumes it.
    refs = [0] * n
    for plist in plists:
        for w, _q in plist:
            refs[w] += 1

    # Deterministic nodes (probability exactly 0/1 through deterministic
    # edges) carry no uncertainty: sharing them is harmless, so they get no
    # support bit and no failure split.
    const = [False] * n
    for v in range(n):
        if kinds[v] == NodeKind.LEAF:
            p = net.leaf_probability(v)
            const[v] = p == 0.0 or p == 1.0
        else:
            const[v] = all(q == 1.0 and const[w] for w, q in plists[v])

    shared_bit: dict[int, int] = {}
    for v in range(n):
        if v != EPSILON and refs[v] > 1 and not const[v]:
            shared_bit[v] = 1 << len(shared_bit)

    # OR-context check: the shared-support bitmask of every And gate's
    # children must be pairwise disjoint. Supports are cumulative unions,
    # so the whole pass is one bottom-up sweep (ids are topological).
    if shared_bit:
        support = [0] * n
        for v in range(n):
            acc = 0
            is_and = kinds[v] == NodeKind.AND
            for w, _q in plists[v]:
                s = support[w]
                if is_and and (acc & s):
                    return None
                acc |= s
            support[v] = acc | shared_bit.get(v, 0)

    # Upper fold: copies keep their value.
    up = [0.0] * n
    for v in range(n):
        kind = kinds[v]
        if kind == NodeKind.LEAF:
            up[v] = net.leaf_probability(v)
        elif kind == NodeKind.AND:
            acc = 1.0
            for w, q in plists[v]:
                acc *= q * up[w]
            up[v] = acc
        else:
            fail = 1.0
            for w, q in plists[v]:
                fail *= 1.0 - q * up[w]
            up[v] = 1.0 - fail

    # Lower fold: every reference to a shared node consumes the symmetric
    # failure split 1-(1-v)^(1/r).
    lo = [0.0] * n
    use = [0.0] * n
    for v in range(n):
        kind = kinds[v]
        if kind == NodeKind.LEAF:
            lo[v] = net.leaf_probability(v)
        elif kind == NodeKind.AND:
            acc = 1.0
            for w, q in plists[v]:
                acc *= q * use[w]
            lo[v] = acc
        else:
            fail = 1.0
            for w, q in plists[v]:
                fail *= 1.0 - q * use[w]
            lo[v] = 1.0 - fail
        if v in shared_bit and lo[v] < 1.0:
            use[v] = -_expm1_div(lo[v], refs[v])
        else:
            use[v] = lo[v]

    bounds = {}
    for t in targets:
        tup = max(0.0, min(1.0, up[t]))
        tlo = max(0.0, min(lo[t], tup))
        bounds[t] = (tlo, tup)
    return NetworkDissociation(bounds=bounds, shared=len(shared_bit))


def _expm1_div(p: float, r: int) -> float:
    """``expm1(log1p(-p)/r)`` — the (negated) symmetric failure split."""
    return math.expm1(math.log1p(-p) / r)
