"""Dissociation bounds: extensional-speed probability enclosures.

The intensional/extensional gap the paper bridges has a third point between
its endpoints: *dissociation* (Gatterbauer & Suciu's oblivious bounds)
rewrites each offending multi-occurrence tuple into fresh independent
copies — keeping the probability for an upper bound, splitting the failure
mass symmetrically (``p' = 1-(1-p)^(1/c)``) for a lower bound — and
evaluates both rewritten plans purely extensionally. Every answer gets a
sound ``[lower, upper]`` enclosure at safe-plan speed, exact (zero width)
wherever the instance is data safe.

Three consumers build on the bounds:

* the resilience ladder's ``dissociation`` rung
  (:func:`~repro.dissociation.network.network_dissociation_bounds`) bounds
  a hard And-Or component before any OBDD/approximation work;
* the top-k certifier (:func:`~repro.dissociation.topk.certified_top_k`)
  ranks answers by their intervals and spends exact inference only on the
  answers whose intervals overlap the k-th decision boundary;
* :meth:`repro.sqlbackend.executor.SQLitePartialLineageEvaluator.dissociated_bounds`
  runs the same two folds as pure SQL aggregation.
"""

from repro.dissociation.engine import (
    DissociationBounds,
    DissociationEvaluator,
    DissociationResult,
    dissociation_bounds,
)
from repro.dissociation.network import network_dissociation_bounds
from repro.dissociation.topk import CertifiedAnswer, TopKCertification, certified_top_k

__all__ = [
    "DissociationBounds",
    "DissociationEvaluator",
    "DissociationResult",
    "dissociation_bounds",
    "network_dissociation_bounds",
    "CertifiedAnswer",
    "TopKCertification",
    "certified_top_k",
]
