"""MCDB-style Monte-Carlo query processing [13].

The bluntest baseline in the paper's related work: sample whole database
instances, run the *deterministic* query on each, and tally. No lineage, no
inference — works for any query our grounding can evaluate (including
headed queries and, via :mod:`repro.bid`, block-disjoint data), converges
like ``1/√n``, and serves in the test suite as yet another independent
implementation to cross-check the exact engines against.
"""

from repro.mc.engine import (
    mc_answer_probabilities,
    mc_query_probability,
    sample_world,
    sample_worlds,
)

__all__ = [
    "sample_world",
    "sample_worlds",
    "mc_query_probability",
    "mc_answer_probabilities",
]
