"""World sampling and Monte-Carlo query evaluation."""

from __future__ import annotations

import random

from repro.bid.relation import BIDDatabase
from repro.db.database import ProbabilisticDatabase
from repro.db.schema import Row
from repro.query.grounding import answers_in_world, world_satisfies
from repro.query.syntax import ConjunctiveQuery

#: A sampled deterministic instance.
World = dict[str, set[Row]]


def sample_world(
    db: ProbabilisticDatabase | BIDDatabase, rng: random.Random
) -> World:
    """Draw one instance from the database's distribution.

    Tuple-independent relations flip one coin per tuple; BID relations draw
    one alternative (or none) per block.
    """
    world: World = {}
    if isinstance(db, BIDDatabase):
        for rel in db:
            chosen: set[Row] = set()
            for key, block in rel.blocks():
                r = rng.random()
                acc = 0.0
                for row, p in block.items():
                    acc += p
                    if r < acc:
                        chosen.add(row)
                        break
            world[rel.name] = chosen
        return world
    for rel in db:
        world[rel.name] = {
            row for row, p in rel.items() if p == 1.0 or rng.random() < p
        }
    return world


def mc_query_probability(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase | BIDDatabase,
    samples: int,
    rng: random.Random | None = None,
) -> float:
    """Estimate ``Pr(q)`` by sampling *samples* worlds (MCDB-style).

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> est = mc_query_probability(parse_query("R(x)"), db, 20000,
    ...                            random.Random(0))
    >>> abs(est - 0.5) < 0.02
    True
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    rng = rng or random.Random()
    q = query.boolean_view()
    hits = 0
    for _ in range(samples):
        if world_satisfies(q, sample_world(db, rng)):
            hits += 1
    return hits / samples


def mc_answer_probabilities(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase | BIDDatabase,
    samples: int,
    rng: random.Random | None = None,
) -> dict[Row, float]:
    """Per-answer probability estimates for a headed query."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    rng = rng or random.Random()
    counts: dict[Row, int] = {}
    for _ in range(samples):
        for answer in answers_in_world(query, sample_world(db, rng)):
            counts[answer] = counts.get(answer, 0) + 1
    return {answer: n / samples for answer, n in counts.items()}
