"""World sampling and Monte-Carlo query evaluation.

The estimators come in two interchangeable implementations behind a
``method`` flag, mirroring :mod:`repro.lineage.sampling`:

* ``"vectorized"`` (the ``"auto"`` default on tuple-independent databases) —
  ground the query's lineage once, then draw worlds in NumPy blocks and
  decide satisfaction with one matrix product per block against the
  clause-incidence matrix. Statistically identical to sampling whole
  database instances, orders of magnitude faster at benchmark sample
  counts.
* ``"scalar"`` — the original MCDB-style loop: sample a full instance, run
  the deterministic query, tally. Works for every database (including BID
  block-disjoint relations, which ``"auto"`` routes here) and stays as the
  reference implementation the statistical tests cross-check against.
"""

from __future__ import annotations

import random
import time

import numpy as np

from repro.bid.relation import BIDDatabase
from repro.db.database import ProbabilisticDatabase
from repro.db.schema import Row
from repro.lineage.dnf import DNF, EventVarInterner, answer_lineages, lineage_of_query
from repro.lineage.sampling import (
    _batches,
    _incidence,
    naive_monte_carlo,
    numpy_generator,
)
from repro.obs.trace import span as _span
from repro.query.grounding import answers_in_world, world_satisfies
from repro.query.syntax import ConjunctiveQuery

#: A sampled deterministic instance.
World = dict[str, set[Row]]


def sample_world(
    db: ProbabilisticDatabase | BIDDatabase, rng: random.Random
) -> World:
    """Draw one instance from the database's distribution.

    Tuple-independent relations flip one coin per tuple; BID relations draw
    one alternative (or none) per block.
    """
    world: World = {}
    if isinstance(db, BIDDatabase):
        for rel in db:
            chosen: set[Row] = set()
            for key, block in rel.blocks():
                r = rng.random()
                acc = 0.0
                for row, p in block.items():
                    acc += p
                    if r < acc:
                        chosen.add(row)
                        break
            world[rel.name] = chosen
        return world
    for rel in db:
        world[rel.name] = {
            row for row, p in rel.items() if p == 1.0 or rng.random() < p
        }
    return world


def sample_worlds(
    db: ProbabilisticDatabase | BIDDatabase,
    count: int,
    rng: random.Random | np.random.Generator | None = None,
) -> list[World]:
    """Draw *count* instances with the coin flips batched through NumPy.

    Tuple-independent relations draw one ``(count, n_tuples)`` uniform block
    and compare it against the probability vector; BID relations draw one
    uniform vector per block and pick the alternative by ``searchsorted``
    on the cumulative alternative weights (index past the end = no
    alternative). Distributionally identical to *count* calls of
    :func:`sample_world`, without the per-tuple Python loop.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    gen = numpy_generator(rng)
    worlds: list[World] = [{} for _ in range(count)]
    if isinstance(db, BIDDatabase):
        for rel in db:
            chosen: list[set[Row]] = [set() for _ in range(count)]
            for _, block in rel.blocks():
                rows = list(block)
                cumulative = np.cumsum(np.fromiter(
                    block.values(), dtype=np.float64, count=len(rows)
                ))
                picks = np.searchsorted(cumulative, gen.random(count), side="right")
                for w in np.flatnonzero(picks < len(rows)):
                    chosen[w].add(rows[picks[w]])
            for w in range(count):
                worlds[w][rel.name] = chosen[w]
        return worlds
    for rel in db:
        rows = []
        probs = []
        for row, p in rel.items():
            rows.append(row)
            probs.append(p)
        included = gen.random((count, len(rows))) < np.asarray(probs)
        for w in range(count):
            worlds[w][rel.name] = {rows[i] for i in np.flatnonzero(included[w])}
    return worlds


def _wants_vectorized(
    db: ProbabilisticDatabase | BIDDatabase, method: str
) -> bool:
    if method not in ("auto", "vectorized", "scalar"):
        raise ValueError(
            f"unknown sampling method {method!r}; expected one of "
            f"('auto', 'vectorized', 'scalar')"
        )
    if method == "vectorized" and isinstance(db, BIDDatabase):
        raise TypeError(
            "the vectorized estimator grounds tuple-independent lineage; "
            "BID databases need method='scalar' (or 'auto')"
        )
    return method != "scalar" and not isinstance(db, BIDDatabase)


def mc_query_probability(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase | BIDDatabase,
    samples: int,
    rng: random.Random | np.random.Generator | None = None,
    *,
    method: str = "auto",
    batch_size: int | None = None,
) -> float:
    """Estimate ``Pr(q)`` by sampling *samples* worlds (MCDB-style).

    The vectorized path grounds the Boolean lineage once and estimates its
    probability with the batched sampler — equivalent to evaluating the
    query on sampled instances, because a tuple-independent world satisfies
    the query iff it satisfies the lineage (Definition 3.5).

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> est = mc_query_probability(parse_query("R(x)"), db, 20000,
    ...                            random.Random(0))
    >>> abs(est - 0.5) < 0.02
    True
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    with _span("mc_query_probability", samples=samples) as sp:
        t0 = time.perf_counter()
        if _wants_vectorized(db, method):
            sp.annotate(path="vectorized")
            dnf, probs = lineage_of_query(query.boolean_view(), db)
            est = naive_monte_carlo(
                dnf, probs, samples, rng,
                method="vectorized", batch_size=batch_size,
            )
        else:
            if isinstance(rng, np.random.Generator):
                raise TypeError(
                    "the scalar path needs a random.Random generator"
                )
            sp.annotate(path="scalar")
            rng = rng or random.Random()
            q = query.boolean_view()
            hits = 0
            for _ in range(samples):
                if world_satisfies(q, sample_world(db, rng)):
                    hits += 1
            est = hits / samples
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            sp.add("samples_per_sec", round(samples / elapsed))
    return est


def mc_answer_probabilities(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase | BIDDatabase,
    samples: int,
    rng: random.Random | np.random.Generator | None = None,
    *,
    method: str = "auto",
    batch_size: int | None = None,
) -> dict[Row, float]:
    """Per-answer probability estimates for a headed query.

    The vectorized path grounds every answer's lineage once (the
    Section 6.1 "N Boolean queries" view), then shares each sampled world
    block across all answers: one uniform matrix, one incidence-matrix
    product, and a per-answer ``any`` over its clause rows.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    with _span("mc_answer_probabilities", samples=samples) as sp:
        t0 = time.perf_counter()
        if _wants_vectorized(db, method):
            sp.annotate(path="vectorized")
            out = _vectorized_answer_probabilities(
                query, db, samples, rng, batch_size
            )
        else:
            if isinstance(rng, np.random.Generator):
                raise TypeError(
                    "the scalar path needs a random.Random generator"
                )
            sp.annotate(path="scalar")
            rng = rng or random.Random()
            counts: dict[Row, int] = {}
            for _ in range(samples):
                for answer in answers_in_world(query, sample_world(db, rng)):
                    counts[answer] = counts.get(answer, 0) + 1
            out = {answer: n / samples for answer, n in counts.items()}
        elapsed = time.perf_counter() - t0
        sp.add("answers", len(out))
        if elapsed > 0:
            sp.add("samples_per_sec", round(samples / elapsed))
    return out


def _vectorized_answer_probabilities(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    samples: int,
    rng: random.Random | np.random.Generator | None,
    batch_size: int | None,
) -> dict[Row, float]:
    dnfs, probs = answer_lineages(query, db)
    if not dnfs:
        return {}
    interner = EventVarInterner()
    for v in sorted(probs):
        interner.intern(v)
    clause_rows: list[frozenset[int]] = []
    spans: list[tuple[Row, int, int]] = []
    for answer, dnf in dnfs.items():
        start = len(clause_rows)
        clause_rows.extend(
            frozenset(interner.id_of(v) for v in c) for c in dnf.clauses
        )
        spans.append((answer, start, len(clause_rows)))
    p = np.asarray(interner.probability_vector(probs), dtype=np.float64)
    inc, sizes = _incidence(clause_rows, p.size)
    gen = numpy_generator(rng)
    counts = {answer: 0 for answer, _, _ in spans}
    for n in _batches(samples, p.size, batch_size):
        worlds = gen.random((n, p.size)) < p
        satisfied = (worlds.astype(np.float32) @ inc.T) >= sizes
        for answer, start, stop in spans:
            counts[answer] += int(np.any(satisfied[:, start:stop], axis=1).sum())
    return {
        answer: count / samples for answer, count in counts.items() if count
    }
