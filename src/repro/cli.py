"""Command-line interface.

Eight subcommands, mirroring how the paper's system is exercised:

``repro query``
    Evaluate a conjunctive query over a CSV-backed probabilistic database
    and print per-answer probabilities plus the data-safety report.
    ``--top-k K`` switches to the bounds-first certifier: dissociation
    enclosures screen every answer at extensional speed and exact
    inference runs only where the ranking is contested — the printed top-k
    is identical to ranking every answer exactly.
``repro explain``
    Evaluate one query and print the full :class:`repro.obs.ExplainReport`:
    offending tuples per relation, the component histogram of the And-Or
    network, the inference engine chosen per component with estimated vs
    actual cost, and subformula-cache hit rates. ``--workload`` explains a
    Table 1 query on a generated Section 6.1 instance instead of a CSV
    database; ``--json`` writes the machine-readable report.
``repro workload``
    Generate a Section 6.1 benchmark instance and run a Table 1 query with
    the competing methods, printing the comparison row. ``--seed`` feeds
    both the generator and every sampling estimator, so runs are
    reproducible end to end.
``repro analyze``
    Static analysis of a query: hierarchy (safety), strict hierarchy
    (bounded lineage treewidth), and the safe plan if one exists.
``repro whatif``
    Sensitivity analysis over the offending tuples of one evaluation:
    per-answer swing rankings (batched circuit gradients by default, the
    scalar OBDD oracle behind ``--method obdd``), and ``--batch N``
    re-scores N random probability scenarios per answer through the
    compiled arithmetic circuit in one vectorized sweep.
``repro bench``
    Machine-readable benchmarks. ``--suite mc_dpll`` (default) is the
    scalar-vs-vectorized sampling + DPLL-cache micro-benchmark
    (``BENCH_mc_dpll.json``); ``--suite columnar`` scales Fig. 5-style
    workloads over instance size and compares the row and columnar
    operator engines (``BENCH_columnar.json``); ``--suite parallel``
    compares serial, component-sliced, and process-parallel final
    inference (``BENCH_parallel.json``); ``--suite rescore`` compares
    scalar per-scenario OBDD walks against vectorized circuit batch
    re-scoring (``BENCH_rescore.json``); ``--suite dissoc`` compares
    bounds-first top-k certification against exact-all-answers inference
    on the ranked workload (``BENCH_dissoc.json``); ``--suite serve``
    replays a concurrent workload with injected faults against an
    in-process query service and records sustained QPS and latency
    percentiles (``BENCH_serve.json``).
``repro serve``
    Run the fault-tolerant query-service daemon (:mod:`repro.serve`) over
    a TCP or unix-domain socket: line-delimited JSON protocol, prepared
    statements with warm caches, bounded-queue admission control with
    queue-depth load shedding, transactional sessions with snapshot
    isolation, hung-request reaping, and graceful drain on ``shutdown``.
``repro obs``
    Observability: ``obs metrics`` renders the per-query flight records as
    an OpenMetrics/Prometheus text exposition, ``obs slo`` evaluates
    latency-percentile / error-rate / degradation-rate objectives (nonzero
    exit on violation), ``obs lint`` is the promtool-style exposition
    linter, and ``obs validate`` schema-checks a JSONL flight log. Each of
    the first two reads ``--flight-log PATH`` or replays a small Section
    6.1 workload in-process.

``query`` and ``workload`` accept ``--engine {columnar,rows}`` to pick the
operator backend of the partial-lineage evaluator (columnar by default),
and ``--workers`` to fan final inference out over a process pool
(in-process by default). ``query`` additionally takes ``--deadline`` /
``--max-network-nodes`` (a strict :class:`repro.resilience.QueryBudget`:
blowing it is an error) and ``--degrade`` (resilient mode: hard answers
degrade through the :mod:`repro.resilience` ladder to sound
``[lower, upper]`` bounds instead of failing, with ``--chunk-timeout``
bounding each pool dispatch). ``query``, ``workload``, and ``explain`` all
take ``--trace PATH`` (write a Chrome trace-event JSON of the run, workers
included), ``--profile`` (print the span tree with wall/CPU times), and
``--flight-log PATH`` (sink the always-on flight recorder's records for the
run to a JSONL file — one record per evaluation).

Database directory format: one ``<Relation>.csv`` per relation, first line a
header of attribute names, a trailing ``p`` column with the tuple
probability. Values that parse as integers/floats are loaded as numbers.

Run ``python -m repro.cli --help`` for details.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time

from repro.bench.harness import (
    run_full_lineage,
    run_partial_lineage,
    run_partial_lineage_sqlite,
    run_sampling,
)
from repro.bench.reporting import format_table, write_json_report
from repro.core.executor import PartialLineageEvaluator
from repro.core.explain import explain
from repro.core.optimizer import choose_join_order
from repro.core.plan import left_deep_plan
from repro.errors import ReproError, UnsafePlanError
from repro.io import load_database, save_database
from repro.extensional import safe_plan
from repro.obs import Tracer, format_trace, write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.query.hierarchy import is_hierarchical, is_strictly_hierarchical
from repro.query.parser import parse_query
from repro.workload.generator import WorkloadParams, generate_database
from repro.workload.queries import TABLE1_QUERIES, benchmark_query


@contextlib.contextmanager
def _observed(args: argparse.Namespace):
    """Activate a tracer while the command works when ``--trace``/``--profile``
    ask for one, and sink flight records to ``--flight-log``; export the span
    forest afterwards."""
    flight_path = getattr(args, "flight_log", None)
    trace_path = getattr(args, "trace", None)
    profile = getattr(args, "profile", False)
    recorder = None
    with contextlib.ExitStack() as stack:
        if flight_path:
            from repro.obs import flight_recorder

            recorder = stack.enter_context(flight_recorder(flight_path))
        if not trace_path and not profile:
            yield
        else:
            with Tracer() as tracer:
                yield
            if profile:
                print()
                print(format_trace(tracer.roots))
            if trace_path:
                path = write_chrome_trace(trace_path, tracer.roots)
                print(f"wrote Chrome trace to {path} "
                      f"({tracer.total_spans()} spans)")
    if recorder is not None:
        print(f"wrote {recorder.recorded} flight records to {flight_path}")


def _query_budget(args: argparse.Namespace):
    """A :class:`~repro.resilience.QueryBudget` from the CLI flags, or
    ``None`` when no budget/degradation flag was given."""
    if (
        args.deadline is None
        and args.max_network_nodes is None
        and not args.degrade
    ):
        return None
    from repro.resilience import QueryBudget

    return QueryBudget(
        deadline_seconds=args.deadline,
        max_network_nodes=args.max_network_nodes,
        max_samples=args.max_samples,
    )


def cmd_query(args: argparse.Namespace) -> int:
    db = load_database(args.database)
    query = parse_query(args.query)
    budget = _query_budget(args)
    # In --degrade mode the budget applies to final inference only, where
    # the ladder turns a blown deadline into sound bounds; attaching it to
    # the operator pipeline too would make the whole query fail instead.
    evaluator = PartialLineageEvaluator(
        db, engine=args.engine, workers=args.workers,
        budget=None if args.degrade else budget,
    )
    if args.optimize:
        choice = choose_join_order(query, db, engine=args.engine)
        order = list(choice.order)
        print(f"optimised join order: {' , '.join(order)} "
              f"({choice.offending} offending)")
    else:
        order = args.join_order.split(",") if args.join_order else None
    if args.explain:
        print(explain(left_deep_plan(query, order), db))
        print()
    if args.top_k is not None and args.degrade:
        print("error: --top-k and --degrade are mutually exclusive",
              file=sys.stderr)
        return 2
    with _observed(args):
        start = time.perf_counter()
        if args.top_k is not None:
            from repro.dissociation import DissociationEvaluator, certified_top_k

            plan = left_deep_plan(query, order)
            result = evaluator.evaluate(plan)
            bounds = DissociationEvaluator(db, engine=args.engine).evaluate(plan)
            cert = certified_top_k(
                result, bounds, args.top_k,
                workers=args.workers, budget=budget,
            )
            elapsed = time.perf_counter() - start
            rows = [
                (
                    rank + 1,
                    ", ".join(map(str, a.row)) or "()",
                    round(a.probability, args.digits),
                    f"[{a.lower:.{args.digits}f}, {a.upper:.{args.digits}f}]",
                )
                for rank, a in enumerate(cert.answers)
            ]
            print(format_table(
                ("rank", "answer", "probability", "bounds"),
                rows, title=f"{query} — certified top-{cert.k}",
            ))
            print(f"\n{cert.certified_out} of {cert.total_answers} answers "
                  f"certified out by dissociation bounds alone; "
                  f"{cert.refined} refined exactly "
                  f"(threshold {cert.threshold:.{args.digits}f})")
            print(f"bounds {cert.bounds_seconds:.3f}s + refine "
                  f"{cert.refine_seconds:.3f}s; total {elapsed:.3f}s; "
                  f"{result.offending_count} offending tuples; "
                  f"network of {len(result.network)} nodes")
            return 0
        result = evaluator.evaluate_query(query, order)
        if args.degrade:
            answers = result.resilient_answer_probabilities(
                budget, timeout=args.chunk_timeout
            )
            elapsed = time.perf_counter() - start
            rows = [
                (
                    ", ".join(map(str, row)) or "()",
                    round(a.probability, args.digits),
                    f"[{a.lower:.{args.digits}f}, {a.upper:.{args.digits}f}]",
                    a.method,
                )
                for row, a in sorted(answers.items())
            ]
            print(format_table(
                ("answer", "probability", "bounds", "method"),
                rows, title=str(query),
            ))
            degraded = sum(1 for a in answers.values() if a.degraded)
            print(f"\n{len(answers)} answers in {elapsed:.3f}s; "
                  f"{degraded} degraded to bounds; "
                  f"{result.offending_count} offending tuples; "
                  f"network of {len(result.network)} nodes")
            return 0
        answers = result.answer_probabilities()
        elapsed = time.perf_counter() - start
        rows = [(", ".join(map(str, row)) or "()", round(p, args.digits))
                for row, p in sorted(answers.items())]
        print(format_table(("answer", "probability"), rows, title=str(query)))
        print(f"\n{len(answers)} answers in {elapsed:.3f}s; "
              f"{result.offending_count} offending tuples; "
              f"network of {len(result.network)} nodes; "
              f"{'data safe (fully extensional)' if result.is_data_safe else 'mixed evaluation'}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs import build_explain_report

    if args.workload:
        if args.query not in TABLE1_QUERIES:
            print(f"error: --workload expects a Table 1 query name, one of "
                  f"{', '.join(sorted(TABLE1_QUERIES))}", file=sys.stderr)
            return 2
        bench = benchmark_query(args.query)
        params = WorkloadParams(
            N=args.n, m=args.m, fanout=args.fanout,
            r_f=args.rf, r_d=args.rd, seed=args.seed,
        )
        db = generate_database(params)
        query = bench.query
        order = (
            args.join_order.split(",")
            if args.join_order
            else list(bench.join_order)
        )
        print(f"generated {db.total_tuples()} tuples "
              f"(N={args.n}, m={args.m}, r_f={args.rf}, r_d={args.rd})")
    else:
        if not args.database:
            print("error: explain needs either --database DIR or --workload",
                  file=sys.stderr)
            return 2
        db = load_database(args.database)
        query = parse_query(args.query)
        order = args.join_order.split(",") if args.join_order else None
    budget = None
    if args.deadline is not None:
        from repro.resilience import QueryBudget

        budget = QueryBudget(deadline_seconds=args.deadline)
    registry = MetricsRegistry()
    with _observed(args):
        report, _ = build_explain_report(
            db,
            query,
            join_order=order,
            engine=args.engine,
            workers=args.workers,
            registry=registry,
            budget=budget,
            top_k=args.top_k,
        )
        print(report.format())
    if args.json:
        path = write_json_report(args.json, report.as_dict())
        print(f"wrote {path}")
    return 0


def cmd_whatif(args: argparse.Namespace) -> int:
    from repro.circuit import CircuitCache, ScenarioBatch

    if args.workload:
        if args.query not in TABLE1_QUERIES:
            print(f"error: --workload expects a Table 1 query name, one of "
                  f"{', '.join(sorted(TABLE1_QUERIES))}", file=sys.stderr)
            return 2
        bench = benchmark_query(args.query)
        params = WorkloadParams(
            N=args.n, m=args.m, fanout=args.fanout,
            r_f=args.rf, r_d=args.rd, seed=args.seed,
        )
        db = generate_database(params)
        query = bench.query
        order = (
            args.join_order.split(",")
            if args.join_order
            else list(bench.join_order)
        )
    else:
        if not args.database:
            print("error: whatif needs either --database DIR or --workload",
                  file=sys.stderr)
            return 2
        db = load_database(args.database)
        query = parse_query(args.query)
        order = args.join_order.split(",") if args.join_order else None

    cache = CircuitCache()
    evaluator = PartialLineageEvaluator(
        db, engine=args.engine, circuit_cache=cache
    )
    with _observed(args):
        result = evaluator.evaluate_query(query, order)
        analysis = result.whatif()
        offending = result.conditioned_tuples
        print(f"{len(result.relation)} answers; "
              f"{len(offending)} offending tuples")
        answers = sorted(row for row, _, _ in result.relation.items())
        for row in answers[: args.limit]:
            sens = analysis.sensitivities(row, method=args.method)
            base = analysis.probability(row)
            label = ", ".join(map(str, row)) or "()"
            if not sens:
                print(f"\nanswer ({label}): p={base:.{args.digits}f}; "
                      f"no sensitive tuples")
                continue
            print(format_table(
                ("source", "row", "absent", "certain", "swing"),
                [(s.tuple.source, ", ".join(map(str, s.tuple.row)),
                  f"{s.when_absent:.{args.digits}f}",
                  f"{s.when_certain:.{args.digits}f}",
                  f"{s.swing:+.{args.digits}f}")
                 for s in sens[: args.top]],
                title=f"answer ({label}): p={base:.{args.digits}f}, "
                      f"top sensitivities [{args.method}]",
            ))
        if args.batch:
            import numpy as np

            rng = np.random.default_rng(args.seed)
            variables = tuple(
                analysis.variable_for(off) for off in offending
            )
            scenarios = ScenarioBatch(
                variables, rng.random((args.batch, len(variables)))
            )
            rows = []
            for row in answers[: args.limit]:
                start = time.perf_counter()
                probs = analysis.probability_batch(row, scenarios)
                elapsed = time.perf_counter() - start
                rows.append((
                    ", ".join(map(str, row)) or "()",
                    f"{args.batch / max(elapsed, 1e-9):.0f}",
                    f"{probs.mean():.{args.digits}f}",
                    f"{probs.min():.{args.digits}f}",
                    f"{probs.max():.{args.digits}f}",
                ))
            print()
            print(format_table(
                ("answer", "scenarios/s", "mean", "min", "max"),
                rows,
                title=f"batch re-scoring: {args.batch} random scenarios "
                      f"over {len(variables)} offending tuples",
            ))
            print(f"circuit cache: {cache.stats.hits} hits / "
                  f"{cache.stats.misses} misses, "
                  f"{cache.recompiles} recompiles")
    return 0


def _replay_flight(args: argparse.Namespace) -> list[dict]:
    """Replay Table 1 queries on a generated instance under the active flight
    recorder; returns the records the replay produced."""
    from repro.obs import telemetry

    params = WorkloadParams(
        N=args.n, m=args.m, fanout=3, r_f=0.1, r_d=1.0, seed=args.seed
    )
    db = generate_database(params)
    recorder = telemetry.current_recorder()
    before = recorder.recorded
    for name in args.queries:
        bench = benchmark_query(name)
        evaluator = PartialLineageEvaluator(db, engine=args.engine)
        result = evaluator.evaluate_query(bench.query, list(bench.join_order))
        result.answer_probabilities()
    produced = recorder.recorded - before
    return list(recorder.records)[-produced:] if produced else []


def _obs_records(args: argparse.Namespace) -> list[dict]:
    """Flight records for an ``obs`` subcommand: read ``--flight-log`` when
    given, otherwise replay a small workload to produce fresh ones."""
    from repro.obs import read_flight_log

    if args.flight_log:
        return read_flight_log(args.flight_log)
    return _replay_flight(args)


def cmd_obs_metrics(args: argparse.Namespace) -> int:
    from repro.obs import render_openmetrics, registry_from_records

    records = _obs_records(args)
    registry = registry_from_records(records)
    text = render_openmetrics(registry.snapshot())
    if args.out:
        import pathlib

        pathlib.Path(args.out).write_text(text)
        print(f"wrote OpenMetrics exposition to {args.out} "
              f"({len(records)} flight records)")
    else:
        print(text, end="")
    return 0


def cmd_obs_slo(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.obs import DEFAULT_SLO_TARGETS, slo_report_from_records

    overrides = {
        "latency_p50": args.p50,
        "latency_p95": args.p95,
        "latency_p99": args.p99,
        "error_rate": args.max_error_rate,
        "degradation_rate": args.max_degradation_rate,
    }
    targets = tuple(
        dataclasses.replace(t, threshold=overrides[t.name])
        if overrides.get(t.name) is not None else t
        for t in DEFAULT_SLO_TARGETS
    )
    records = _obs_records(args)
    report = slo_report_from_records(records, targets)
    if args.as_json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.format())
    return 0 if report.ok else 1


def cmd_obs_lint(args: argparse.Namespace) -> int:
    import pathlib

    from repro.obs import validate_openmetrics

    errors = validate_openmetrics(pathlib.Path(args.path).read_text())
    for error in errors:
        print(f"lint: {error}", file=sys.stderr)
    if not errors:
        print(f"{args.path}: valid OpenMetrics exposition")
    return 1 if errors else 0


def cmd_obs_validate(args: argparse.Namespace) -> int:
    from repro.obs import read_flight_log, validate_flight_records

    records = read_flight_log(args.path)
    errors = validate_flight_records(records)
    for error in errors:
        print(f"invalid: {error}", file=sys.stderr)
    if not errors:
        print(f"{args.path}: {len(records)} schema-valid flight records")
    return 1 if errors else 0


def cmd_analyze(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    hierarchical = is_hierarchical(query)
    strict = is_strictly_hierarchical(query)
    print(f"query: {query}")
    print(f"  hierarchical (safe):      {hierarchical}")
    print(f"  strictly hierarchical:    {strict} "
          f"({'bounded' if strict else 'unbounded'} lineage treewidth, Thm 4.2)")
    if hierarchical:
        try:
            plan = safe_plan(query)
            print(f"  safe plan:                {plan}")
        except UnsafePlanError as exc:
            print(f"  safe plan:                n/a ({exc})")
    else:
        print("  safe plan:                none (unsafe query; evaluation is "
              "data-dependent)")
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    params = WorkloadParams(
        N=args.n, m=args.m, fanout=args.fanout,
        r_f=args.rf, r_d=args.rd, seed=args.seed,
    )
    db = generate_database(params)
    bench = benchmark_query(args.query)
    print(f"generated {db.total_tuples()} tuples "
          f"(N={args.n}, m={args.m}, r_f={args.rf}, r_d={args.rd})")
    if args.save:
        save_database(db, args.save)
        print(f"saved the instance to {args.save}")
    methods = [
        lambda db, bench: run_partial_lineage(
            db, bench, engine=args.engine, workers=args.workers
        ),
        run_partial_lineage_sqlite,
    ]
    if args.baseline:
        methods.append(run_full_lineage)
    if args.sample:
        # Reuse the workload seed so the sampler never falls back to an
        # unseeded random.Random() — benchmark runs stay reproducible.
        methods.append(
            lambda db, bench: run_sampling(
                db, bench, samples=args.samples, seed=args.seed,
                method=args.mc_method,
            )
        )
    with _observed(args):
        rows = []
        for method in methods:
            outcome = method(db, bench)
            rows.append(
                (
                    outcome.method,
                    "dnf" if outcome.timed_out else f"{outcome.seconds:.4f}",
                    outcome.offending or "-",
                    len(outcome.answers),
                    f"{outcome.samples_per_sec:.0f}" if outcome.samples_per_sec else "-",
                )
            )
        print(format_table(
            ("method", "seconds", "#offending", "#answers", "samples/s"),
            rows,
            title=f"query {args.query}: {bench.text}",
        ))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.resilience import QueryBudget
    from repro.serve import AdmissionPolicy, ServeDaemon, Server

    if args.workload:
        db = generate_database(
            WorkloadParams(N=args.n, m=args.m, seed=args.seed)
        )
    elif args.database is not None:
        db = load_database(args.database)
    else:
        print("error: serve needs --dir DIR or --workload", file=sys.stderr)
        return 2
    template = None
    if args.max_network_nodes is not None or args.max_samples is not None:
        template = QueryBudget(
            max_network_nodes=args.max_network_nodes,
            max_samples=args.max_samples,
        )
    server = Server(
        db,
        policy=AdmissionPolicy(
            max_queue=args.max_queue, workers=args.serve_workers
        ),
        engine=args.engine,
        default_deadline=args.default_deadline,
        budget_template=template,
        pool_workers=args.workers,
        seed=args.seed,
    )
    for spec in args.prepare or []:
        name, sep, text = spec.partition("=")
        if not sep or not name or not text:
            print(f"error: --prepare wants NAME=QUERY, got {spec!r}",
                  file=sys.stderr)
            return 2
        server.prepare(name.strip(), text.strip())
    daemon = ServeDaemon(
        server, host=args.host, port=args.port, unix_path=args.socket
    )
    with _observed(args):
        address = daemon.address
        where = address if isinstance(address, str) else "{}:{}".format(*address)
        print(f"serving on {where} "
              f"({len(server.prepared)} prepared, "
              f"{args.serve_workers} workers, queue {args.max_queue})",
              flush=True)
        try:
            daemon.serve_forever()
        except KeyboardInterrupt:
            print("\ndraining ...", flush=True)
        finally:
            clean = daemon.stop()
            print(f"drained {'cleanly' if clean else 'with stragglers'}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.suite == "serve":
        from repro.bench import serve

        out = args.out if args.out is not None else "BENCH_serve.json"
        argv = [
            "--out", out,
            "--n", str(args.n),
            "--m", str(args.m),
            "--seed", str(args.seed),
            "--requests", str(args.requests),
        ]
        return serve.main(argv)
    if args.suite == "dissoc":
        from repro.bench import dissoc

        out = args.out if args.out is not None else "BENCH_dissoc.json"
        min_speedup = (
            args.min_speedup if args.min_speedup is not None else 5.0
        )
        argv = [
            "--out", out,
            "--seed", str(args.seed),
            "--sizes", *[str(m) for m in args.sizes],
            "--k", str(args.k),
            "--min-speedup", str(min_speedup),
        ]
        return dissoc.main(argv)
    if args.suite == "rescore":
        from repro.bench import rescore

        out = args.out if args.out is not None else "BENCH_rescore.json"
        argv = [
            "--out", out,
            "--n", str(args.n),
            "--m", str(args.m),
            "--seed", str(args.seed),
            "--query", args.query,
            "--batch", str(args.batch),
        ]
        return rescore.main(argv)
    if args.suite == "parallel":
        from repro.bench import parallel

        out = args.out if args.out is not None else "BENCH_parallel.json"
        argv = [
            "--out", out,
            "--n", str(args.n),
            "--seed", str(args.seed),
            "--sizes", *[str(m) for m in args.sizes],
        ]
        if args.workers:
            argv += ["--workers", *[str(w) for w in args.workers],
                     "--parallel-workers", str(max(args.workers))]
        return parallel.main(argv)
    if args.suite == "columnar":
        from repro.bench import columnar

        out = args.out if args.out is not None else "BENCH_columnar.json"
        argv = [
            "--out", out,
            "--n", str(args.n),
            "--seed", str(args.seed),
            "--sizes", *[str(m) for m in args.sizes],
            "--min-speedup", str(
                args.min_speedup if args.min_speedup is not None else 10.0
            ),
        ]
        return columnar.main(argv)
    from repro.bench import mc_dpll

    argv = [
        "--out", args.out if args.out is not None else "BENCH_mc_dpll.json",
        "--samples", str(args.samples),
        "--n", str(args.n),
        "--m", str(args.m),
        "--seed", str(args.seed),
        "--query", args.query,
    ]
    return mc_dpll.main(argv)


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="PATH",
                        help="write a Chrome trace-event JSON of the run "
                             "(open in chrome://tracing or Perfetto)")
    parser.add_argument("--profile", action="store_true",
                        help="print the span tree with wall/CPU times after "
                             "the run")
    parser.add_argument("--flight-log", metavar="PATH",
                        help="sink the run's flight records (one JSON object "
                             "per evaluation) to PATH as JSONL")


def _add_replay_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--flight-log", metavar="PATH",
                        help="read flight records from this JSONL log "
                             "instead of replaying a workload")
    parser.add_argument("--queries", nargs="+", default=["P1"],
                        choices=sorted(TABLE1_QUERIES), metavar="Q",
                        help="[replay] Table 1 queries to run (default: P1)")
    parser.add_argument("--n", type=int, default=2, help="[replay] N")
    parser.add_argument("--m", type=int, default=40,
                        help="[replay] instance size m")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--engine", default="columnar",
                        choices=("columnar", "rows"))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Partial-lineage query evaluation over probabilistic "
                    "databases (EDBT 2010 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("query", help="evaluate a query over a CSV database")
    q.add_argument("database", help="directory of <Relation>.csv files")
    q.add_argument("query", help="datalog-style query text")
    q.add_argument("--join-order", help="comma-separated relation names")
    q.add_argument("--optimize", action="store_true",
                   help="search join orders minimising offending tuples")
    q.add_argument("--digits", type=int, default=6)
    q.add_argument("--explain", action="store_true",
                   help="print the annotated plan tree before evaluating")
    q.add_argument("--engine", default="columnar", choices=("columnar", "rows"),
                   help="operator backend for the pL evaluator")
    q.add_argument("--workers", type=int, default=None,
                   help="process-pool size for component-parallel final "
                        "inference (default: in-process)")
    q.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget for the whole query; without "
                        "--degrade a blown deadline is an error")
    q.add_argument("--degrade", action="store_true",
                   help="never fail on hard instances: answers that blow "
                        "the budget degrade to sound [lower, upper] bounds "
                        "(dissociation -> OBDD -> interval bounds -> "
                        "sampling)")
    q.add_argument("--top-k", type=int, default=None, metavar="K",
                   help="bounds-first top-k: rank answers by dissociation "
                        "enclosures and spend exact inference only on the "
                        "answers whose interval overlaps the k-th decision "
                        "boundary (identical result to exact-all ranking)")
    q.add_argument("--max-network-nodes", type=int, default=None,
                   help="cap on And-Or network growth during evaluation")
    q.add_argument("--max-samples", type=int, default=20_000,
                   help="Monte-Carlo samples for the degradation ladder's "
                        "sampling rung (default 20000)")
    q.add_argument("--chunk-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-dispatch timeout for the fault-tolerant pool "
                        "(with --degrade and --workers)")
    _add_observability_flags(q)
    q.set_defaults(func=cmd_query)

    e = sub.add_parser(
        "explain",
        help="full evaluation report for one query: offending tuples, "
             "network components, per-component engine choices, cache "
             "hit rates",
    )
    e.add_argument("query",
                   help="datalog-style query text (with --database), or a "
                        "Table 1 query name (with --workload)")
    e.add_argument("--database", metavar="DIR",
                   help="directory of <Relation>.csv files")
    e.add_argument("--workload", action="store_true",
                   help="treat QUERY as a Table 1 name and explain it on a "
                        "generated Section 6.1 instance")
    e.add_argument("--n", type=int, default=2, help="[workload] N")
    e.add_argument("--m", type=int, default=50, help="[workload] m")
    e.add_argument("--fanout", type=int, default=3)
    e.add_argument("--rf", type=float, default=0.1)
    e.add_argument("--rd", type=float, default=1.0)
    e.add_argument("--seed", type=int, default=0)
    e.add_argument("--join-order", help="comma-separated relation names")
    e.add_argument("--engine", default="columnar",
                   choices=("columnar", "rows"),
                   help="operator backend for the pL evaluator")
    e.add_argument("--workers", type=int, default=None,
                   help="recorded pool size (the report itself solves "
                        "in-process to measure per-slice timings)")
    e.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                   help="solve every slice through the degradation ladder "
                        "under this wall-clock budget; the report then "
                        "records ladder rungs and degraded-answer counts")
    e.add_argument("--top-k", type=int, default=None, metavar="K",
                   help="add the dissociation-bounds section: per-answer "
                        "enclosure widths and the bounds-first top-K "
                        "certification with its time saved vs exact-all")
    e.add_argument("--json", metavar="PATH",
                   help="also write the report as JSON")
    _add_observability_flags(e)
    e.set_defaults(func=cmd_explain)

    a = sub.add_parser("analyze", help="static safety analysis of a query")
    a.add_argument("query")
    a.set_defaults(func=cmd_analyze)

    wf = sub.add_parser(
        "whatif",
        help="sensitivity analysis over offending tuples: per-answer swing "
             "ranking plus vectorized batch re-scoring of random scenarios",
    )
    wf.add_argument("query",
                    help="datalog-style query text (with --database), or a "
                         "Table 1 query name (with --workload)")
    wf.add_argument("--database", metavar="DIR",
                    help="directory of <Relation>.csv files")
    wf.add_argument("--workload", action="store_true",
                    help="treat QUERY as a Table 1 name and analyse it on a "
                         "generated Section 6.1 instance")
    wf.add_argument("--n", type=int, default=2, help="[workload] N")
    wf.add_argument("--m", type=int, default=50, help="[workload] m")
    wf.add_argument("--fanout", type=int, default=3)
    wf.add_argument("--rf", type=float, default=0.1)
    wf.add_argument("--rd", type=float, default=1.0)
    wf.add_argument("--seed", type=int, default=0,
                    help="workload generator and scenario-sampler seed")
    wf.add_argument("--join-order", help="comma-separated relation names")
    wf.add_argument("--engine", default="columnar",
                    choices=("columnar", "rows"),
                    help="operator backend for the pL evaluator")
    wf.add_argument("--method", default="auto",
                    choices=("auto", "circuit", "obdd"),
                    help="sensitivity engine: batched circuit gradients "
                         "(default) or the scalar OBDD oracle")
    wf.add_argument("--batch", type=int, default=0, metavar="N",
                    help="also re-score N random probability scenarios per "
                         "answer through the compiled circuit")
    wf.add_argument("--limit", type=int, default=5,
                    help="max answers to analyse (default 5)")
    wf.add_argument("--top", type=int, default=10,
                    help="sensitivities shown per answer (default 10)")
    wf.add_argument("--digits", type=int, default=6)
    _add_observability_flags(wf)
    wf.set_defaults(func=cmd_whatif)

    w = sub.add_parser("workload", help="run a Table 1 benchmark query")
    w.add_argument("query", choices=sorted(TABLE1_QUERIES))
    w.add_argument("--n", type=int, default=2)
    w.add_argument("--m", type=int, default=50)
    w.add_argument("--fanout", type=int, default=3)
    w.add_argument("--rf", type=float, default=0.1)
    w.add_argument("--rd", type=float, default=1.0)
    w.add_argument("--seed", type=int, default=0)
    w.add_argument("--baseline", action="store_true",
                   help="also run the full-lineage DPLL competitor")
    w.add_argument("--sample", action="store_true",
                   help="also run Karp-Luby sampling")
    w.add_argument("--samples", type=int, default=5000,
                   help="Monte-Carlo samples for --sample (default 5000)")
    w.add_argument("--mc-method", default="auto",
                   choices=("auto", "vectorized", "scalar"),
                   help="sampling implementation for --sample")
    w.add_argument("--save", metavar="DIR",
                   help="persist the generated instance as CSV files")
    w.add_argument("--engine", default="columnar", choices=("columnar", "rows"),
                   help="operator backend for the pL evaluator")
    w.add_argument("--workers", type=int, default=None,
                   help="process-pool size for component-parallel final "
                        "inference (default: in-process)")
    _add_observability_flags(w)
    w.set_defaults(func=cmd_workload)

    b = sub.add_parser(
        "bench",
        help="run a machine-readable benchmark suite "
             "(mc_dpll, columnar, parallel, rescore, or dissoc)",
    )
    b.add_argument("--suite", default="mc_dpll",
                   choices=("mc_dpll", "columnar", "parallel", "rescore",
                            "dissoc", "serve"))
    b.add_argument("--out", default=None,
                   help="output JSON path (default BENCH_<suite>.json)")
    b.add_argument("--samples", type=int, default=50_000,
                   help="[mc_dpll] Monte-Carlo samples")
    b.add_argument("--n", type=int, default=2)
    b.add_argument("--m", type=int, default=60, help="[mc_dpll] instance size")
    b.add_argument("--seed", type=int, default=7)
    b.add_argument("--query", default="P1", choices=sorted(TABLE1_QUERIES),
                   help="[mc_dpll] Table 1 query")
    b.add_argument("--sizes", type=int, nargs="+",
                   default=[200, 800, 3200],
                   help="[columnar] instance sizes m to scale over")
    b.add_argument("--min-speedup", type=float, default=None,
                   help="acceptance: speedup required on the largest "
                        "instance (columnar default 10, dissoc default 5)")
    b.add_argument("--k", type=int, default=10,
                   help="[dissoc] top-k cutoff to certify")
    b.add_argument("--workers", type=int, nargs="+", default=None,
                   help="[parallel] process-pool sizes to sweep")
    b.add_argument("--batch", type=int, default=1000,
                   help="[rescore] scenarios per batch (default 1000)")
    b.add_argument("--requests", type=int, default=120,
                   help="[serve] replayed requests per phase (default 120)")
    b.set_defaults(func=cmd_bench)

    srv = sub.add_parser(
        "serve",
        help="run the fault-tolerant query-service daemon over a TCP or "
             "unix socket (line-delimited JSON protocol)",
    )
    srv.add_argument("--dir", dest="database", default=None, metavar="DIR",
                     help="CSV database directory to serve")
    srv.add_argument("--workload", action="store_true",
                     help="serve a generated Section 6.1 instance instead "
                          "of a CSV directory")
    srv.add_argument("--n", type=int, default=2, help="[workload] N")
    srv.add_argument("--m", type=int, default=100,
                     help="[workload] instance size m")
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7432,
                     help="TCP port (0 picks a free port; default 7432)")
    srv.add_argument("--socket", default=None, metavar="PATH",
                     help="serve on a unix-domain socket instead of TCP")
    srv.add_argument("--engine", default="columnar",
                     choices=("columnar", "rows"))
    srv.add_argument("--serve-workers", type=int, default=4,
                     help="concurrent execution threads (default 4)")
    srv.add_argument("--max-queue", type=int, default=32,
                     help="bounded admission queue depth (default 32)")
    srv.add_argument("--default-deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="deadline applied to requests that bring none")
    srv.add_argument("--max-network-nodes", type=int, default=None,
                     help="global And-Or network size cap per request")
    srv.add_argument("--max-samples", type=int, default=None,
                     help="global sampling cap for the degradation ladder")
    srv.add_argument("--workers", type=int, default=None,
                     help="process-pool size for degraded inference")
    srv.add_argument("--prepare", action="append", metavar="NAME=QUERY",
                     help="prepare a statement at startup (repeatable)")
    _add_observability_flags(srv)
    srv.set_defaults(func=cmd_serve)

    o = sub.add_parser(
        "obs",
        help="observability: OpenMetrics export, SLO report, and linters "
             "for flight logs and metric expositions",
    )
    osub = o.add_subparsers(dest="obs_command", required=True)

    om = osub.add_parser(
        "metrics",
        help="render an OpenMetrics/Prometheus text exposition from a "
             "flight log (or a fresh workload replay)",
    )
    _add_replay_flags(om)
    om.add_argument("--out", metavar="PATH",
                    help="write the exposition to PATH instead of stdout")
    om.set_defaults(func=cmd_obs_metrics)

    osl = osub.add_parser(
        "slo",
        help="evaluate latency/error/degradation objectives over a flight "
             "log (or a fresh workload replay); exits nonzero on violation",
    )
    _add_replay_flags(osl)
    osl.add_argument("--json", action="store_true", dest="as_json",
                     help="emit the report as JSON")
    osl.add_argument("--p50", type=float, default=None, metavar="MS",
                     help="override the p50 latency objective (milliseconds)")
    osl.add_argument("--p95", type=float, default=None, metavar="MS",
                     help="override the p95 latency objective (milliseconds)")
    osl.add_argument("--p99", type=float, default=None, metavar="MS",
                     help="override the p99 latency objective (milliseconds)")
    osl.add_argument("--max-error-rate", type=float, default=None,
                     metavar="RATE", help="override the error-rate objective")
    osl.add_argument("--max-degradation-rate", type=float, default=None,
                     metavar="RATE",
                     help="override the degradation-rate objective")
    osl.set_defaults(func=cmd_obs_slo)

    ol = osub.add_parser(
        "lint",
        help="promtool-style lint of an OpenMetrics text exposition file",
    )
    ol.add_argument("path")
    ol.set_defaults(func=cmd_obs_lint)

    ov = osub.add_parser(
        "validate", help="schema-validate a JSONL flight log"
    )
    ov.add_argument("path")
    ov.set_defaults(func=cmd_obs_validate)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
