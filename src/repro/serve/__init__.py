"""``repro.serve`` — the fault-tolerant query-service daemon.

A long-lived serving layer over one probabilistic database, designed so
that overload and faults degrade answers (soundly) before they degrade the
service:

* :mod:`~repro.serve.protocol` — line-delimited JSON wire protocol with
  machine-readable rejection codes (backpressure is explicit, 429-style).
* :mod:`~repro.serve.prepared` — prepared statements with warm
  per-statement state: parsed plan, base-encode cache, rename-invariant
  subformula cache, circuit cache.
* :mod:`~repro.serve.scheduler` — bounded-queue admission control, queue-
  depth load shedding onto cheaper evaluation rungs, hung-request reaping,
  graceful drain.
* :mod:`~repro.serve.session` — per-client sessions holding buffered
  transactions with snapshot isolation and commit-only cache invalidation.
* :mod:`~repro.serve.server` — the in-process :class:`Server` tying the
  layers together (also the protocol dispatcher).
* :mod:`~repro.serve.daemon` — the TCP/unix socket front-end
  (:class:`ServeDaemon`) and blocking :class:`ServeClient`.

Quick start (in-process)::

    server = Server(db, default_deadline=5.0)
    server.prepare("p1", "q(h) :- R(h,x), S(h,x,y)")
    payload = server.query("p1")          # {"answers": [...], "mode": ...}
    server.drain()

or over a socket: ``repro serve --dir DB --port 7432`` and connect a
:class:`ServeClient`.
"""

from repro.serve.daemon import ServeClient, ServeDaemon, ServeError
from repro.serve.prepared import PreparedQuery
from repro.serve.protocol import ERROR_CODES, OPS, PROTOCOL_VERSION
from repro.serve.scheduler import AdmissionPolicy, ScheduledRequest, Scheduler
from repro.serve.server import Server
from repro.serve.session import Session, SessionManager

__all__ = [
    "AdmissionPolicy",
    "ERROR_CODES",
    "OPS",
    "PROTOCOL_VERSION",
    "PreparedQuery",
    "ScheduledRequest",
    "Scheduler",
    "Server",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "Session",
    "SessionManager",
]
