"""Concurrent request scheduler: bounded queue, admission control, shedding.

The scheduler is where the daemon's robustness policy lives:

* **Admission control.** Every request passes :class:`AdmissionPolicy`
  before touching the queue. A full queue is an immediate
  ``rejected_overload`` (the HTTP-429 analogue — explicit backpressure,
  never unbounded buffering); a request whose
  :class:`~repro.resilience.QueryBudget` deadline is already (or nearly)
  spent is ``rejected_deadline`` — it would only die at its first
  mid-operator checkpoint, so it is refused before a worker ever sees it.
* **Load shedding.** Admitted requests are stamped with a *shed level*
  derived from queue depth: level 0 runs the requested mode, level 1
  forces the degradation ladder (sound enclosures at bounded cost), level
  2 forces extensional-speed dissociation bounds only. Under pressure the
  service gets cheaper per request instead of slower for everyone.
* **Hung-request reaping.** A reaper thread watches every outstanding
  request; once a deadline is more than a grace period past due, the
  client's future is completed with ``timeout`` and the eventual late
  result is discarded. Workers are cooperative (budgets checkpoint), so
  the thread itself unwinds at the next checkpoint — the reaper exists so
  one wedged request cannot hold its client (or the drain) hostage.
* **Graceful drain.** :meth:`Scheduler.drain` stops admission (new
  requests get ``shutting_down``), lets queued and in-flight work finish,
  then joins the workers. Nothing is dropped; nothing new starts.

Execution workers are threads: the heavy NumPy kernels release the GIL,
process-level parallelism stays available *per request* through the
resilient pool, and request state (snapshots, caches) stays shareable.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field

from repro.errors import AdmissionError, DeadlineExceededError

__all__ = ["AdmissionPolicy", "ScheduledRequest", "Scheduler"]

#: Human names of the shed levels stamped onto admitted requests.
SHED_LEVELS = ("none", "degrade", "bounds")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Declarative admission/shedding/reaping policy of one scheduler."""

    #: Bounded queue: admission rejects (``rejected_overload``) beyond this
    #: many queued-but-not-started requests.
    max_queue: int = 32
    #: Concurrent execution threads.
    workers: int = 4
    #: Minimum remaining deadline a request must bring to be admitted;
    #: requests at or below it are ``rejected_deadline``.
    min_deadline_seconds: float = 0.0
    #: Queue-depth fraction at which admitted queries are shed to the
    #: degradation ladder (level 1).
    shed_degrade_fraction: float = 0.5
    #: Queue-depth fraction at which admitted queries are shed to
    #: dissociation-bounds-only evaluation (level 2).
    shed_bounds_fraction: float = 0.85
    #: Reaper scan period.
    reap_interval_seconds: float = 0.02
    #: Extra seconds past a request's deadline before the reaper responds
    #: on its behalf (cooperative checkpoints usually answer first).
    reap_grace_seconds: float = 0.25

    def shed_level(self, depth: int) -> int:
        """The shed level (0/1/2) for a request admitted at queue *depth*."""
        if self.max_queue <= 0:
            return 0
        fraction = depth / self.max_queue
        if fraction >= self.shed_bounds_fraction:
            return 2
        if fraction >= self.shed_degrade_fraction:
            return 1
        return 0


@dataclass(eq=False)  # identity semantics: requests live in sets
class ScheduledRequest:
    """One admitted request: the work closure plus its scheduling stamps."""

    fn: object
    budget: object = None
    label: str = ""
    #: Shed level stamped at admission (0 = run as requested).
    shed: int = 0
    #: Queue depth observed at admission.
    queue_depth: int = 0
    seq: int = 0
    future: Future = field(default_factory=Future)
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None


class Scheduler:
    """Bounded-queue thread scheduler with admission control and reaping.

    *registry* (a thread-safe :class:`~repro.obs.MetricsRegistry`) receives
    ``serve.scheduler.*`` counters and the queue-depth histogram; pass
    ``None`` to skip metrics.
    """

    def __init__(self, policy: AdmissionPolicy | None = None, registry=None):
        self.policy = policy or AdmissionPolicy()
        self.registry = registry
        self._queue: queue.Queue = queue.Queue()
        self._outstanding: set[ScheduledRequest] = set()
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._draining = False
        self._stopped = False
        self._workers = [
            threading.Thread(
                target=self._work, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(self.policy.workers)
        ]
        for t in self._workers:
            t.start()
        self._reaper = threading.Thread(
            target=self._reap, name="serve-reaper", daemon=True
        )
        self._reaper.start()

    # ------------------------------------------------------------ admission
    def submit(self, fn, *, budget=None, label: str = "") -> ScheduledRequest:
        """Admit and enqueue one request; returns it with ``future`` pending.

        *fn* is called as ``fn(request)`` on a worker thread; its return
        value resolves ``request.future``.

        Raises
        ------
        AdmissionError
            With code ``shutting_down``, ``rejected_deadline``, or
            ``rejected_overload`` — the request was refused and will never
            run.
        """
        with self._lock:
            if self._draining or self._stopped:
                self._count("serve.scheduler.rejected_draining")
                raise AdmissionError("server is draining", code="shutting_down")
            if budget is not None and not budget.start().admissible(
                self.policy.min_deadline_seconds
            ):
                self._count("serve.scheduler.rejected_deadline")
                raise AdmissionError(
                    f"remaining deadline at or below "
                    f"{self.policy.min_deadline_seconds:g}s at admission",
                    code="rejected_deadline",
                )
            depth = self._queue.qsize()
            if depth >= self.policy.max_queue:
                self._count("serve.scheduler.rejected_overload")
                raise AdmissionError(
                    f"queue full ({depth}/{self.policy.max_queue})",
                    code="rejected_overload",
                )
            request = ScheduledRequest(
                fn=fn, budget=budget, label=label,
                shed=self.policy.shed_level(depth),
                queue_depth=depth, seq=next(self._seq),
            )
            self._outstanding.add(request)
            self._count("serve.scheduler.admitted")
            if request.shed:
                self._count(f"serve.scheduler.shed_level{request.shed}")
            if self.registry is not None:
                self.registry.observe("serve.queue.depth", depth)
            self._queue.put(request)
            return request

    # ------------------------------------------------------------ execution
    def _work(self) -> None:
        while True:
            try:
                request = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._stopped:
                    return
                continue
            try:
                if request.future.done():
                    # Reaped (or cancelled) while queued; never start it.
                    self._count("serve.scheduler.discarded_queued")
                    continue
                request.started_at = time.monotonic()
                try:
                    value = request.fn(request)
                except BaseException as exc:  # per-request crash containment
                    self._resolve(request, error=exc)
                else:
                    self._resolve(request, value=value)
            finally:
                self._forget(request)
                self._queue.task_done()

    def _resolve(self, request: ScheduledRequest, value=None, error=None) -> None:
        try:
            if error is not None:
                request.future.set_exception(error)
                self._count("serve.scheduler.failed")
            else:
                request.future.set_result(value)
                self._count("serve.scheduler.completed")
        except InvalidStateError:
            # The reaper answered first; the late result is discarded.
            self._count("serve.scheduler.late_result")

    def _forget(self, request: ScheduledRequest) -> None:
        with self._lock:
            self._outstanding.discard(request)

    # -------------------------------------------------------------- reaping
    def _reap(self) -> None:
        while not self._stopped:
            time.sleep(self.policy.reap_interval_seconds)
            with self._lock:
                candidates = list(self._outstanding)
            for request in candidates:
                budget = request.budget
                if budget is None or request.future.done():
                    continue
                remaining = budget.remaining()
                if remaining is None:
                    continue
                if remaining < -self.policy.reap_grace_seconds:
                    try:
                        request.future.set_exception(DeadlineExceededError(
                            f"request reaped {-remaining:.3f}s past its "
                            f"deadline"
                        ))
                    except InvalidStateError:
                        continue
                    self._count("serve.scheduler.reaped")

    # ---------------------------------------------------------------- drain
    def drain(self, timeout: float | None = None) -> bool:
        """Stop admission, finish outstanding work, stop the workers.

        Returns ``True`` for a clean drain (everything finished inside
        *timeout*); ``False`` if outstanding work remained when the timeout
        struck (workers are stopped regardless).
        """
        with self._lock:
            self._draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        clean = True
        while True:
            with self._lock:
                left = len(self._outstanding)
            if left == 0:
                break
            if deadline is not None and time.monotonic() > deadline:
                clean = False
                break
            time.sleep(0.01)
        self._stopped = True
        for t in self._workers:
            t.join(timeout=1.0)
        self._reaper.join(timeout=1.0)
        self._count("serve.scheduler.drained")
        return clean

    @property
    def draining(self) -> bool:
        return self._draining

    # ---------------------------------------------------------------- stats
    def stats(self) -> dict:
        with self._lock:
            return {
                "queued": self._queue.qsize(),
                "outstanding": len(self._outstanding),
                "workers": len(self._workers),
                "max_queue": self.policy.max_queue,
                "draining": self._draining,
            }

    def _count(self, name: str) -> None:
        if self.registry is not None:
            self.registry.inc(name)
