"""Prepared statements: parse once, keep every warm cache, serve many.

A :class:`PreparedQuery` is the unit the daemon amortises work over. At
prepare time it parses the query text, (optionally) costs join orders, and
fixes the left-deep plan; at request time it evaluates that plan against a
database *snapshot* and reuses, across every request:

* the parsed plan (no re-parsing, no re-optimising);
* the evaluator's columnar **base-encode cache** (scans of an unchanged
  relation reuse the dictionary-encoded code matrix);
* a rename-invariant :class:`~repro.perf.SubformulaCache` for final
  inference (structurally repeated per-answer DNFs across requests hit);
* a :class:`~repro.circuit.CircuitCache` for what-if re-scoring over the
  prepared plan's results.

Only the operator-pipeline phase is serialised (one lock per prepared
query: the evaluator's interner and base-encode cache are per-statement
mutable state); the expensive final-inference phase runs outside the lock,
so concurrent requests overlap where it matters. Commits invalidate
structurally: the prepared query compares the database version it last saw
and flushes the base-encode/circuit caches only when the committed state
actually moved — a rolled-back transaction costs nothing.
"""

from __future__ import annotations

import threading
import time

from repro.core.executor import EvaluationResult, PartialLineageEvaluator
from repro.core.optimizer import choose_join_order
from repro.core.plan import left_deep_plan
from repro.circuit import CircuitCache
from repro.perf import SubformulaCache
from repro.query.parser import parse_query

__all__ = ["PreparedQuery"]


class PreparedQuery:
    """One registered query with warm per-statement state.

    Parameters
    ----------
    name:
        The handle clients reference in ``query`` requests.
    text:
        Conjunctive-query text (``q(h) :- R(h,x), S(h,x,y)``).
    db:
        The server's root database; the circuit cache watches its mutation
        hooks so commits flush compiled circuits.
    join_order:
        Explicit join order, or ``None``.
    optimize:
        When true (and no explicit order given), cost join orders once at
        prepare time with :func:`~repro.core.optimizer.choose_join_order`.
    engine:
        Operator backend (``"columnar"`` or ``"rows"``).
    """

    def __init__(
        self,
        name: str,
        text: str,
        db,
        *,
        join_order: list[str] | None = None,
        optimize: bool = False,
        engine: str = "columnar",
    ) -> None:
        self.name = name
        self.text = text
        self.engine = engine
        self.query = parse_query(text)
        if join_order is None and optimize:
            join_order = list(choose_join_order(self.query, db, engine=engine).order)
        self.join_order = list(join_order) if join_order else None
        self.plan = left_deep_plan(self.query, self.join_order)
        #: Shared final-inference cache; thread-safe, survives across requests.
        self.infer_cache = SubformulaCache()
        #: Compiled-circuit cache for what-if analyses over this statement.
        self.circuit_cache = CircuitCache()
        # The evaluator wires the circuit cache into the root db's mutation
        # hooks, so transactional commits (and direct adds) flush it.
        self._evaluator = PartialLineageEvaluator(
            db, engine=engine, circuit_cache=self.circuit_cache
        )
        self._lock = threading.Lock()
        self._seen_version = db.version
        self.prepared_at = time.time()
        self.requests = 0

    def evaluate(self, snapshot, version: int, budget=None) -> EvaluationResult:
        """Run the operator pipeline against *snapshot* (at db *version*).

        Serialised per prepared query; the returned result's final
        inference (``answer_probabilities`` etc.) is thread-safe and runs
        outside the lock. When the committed version moved since the last
        request, the base-encode cache is flushed first — the structural
        invalidation commit promises (rollbacks never get here because the
        version never moves).
        """
        with self._lock:
            if version != self._seen_version:
                self._evaluator.invalidate_cache()
                self._seen_version = version
            self._evaluator.db = snapshot
            result = self._evaluator.evaluate(self.plan, budget=budget)
            self.requests += 1
            return result

    def describe(self) -> dict:
        """JSON-shaped summary for ``prepare`` responses and ``stats``."""
        return {
            "name": self.name,
            "query": self.text,
            "join_order": self.join_order,
            "engine": self.engine,
            "requests": self.requests,
            "infer_cache": self.infer_cache.stats.as_dict(),
            "circuit_cache": self.circuit_cache.as_dict(),
        }
