"""Sessions: per-client transaction state of the query service.

A :class:`Session` is the server-side handle one client holds across
requests: its identifier, its (at most one) open
:class:`~repro.db.Transaction`, and usage stamps. The
:class:`SessionManager` hands out ids and looks sessions up under a lock,
so concurrent connections can open/close sessions freely.

Transaction semantics at the session level:

* ``begin`` opens a buffered transaction against the root database; a
  second ``begin`` on the same session is a ``txn_state`` error.
* ``insert`` / ``set_prob`` / ``delete`` buffer into the transaction
  (eagerly validated, invisible to every reader).
* ``commit`` installs the buffered changes atomically (new relation
  objects; in-flight query snapshots keep the old ones) and fires the
  cache-invalidation hooks exactly once per touched relation.
* ``rollback`` discards the buffer; no hook fires, warm caches survive.

Queries never run *inside* a transaction's uncommitted view: the service
serves the committed snapshot (snapshot isolation), which keeps every
cache shared and every answer reproducible against the committed state.
"""

from __future__ import annotations

import itertools
import threading
import time

from repro.db.txn import Transaction
from repro.errors import TransactionError

__all__ = ["Session", "SessionManager"]


class Session:
    """One client's server-side state."""

    def __init__(self, session_id: str) -> None:
        self.id = session_id
        self.txn: Transaction | None = None
        self.opened_at = time.time()
        self.requests = 0

    def require_txn(self) -> Transaction:
        """The open transaction, or a ``txn_state`` error."""
        if self.txn is None or not self.txn.active:
            raise TransactionError(
                f"session {self.id} has no open transaction (begin first)"
            )
        return self.txn

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "requests": self.requests,
            "txn": self.txn.state if self.txn is not None else None,
            "txn_ops": self.txn.operations if self.txn is not None else 0,
        }


class SessionManager:
    """Thread-safe session table."""

    def __init__(self) -> None:
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    def open(self) -> Session:
        """Create and register a fresh session."""
        with self._lock:
            session = Session(f"s{next(self._ids)}")
            self._sessions[session.id] = session
            return session

    def get(self, session_id: str) -> Session:
        """Look a session up; unknown ids are a ``txn_state`` error."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise TransactionError(f"unknown session {session_id!r}")
        session.requests += 1
        return session

    def close(self, session_id: str) -> None:
        """Drop a session, rolling back any transaction left open."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise TransactionError(f"unknown session {session_id!r}")
        if session.txn is not None and session.txn.active:
            session.txn.rollback()

    def close_all(self) -> int:
        """Drop every session (drain path); returns how many rolled back."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        rolled_back = 0
        for session in sessions:
            if session.txn is not None and session.txn.active:
                session.txn.rollback()
                rolled_back += 1
        return rolled_back

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def as_dicts(self) -> list[dict]:
        with self._lock:
            return [s.as_dict() for s in self._sessions.values()]
