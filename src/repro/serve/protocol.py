"""Wire protocol of the query service: line-delimited JSON.

One request per line, one response per line, over a TCP or unix-domain
stream. Requests are JSON objects with an ``op`` field (and an optional
client-chosen ``id``, echoed back verbatim so clients can pipeline);
responses carry ``ok`` plus either the op's payload or an ``error`` object
with a machine-readable ``code``:

.. code-block:: text

    -> {"id": 1, "op": "prepare", "name": "p1", "query": "q(h) :- R(h,x)"}
    <- {"id": 1, "ok": true, "name": "p1", ...}
    -> {"id": 2, "op": "query", "prepared": "p1", "deadline": 2.0}
    <- {"id": 2, "ok": true, "answers": [...], "mode": "exact", ...}

Rejections are part of the protocol, not connection failures: an
admission-controlled request that cannot be queued comes back immediately
as ``ok: false`` with code ``rejected_overload`` / ``rejected_deadline``
(the HTTP-429 analogue), so clients can back off and retry.

Rows travel as JSON arrays and are converted back to tuples on the way in;
answers are objects carrying the row, the point ``probability``, and the
sound ``[lower, upper]`` enclosure (zero-width and ``exact: true`` for
exactly solved answers).
"""

from __future__ import annotations

import json

from repro.errors import (
    AdmissionError,
    BudgetExceededError,
    DeadlineExceededError,
    ProbabilityError,
    QuerySemanticsError,
    QuerySyntaxError,
    ReproError,
    SchemaError,
    TransactionConflictError,
    TransactionError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "OPS",
    "decode",
    "encode",
    "ok_response",
    "error_response",
    "code_for_exception",
    "row_from_wire",
    "answers_payload",
]

#: Bumped on breaking wire-format changes; stamped into ``ping`` replies.
PROTOCOL_VERSION = 1

#: Operations the server understands.
OPS = (
    "ping", "prepare", "query", "begin", "insert", "set_prob", "delete",
    "commit", "rollback", "open_session", "close_session", "stats",
    "shutdown",
)

#: Machine-readable error codes a response may carry.
ERROR_CODES = (
    "rejected_overload",   # bounded queue full — back off and retry
    "rejected_deadline",   # deadline already (or nearly) expired at admission
    "shutting_down",       # server draining; no new work accepted
    "timeout",             # request reaped after its deadline passed
    "budget_exceeded",     # a non-deadline cap (nodes/samples) ran out
    "conflict",            # optimistic transaction commit conflict
    "txn_state",           # transaction misuse (no begin / already finished)
    "bad_request",         # malformed request object
    "invalid",             # schema/probability/query-language violation
    "internal",            # contained per-request failure
)


def encode(obj: dict) -> str:
    """One JSON line (terminator included) for *obj*."""
    return json.dumps(obj, sort_keys=True, default=_jsonable) + "\n"


def _jsonable(value):
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if hasattr(value, "as_dict"):
        return value.as_dict()
    return str(value)


def decode(line: str) -> dict:
    """Parse one request line into a dict.

    Raises
    ------
    ValueError
        If the line is not a JSON object.
    """
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError(f"request must be a JSON object, got {type(obj).__name__}")
    return obj


def ok_response(request_id, **payload) -> dict:
    """A success response echoing the request ``id``."""
    resp = {"ok": True, "id": request_id}
    resp.update(payload)
    return resp


def error_response(request_id, code: str, message: str, **extra) -> dict:
    """A failure response with a machine-readable *code*."""
    return {
        "ok": False,
        "id": request_id,
        "error": dict(extra, code=code, message=message),
    }


def code_for_exception(exc: BaseException) -> str:
    """The :data:`ERROR_CODES` entry describing *exc*."""
    if isinstance(exc, AdmissionError):
        return exc.code
    if isinstance(exc, DeadlineExceededError):
        return "timeout"
    if isinstance(exc, BudgetExceededError):
        return "budget_exceeded"
    if isinstance(exc, TransactionConflictError):
        return "conflict"
    if isinstance(exc, TransactionError):
        return "txn_state"
    if isinstance(exc, (SchemaError, ProbabilityError, QuerySyntaxError,
                        QuerySemanticsError)):
        return "invalid"
    if isinstance(exc, ReproError):
        return "internal"
    return "internal"


def row_from_wire(row) -> tuple:
    """A row as received from JSON (a list) back into the tuple the
    storage layer uses."""
    if not isinstance(row, (list, tuple)):
        raise ValueError(f"row must be an array, got {type(row).__name__}")
    return tuple(row)


def answers_payload(answers: dict) -> list[dict]:
    """Uniform JSON shape for the three answer families.

    *answers* maps rows to one of: a float (exact inference), an
    :class:`~repro.resilience.ladder.AnswerResult` (degradation ladder), or
    a :class:`~repro.dissociation.DissociationBounds` (extensional-speed
    shed rung). Every entry carries a sound enclosure; exact answers have
    ``lower == upper == probability``.
    """
    payload = []
    for row, value in sorted(answers.items(), key=lambda kv: repr(kv[0])):
        if isinstance(value, float):
            entry = {
                "row": list(row), "probability": value,
                "lower": value, "upper": value,
                "method": "exact", "exact": True,
            }
        elif hasattr(value, "method"):  # AnswerResult
            entry = {
                "row": list(row), "probability": value.probability,
                "lower": value.lower, "upper": value.upper,
                "method": value.method, "exact": value.exact,
            }
        else:  # DissociationBounds
            entry = {
                "row": list(row), "probability": value.midpoint,
                "lower": value.lower, "upper": value.upper,
                "method": "dissociation", "exact": value.width == 0.0,
            }
        payload.append(entry)
    return payload
