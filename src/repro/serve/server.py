"""The in-process query service: prepared statements, scheduling, sessions.

:class:`Server` ties the serving layers together behind two surfaces: a
direct Python API (``prepare`` / ``query`` / ``begin`` / ``commit`` / …,
used by tests and :mod:`repro.bench.serve`) and the protocol dispatcher
:meth:`Server.handle` the socket daemon (:mod:`repro.serve.daemon`) feeds
decoded request objects.

Request lifecycle for a query::

    admission (Scheduler.submit: deadline + queue bound, shed stamp)
      -> worker thread: snapshot capture (consistent relations + version)
      -> prepared-statement pipeline (warm plan/base-encode caches)
      -> final inference by effective mode:
           exact  — answer_probabilities under the full budget
           ladder — resilient_answer_probabilities (sound enclosures,
                    worker-crash recovery, deterministic seeding)
           bounds — DissociationEvaluator at extensional speed
      -> response payload; one ``serve`` flight record per request

The *effective mode* is the requested mode overridden by the admission
shed level (1 forces the ladder, 2 forces bounds). Mode ``auto`` is
exact-first: on a blown budget it degrades to the ladder over the
already-built network (or to bounds when the operator pipeline itself blew
the cap) instead of failing — degraded, never wrong. Mode ``exact`` is
strict: a blown budget is an explicit ``budget_exceeded``/``timeout``
error.

Mutations go through sessions (:mod:`repro.serve.session`) and the
database's buffered transactions: queries in flight keep their snapshot,
caches flush only on commit, rollbacks are free.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.db import ProbabilisticDatabase
from repro.dissociation import DissociationEvaluator
from repro.errors import (
    AdmissionError,
    BudgetExceededError,
    ReproError,
)
from repro.obs import telemetry
from repro.obs.metrics import MetricsRegistry
from repro.resilience import QueryBudget
from repro.serve import protocol
from repro.serve.prepared import PreparedQuery
from repro.serve.scheduler import AdmissionPolicy, Scheduler
from repro.serve.session import SessionManager

__all__ = ["Server"]


class Server:
    """A long-lived query service over one probabilistic database.

    Parameters
    ----------
    db:
        The root :class:`~repro.db.ProbabilisticDatabase` (mutations go
        through sessions; direct mutation while serving forfeits snapshot
        isolation but never correctness of already-captured snapshots).
    policy:
        The scheduler's :class:`~repro.serve.scheduler.AdmissionPolicy`.
    engine:
        Operator backend for prepared statements.
    default_deadline:
        Deadline (seconds) applied to requests that bring none; ``None``
        leaves them unbudgeted (and thus unreapable).
    budget_template:
        A :class:`~repro.resilience.QueryBudget` whose non-deadline caps
        (``max_network_nodes``, ``max_samples``, …) apply to every request
        — the global guard against oversized queries.
    pool_workers:
        Process-pool size for the resilient ladder's component fan-out
        (``None`` keeps inference in the worker thread).
    seed:
        Base seed for the sampling rung; each request solves with a
        deterministic seed so retries and replays agree bit-for-bit.
    """

    def __init__(
        self,
        db: ProbabilisticDatabase,
        *,
        policy: AdmissionPolicy | None = None,
        engine: str = "columnar",
        registry: MetricsRegistry | None = None,
        default_deadline: float | None = None,
        budget_template: QueryBudget | None = None,
        pool_workers: int | None = None,
        seed: int = 0,
    ) -> None:
        self.db = db
        self.engine = engine
        self.registry = registry if registry is not None else MetricsRegistry()
        self.policy = policy or AdmissionPolicy()
        self.scheduler = Scheduler(self.policy, self.registry)
        self.sessions = SessionManager()
        self.prepared: dict[str, PreparedQuery] = {}
        self.default_deadline = default_deadline
        self.budget_template = budget_template
        self.pool_workers = pool_workers
        self.seed = seed
        self.started_at = time.time()
        self._closed = False

    # ----------------------------------------------------------- statements
    def prepare(
        self,
        name: str,
        text: str,
        *,
        join_order: list[str] | None = None,
        optimize: bool = False,
    ) -> dict:
        """Register (or replace) a prepared statement; returns its summary."""
        statement = PreparedQuery(
            name, text, self.db,
            join_order=join_order, optimize=optimize, engine=self.engine,
        )
        self.prepared[name] = statement
        self.registry.inc("serve.prepared")
        return statement.describe()

    def _statement(self, prepared: str | None, text: str | None) -> PreparedQuery:
        if prepared is not None:
            try:
                return self.prepared[prepared]
            except KeyError:
                raise ValueError(
                    f"unknown prepared query {prepared!r}; "
                    f"known: {sorted(self.prepared)}"
                ) from None
        if text is None:
            raise ValueError("query request needs 'prepared' or 'query'")
        # Ad-hoc text: full prepare cost, no registration, no warm reuse.
        return PreparedQuery("<adhoc>", text, self.db, engine=self.engine)

    # -------------------------------------------------------------- queries
    def _request_budget(self, deadline: float | None) -> QueryBudget | None:
        if deadline is None:
            deadline = self.default_deadline
        if deadline is None and self.budget_template is None:
            return None
        template = self.budget_template or QueryBudget()
        return replace(template, deadline_seconds=deadline, started_at=None)

    def submit_query(
        self,
        prepared: str | None = None,
        *,
        text: str | None = None,
        deadline: float | None = None,
        mode: str = "auto",
        fault_plan=None,
        chunk_timeout: float | None = None,
        pool_workers: int | None = None,
    ):
        """Admit a query; returns the scheduled request (``.future`` pends).

        *mode* is ``auto`` (exact-first, degrade on blown budget),
        ``exact`` (strict), ``degrade`` (always the ladder), or ``bounds``
        (dissociation only). *fault_plan* / *chunk_timeout* /
        *pool_workers* reach the resilient pool — the chaos-test and bench
        knobs.
        """
        if mode not in ("auto", "exact", "degrade", "bounds"):
            raise ValueError(f"unknown query mode {mode!r}")
        statement = self._statement(prepared, text)
        budget = self._request_budget(deadline)
        workers = pool_workers if pool_workers is not None else self.pool_workers

        def work(request):
            return self._execute(
                request, statement, mode,
                fault_plan=fault_plan, chunk_timeout=chunk_timeout,
                pool_workers=workers,
            )

        return self.scheduler.submit(
            work, budget=budget, label=statement.name
        )

    def query(self, prepared: str | None = None, **kwargs) -> dict:
        """Synchronous query: admit, wait, return the response payload.

        Raises the scheduling/evaluation error on failure; every call —
        served, rejected, reaped, failed — leaves one ``serve`` flight
        record behind.
        """
        t0 = time.perf_counter()
        status, shed, depth = "ok", 0, self.scheduler.stats()["queued"]
        label = prepared or "<adhoc>"
        try:
            request = self.submit_query(prepared, **kwargs)
            shed, depth = request.shed, request.queue_depth
            payload = request.future.result()
            return payload
        except BaseException as exc:
            status = protocol.code_for_exception(exc)
            raise
        finally:
            telemetry.record(
                "serve", op="query", status=status,
                code="" if status == "ok" else status,
                queue_depth=depth, shed=shed,
                seconds=time.perf_counter() - t0,
                prepared=label,
                error=None if status == "ok" else status,
            )
            self.registry.inc("serve.requests")

    def _snapshot(self):
        snap = self.db.snapshot()
        return snap, snap.version

    def _execute(
        self, request, statement: PreparedQuery, mode: str,
        *, fault_plan=None, chunk_timeout=None, pool_workers=None,
    ) -> dict:
        t0 = time.perf_counter()
        snapshot, version = self._snapshot()
        shed = request.shed
        effective = mode
        if shed >= 2:
            effective = "bounds"
        elif shed == 1 and effective in ("auto", "exact"):
            effective = "degrade"
        budget = request.budget
        note = None

        if effective == "bounds":
            payload = self._bounds_payload(statement, snapshot)
        elif effective == "degrade":
            try:
                # The ladder turns a blown deadline into sound bounds, so
                # only non-deadline caps guard the operator pipeline here.
                pipeline_budget = (
                    replace(budget, deadline_seconds=None, started_at=None)
                    if budget is not None else None
                )
                result = statement.evaluate(snapshot, version, pipeline_budget)
                payload = self._ladder_payload(
                    result, statement, budget,
                    fault_plan=fault_plan, chunk_timeout=chunk_timeout,
                    pool_workers=pool_workers,
                )
            except BudgetExceededError:
                # Oversized even for the pipeline: the extensional-speed
                # rung still produces a sound enclosure.
                payload = self._bounds_payload(statement, snapshot)
                note = "pipeline budget exceeded; dissociation bounds served"
        elif effective == "exact":
            result = statement.evaluate(snapshot, version, budget)
            payload = self._exact_payload(result, statement, budget)
        else:  # auto: exact-first, degrade instead of failing
            result = None
            try:
                result = statement.evaluate(snapshot, version, budget)
                payload = self._exact_payload(result, statement, budget)
            except BudgetExceededError:
                if result is None:
                    payload = self._bounds_payload(statement, snapshot)
                    note = ("pipeline budget exceeded; "
                            "dissociation bounds served")
                else:
                    payload = self._ladder_payload(
                        result, statement, budget,
                        fault_plan=fault_plan, chunk_timeout=chunk_timeout,
                        pool_workers=pool_workers,
                    )
                    note = "exact budget exceeded; ladder enclosures served"

        payload.update(
            requested_mode=mode, shed=shed, version=version,
            seconds=time.perf_counter() - t0, prepared=statement.name,
        )
        if note:
            payload["note"] = note
            self.registry.inc("serve.query.degraded_fallback")
        self.registry.inc(f"serve.query.mode.{payload['mode']}")
        return payload

    def _exact_payload(self, result, statement, budget) -> dict:
        probs = result.answer_probabilities(
            engine="auto", cache=statement.infer_cache, budget=budget,
        )
        return {
            "answers": protocol.answers_payload(probs),
            "mode": "exact", "exact": True, "degraded": 0,
        }

    def _ladder_payload(
        self, result, statement, budget,
        *, fault_plan=None, chunk_timeout=None, pool_workers=None,
    ) -> dict:
        answers = result.resilient_answer_probabilities(
            budget,
            workers=pool_workers,
            cache=statement.infer_cache,
            timeout=chunk_timeout,
            fault_plan=fault_plan,
            registry=self.registry,
            seed=self.seed,
        )
        degraded = sum(1 for a in answers.values() if a.degraded)
        return {
            "answers": protocol.answers_payload(answers),
            "mode": "ladder",
            "exact": degraded == 0,
            "degraded": degraded,
        }

    def _bounds_payload(self, statement, snapshot) -> dict:
        bounds = DissociationEvaluator(
            snapshot, engine=self.engine
        ).evaluate(statement.plan)
        inexact = sum(1 for b in bounds.bounds.values() if b.width > 0.0)
        return {
            "answers": protocol.answers_payload(bounds.bounds),
            "mode": "bounds",
            "exact": inexact == 0,
            "degraded": inexact,
        }

    # ------------------------------------------------------------- sessions
    def open_session(self) -> dict:
        session = self.sessions.open()
        self.registry.inc("serve.sessions.opened")
        return {"session": session.id}

    def close_session(self, session_id: str) -> dict:
        self.sessions.close(session_id)
        return {"session": session_id, "closed": True}

    def begin(self, session_id: str | None = None) -> dict:
        """Open a transaction (auto-opening a session when none given)."""
        if session_id is None:
            session = self.sessions.open()
            self.registry.inc("serve.sessions.opened")
        else:
            session = self.sessions.get(session_id)
        if session.txn is not None and session.txn.active:
            from repro.errors import TransactionError

            raise TransactionError(
                f"session {session.id} already has an open transaction"
            )
        session.txn = self.db.begin()
        self.registry.inc("serve.txn.begun")
        return {"session": session.id, "version": self.db.version}

    def insert(self, session_id: str, relation: str, row, probability) -> dict:
        txn = self.sessions.get(session_id).require_txn()
        txn.insert(relation, protocol.row_from_wire(row), float(probability))
        return {"session": session_id, "buffered": txn.operations}

    def set_prob(self, session_id: str, relation: str, row, probability) -> dict:
        txn = self.sessions.get(session_id).require_txn()
        txn.set_probability(
            relation, protocol.row_from_wire(row), float(probability)
        )
        return {"session": session_id, "buffered": txn.operations}

    def delete(self, session_id: str, relation: str, row) -> dict:
        txn = self.sessions.get(session_id).require_txn()
        txn.delete(relation, protocol.row_from_wire(row))
        return {"session": session_id, "buffered": txn.operations}

    def commit(self, session_id: str) -> dict:
        session = self.sessions.get(session_id)
        txn = session.require_txn()
        touched = txn.commit()
        self.registry.inc("serve.txn.committed")
        return {
            "session": session_id, "touched": touched,
            "version": self.db.version, "ops": txn.operations,
        }

    def rollback(self, session_id: str) -> dict:
        session = self.sessions.get(session_id)
        txn = session.require_txn()
        ops = txn.operations
        txn.rollback()
        self.registry.inc("serve.txn.rolled_back")
        return {"session": session_id, "discarded": ops}

    # ----------------------------------------------------------- operations
    def stats(self) -> dict:
        return {
            "uptime_seconds": time.time() - self.started_at,
            "version": self.db.version,
            "scheduler": self.scheduler.stats(),
            "sessions": self.sessions.as_dicts(),
            "prepared": {
                name: p.describe() for name, p in sorted(self.prepared.items())
            },
            "counters": self.registry.snapshot()["counters"],
        }

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful shutdown: refuse new work, finish in-flight requests,
        roll back abandoned transactions. Idempotent."""
        clean = self.scheduler.drain(timeout=timeout)
        self.sessions.close_all()
        self._closed = True
        self.registry.gauge("serve.drained_clean", clean)
        return clean

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------- protocol
    def handle(self, msg: dict) -> dict:
        """Dispatch one decoded protocol request; always returns a response
        object (per-request error isolation lives here)."""
        rid = msg.get("id")
        op = msg.get("op")
        t0 = time.perf_counter()
        status = "ok"
        try:
            if op not in protocol.OPS:
                raise ValueError(f"unknown op {op!r}")
            payload = self._dispatch(op, msg)
            return protocol.ok_response(rid, **payload)
        except (ReproError, ValueError, TypeError, KeyError) as exc:
            if isinstance(exc, (ValueError, TypeError, KeyError)):
                status = "bad_request"
            else:
                status = protocol.code_for_exception(exc)
            return protocol.error_response(rid, status, str(exc))
        except Exception as exc:  # contained: one bad request, not the daemon
            status = "internal"
            return protocol.error_response(
                rid, "internal", f"{type(exc).__name__}: {exc}"
            )
        finally:
            if op != "query":  # query() records its own serve record
                telemetry.record(
                    "serve", op=str(op), status=status,
                    code="" if status == "ok" else status,
                    queue_depth=self.scheduler.stats()["queued"],
                    shed=0, seconds=time.perf_counter() - t0,
                    session=str(msg.get("session", "")),
                    error=None if status == "ok" else status,
                )

    def _dispatch(self, op: str, msg: dict) -> dict:
        if op == "ping":
            return {
                "pong": True,
                "protocol": protocol.PROTOCOL_VERSION,
                "version": self.db.version,
            }
        if op == "prepare":
            return self.prepare(
                msg["name"], msg["query"],
                join_order=msg.get("join_order"),
                optimize=bool(msg.get("optimize", False)),
            )
        if op == "query":
            return self.query(
                msg.get("prepared"),
                text=msg.get("query"),
                deadline=msg.get("deadline"),
                mode=msg.get("mode", "auto"),
            )
        if op == "open_session":
            return self.open_session()
        if op == "close_session":
            return self.close_session(msg["session"])
        if op == "begin":
            return self.begin(msg.get("session"))
        if op == "insert":
            return self.insert(
                msg["session"], msg["relation"], msg["row"], msg["p"]
            )
        if op == "set_prob":
            return self.set_prob(
                msg["session"], msg["relation"], msg["row"], msg["p"]
            )
        if op == "delete":
            return self.delete(msg["session"], msg["relation"], msg["row"])
        if op == "commit":
            return self.commit(msg["session"])
        if op == "rollback":
            return self.rollback(msg["session"])
        if op == "stats":
            return self.stats()
        if op == "shutdown":
            clean = self.drain(timeout=msg.get("timeout", 30.0))
            return {"drained": clean}
        raise ValueError(f"unknown op {op!r}")
