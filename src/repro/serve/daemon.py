"""The socket front-end: threaded TCP/unix daemon plus a line client.

:class:`ServeDaemon` wraps an in-process :class:`~repro.serve.Server` in a
``socketserver`` threading stream server (TCP on ``host:port`` or a
unix-domain socket). One OS thread per connection reads line-delimited
JSON requests (:mod:`repro.serve.protocol`) and writes one response line
per request; all policy — admission, shedding, sessions, draining — lives
in the :class:`~repro.serve.Server` behind it, so the daemon layer stays a
thin transport.

Connection failures are contained per connection; malformed lines are
answered with ``bad_request`` rather than dropping the stream. A
successful ``shutdown`` request drains the server and then stops the
listener from a side thread (so the shutdown response itself still gets
written).

:class:`ServeClient` is the matching blocking client used by the CLI, the
tests, and :mod:`repro.bench.serve`: ``call`` returns the raw response
object, ``require`` raises :class:`ServeError` (carrying the protocol
error code) on ``ok: false``.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading

from repro.serve import protocol
from repro.serve.server import Server

__all__ = ["ServeDaemon", "ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A protocol-level failure response, surfaced client-side.

    ``code`` is the machine-readable :data:`~repro.serve.protocol.ERROR_CODES`
    entry from the response (e.g. ``rejected_overload``).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a loop of decode -> Server.handle -> encode."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: Server = self.server.repro_server
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            shutdown = False
            try:
                msg = protocol.decode(line)
            except (ValueError, json.JSONDecodeError) as exc:
                resp = protocol.error_response(None, "bad_request", str(exc))
            else:
                resp = server.handle(msg)
                shutdown = msg.get("op") == "shutdown" and resp.get("ok", False)
            try:
                self.wfile.write(protocol.encode(resp).encode("utf-8"))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                return
            if shutdown:
                self.server.repro_daemon.stop_listening_async()
                return


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


if hasattr(socketserver, "ThreadingUnixStreamServer"):

    class _ThreadingUnixServer(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True

else:  # pragma: no cover - non-unix platforms
    _ThreadingUnixServer = None


class ServeDaemon:
    """The listening front-end of one :class:`~repro.serve.Server`.

    Parameters
    ----------
    server:
        The in-process server holding all serving state and policy.
    host, port:
        TCP endpoint (``port=0`` picks a free port — the test default).
        Ignored when *unix_path* is given.
    unix_path:
        Path for a unix-domain socket; a stale socket file is unlinked
        first.
    """

    def __init__(
        self,
        server: Server,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: str | None = None,
    ) -> None:
        self.server = server
        self.unix_path = unix_path
        if unix_path is not None:
            if _ThreadingUnixServer is None:  # pragma: no cover
                raise RuntimeError("unix sockets unavailable on this platform")
            if os.path.exists(unix_path):
                os.unlink(unix_path)
            self._sock = _ThreadingUnixServer(unix_path, _Handler)
        else:
            self._sock = _ThreadingTCPServer((host, port), _Handler)
        self._sock.repro_server = server
        self._sock.repro_daemon = self
        self._thread: threading.Thread | None = None
        self._stopped = threading.Event()
        self._closed = threading.Event()

    @property
    def address(self):
        """Where clients connect: ``(host, port)`` or the unix path."""
        if self.unix_path is not None:
            return self.unix_path
        return self._sock.server_address

    def start(self) -> "ServeDaemon":
        """Serve connections on a background thread; returns ``self``."""
        self._thread = threading.Thread(
            target=self._sock.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-daemon",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (CLI mode)."""
        self._sock.serve_forever(poll_interval=0.05)

    def stop_listening_async(self) -> None:
        """Stop accepting from a side thread (safe inside a handler)."""
        threading.Thread(target=self._stop_listening, daemon=True).start()

    def _stop_listening(self) -> None:
        if self._stopped.is_set():
            self._closed.wait()
            return
        self._stopped.set()
        self._sock.shutdown()
        self._sock.server_close()
        if self.unix_path is not None and os.path.exists(self.unix_path):
            os.unlink(self.unix_path)
        self._closed.set()

    def wait_closed(self, timeout: float | None = None) -> bool:
        """Block until the listening socket is actually closed.

        ``serve_forever`` can return before the side thread reaches
        ``server_close`` — callers that need the port released (tests,
        restart-in-place) wait on this instead of joining the serve
        thread.
        """
        return self._closed.wait(timeout)

    def stop(self, drain_timeout: float | None = 30.0) -> bool:
        """Drain the server, then stop listening. Returns drain cleanness."""
        clean = True
        if not self.server.closed:
            clean = self.server.drain(timeout=drain_timeout)
        self._stop_listening()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        return clean

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class ServeClient:
    """A blocking line-protocol client.

    *address* is a ``(host, port)`` tuple (TCP) or a string (unix socket
    path) — exactly what :attr:`ServeDaemon.address` reports. One request
    is in flight at a time per client (calls are serialised by a lock);
    open several clients for concurrency.
    """

    def __init__(self, address, *, timeout: float | None = 60.0) -> None:
        if isinstance(address, str):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            address = tuple(address)
        self._sock.settimeout(timeout)
        self._sock.connect(address)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._next_id = 0

    def call(self, op: str, **fields) -> dict:
        """Send one request, wait for its response object."""
        with self._lock:
            self._next_id += 1
            msg = dict(fields, op=op, id=self._next_id)
            self._file.write(protocol.encode(msg).encode("utf-8"))
            self._file.flush()
            raw = self._file.readline()
            if not raw:
                raise ConnectionError("server closed the connection")
            return protocol.decode(raw.decode("utf-8"))

    def require(self, op: str, **fields) -> dict:
        """Like :meth:`call` but raises :class:`ServeError` on failure."""
        resp = self.call(op, **fields)
        if not resp.get("ok", False):
            err = resp.get("error", {})
            raise ServeError(
                err.get("code", "internal"), err.get("message", "unknown error")
            )
        return resp

    # Thin op wrappers used by tests, the CLI, and the bench.
    def ping(self) -> dict:
        return self.require("ping")

    def prepare(self, name: str, query: str, **fields) -> dict:
        return self.require("prepare", name=name, query=query, **fields)

    def query(self, prepared: str | None = None, **fields) -> dict:
        if prepared is not None:
            fields["prepared"] = prepared
        return self.require("query", **fields)

    def begin(self, session: str | None = None) -> dict:
        fields = {} if session is None else {"session": session}
        return self.require("begin", **fields)

    def insert(self, session: str, relation: str, row, p: float) -> dict:
        return self.require(
            "insert", session=session, relation=relation, row=list(row), p=p
        )

    def set_prob(self, session: str, relation: str, row, p: float) -> dict:
        return self.require(
            "set_prob", session=session, relation=relation, row=list(row), p=p
        )

    def delete(self, session: str, relation: str, row) -> dict:
        return self.require(
            "delete", session=session, relation=relation, row=list(row)
        )

    def commit(self, session: str) -> dict:
        return self.require("commit", session=session)

    def rollback(self, session: str) -> dict:
        return self.require("rollback", session=session)

    def stats(self) -> dict:
        return self.require("stats")

    def shutdown(self, timeout: float = 30.0) -> dict:
        return self.require("shutdown", timeout=timeout)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
