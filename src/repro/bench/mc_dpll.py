"""Sampling + DPLL-cache micro-benchmark; writes ``BENCH_mc_dpll.json``.

Measures the two perf levers of the vectorized evaluation layer on the
Figure 5 workload (Section 6.1 generator, ``r_f = 0.01, r_d = 1``):

* **Batched Monte-Carlo** — scalar vs vectorized ``naive_monte_carlo``,
  ``karp_luby`` (per-answer lineages) and ``mc_query_probability`` (whole
  query), with samples/sec and speedups, cross-checked against the exact
  DPLL answer.
* **Shared DPLL cache** — full-lineage evaluation of the multi-answer
  Table 1 queries through one :class:`~repro.perf.SubformulaCache`,
  reporting hit/miss/eviction counters and agreement with partial-lineage
  evaluation.

Run ``PYTHONPATH=src python -m repro.bench.mc_dpll --help`` (or
``repro bench``); CI runs it at reduced sample counts and uploads the JSON
as an artifact, so the numbers form a trajectory across PRs.
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.bench.harness import run_full_lineage, run_partial_lineage
from repro.bench.reporting import (
    acceptance_exit_code,
    bench_environment,
    write_bench_report,
)
from repro.lineage.dnf import answer_lineages
from repro.lineage.exact import dnf_probability
from repro.obs.metrics import MetricsRegistry
from repro.lineage.sampling import karp_luby, naive_monte_carlo
from repro.mc.engine import mc_query_probability
from repro.perf.cache import SubformulaCache
from repro.workload.generator import WorkloadParams, generate_database
from repro.workload.queries import TABLE1_QUERIES

#: Agreement tolerance between MC estimates and the exact answer at the
#: reference 50k samples; :func:`mc_tolerance` widens it as ``1/√samples``
#: for reduced smoke runs (Karp-Luby's error is relative to the clause-weight
#: total, which dominates the band).
MC_TOLERANCE = 0.05
_REFERENCE_SAMPLES = 50_000


def mc_tolerance(samples: int) -> float:
    """Absolute agreement band for *samples* Monte-Carlo draws."""
    return MC_TOLERANCE * (_REFERENCE_SAMPLES / samples) ** 0.5


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _estimator_comparison(
    estimator,
    dnfs: dict,
    probs: dict,
    exact: dict,
    samples: int,
    seed: int,
) -> dict:
    """Time one estimator both ways over every answer lineage."""
    scalar_s, scalar_est = _timed(lambda: {
        a: estimator(f, probs, samples, random.Random(seed), method="scalar")
        for a, f in dnfs.items()
    })
    vec_s, vec_est = _timed(lambda: {
        a: estimator(f, probs, samples, random.Random(seed), method="vectorized")
        for a, f in dnfs.items()
    })
    drawn = samples * len(dnfs)
    return {
        "samples": samples,
        "answers": len(dnfs),
        "scalar_seconds": scalar_s,
        "vectorized_seconds": vec_s,
        "speedup": scalar_s / vec_s if vec_s > 0 else 0.0,
        "scalar_samples_per_sec": drawn / scalar_s if scalar_s > 0 else 0.0,
        "vectorized_samples_per_sec": drawn / vec_s if vec_s > 0 else 0.0,
        "scalar_max_abs_error": max(
            abs(scalar_est[a] - exact[a]) for a in dnfs
        ),
        "vectorized_max_abs_error": max(
            abs(vec_est[a] - exact[a]) for a in dnfs
        ),
    }


def run_benchmark(
    *,
    samples: int = 50_000,
    n: int = 2,
    m: int = 60,
    seed: int = 7,
    mc_query: str = "P1",
    cache_queries: tuple[str, ...] = ("P1", "P2", "S2"),
    max_calls: int = 2_000_000,
) -> dict:
    """Run the full micro-benchmark and return the JSON payload."""
    params = WorkloadParams(N=n, m=m, fanout=4, r_f=0.01, r_d=1.0, seed=seed)
    db = generate_database(params)
    bench = TABLE1_QUERIES[mc_query]
    dnfs, probs = answer_lineages(bench.query, db)
    exact = {a: dnf_probability(f, probs) for a, f in dnfs.items()}

    sampling = {
        "karp_luby": _estimator_comparison(
            karp_luby, dnfs, probs, exact, samples, seed
        ),
        "naive_monte_carlo": _estimator_comparison(
            naive_monte_carlo, dnfs, probs, exact, samples, seed
        ),
    }

    # Whole-query MC: the Boolean view of the same Table 1 query.
    boolean_exact = 1.0
    for p_answer in exact.values():
        boolean_exact *= 1.0 - p_answer
    boolean_exact = 1.0 - boolean_exact  # per-answer lineages are disjoint in h
    scalar_s, scalar_est = _timed(lambda: mc_query_probability(
        bench.query, db, samples, random.Random(seed), method="scalar"
    ))
    vec_s, vec_est = _timed(lambda: mc_query_probability(
        bench.query, db, samples, random.Random(seed), method="vectorized"
    ))
    sampling["mc_query_probability"] = {
        "query": mc_query,
        "samples": samples,
        "scalar_seconds": scalar_s,
        "vectorized_seconds": vec_s,
        "speedup": scalar_s / vec_s if vec_s > 0 else 0.0,
        "scalar_samples_per_sec": samples / scalar_s if scalar_s > 0 else 0.0,
        "vectorized_samples_per_sec": samples / vec_s if vec_s > 0 else 0.0,
        "scalar_estimate": scalar_est,
        "vectorized_estimate": vec_est,
        "exact": boolean_exact,
        "scalar_abs_error": abs(scalar_est - boolean_exact),
        "vectorized_abs_error": abs(vec_est - boolean_exact),
    }

    # Shared DPLL cache over the multi-answer Table 1 queries.
    cache = SubformulaCache()
    per_query = {}
    for name in cache_queries:
        before_hits = cache.stats.hits
        before_misses = cache.stats.misses
        fl = run_full_lineage(db, TABLE1_QUERIES[name], max_calls, cache=cache)
        pl = run_partial_lineage(db, TABLE1_QUERIES[name], max_calls)
        agree = (
            not fl.timed_out
            and not pl.timed_out
            and set(fl.answers) == set(pl.answers)
            and all(
                abs(fl.answers[a] - pl.answers[a]) <= 1e-6 for a in fl.answers
            )
        )
        per_query[name] = {
            "answers": len(fl.answers),
            "seconds": fl.seconds,
            "dpll_calls": fl.dpll_calls,
            "cache_hits": cache.stats.hits - before_hits,
            "cache_misses": cache.stats.misses - before_misses,
            "agrees_with_partial_lineage": agree,
        }
    cache_section = {
        "queries": per_query,
        "totals": cache.stats.as_dict(),
        "entries": len(cache),
    }

    kl = sampling["karp_luby"]
    mcq = sampling["mc_query_probability"]
    tolerance = mc_tolerance(samples)
    acceptance = {
        "karp_luby_speedup_at_least_10x": kl["speedup"] >= 10.0,
        "mc_query_probability_speedup_at_least_10x": mcq["speedup"] >= 10.0,
        "dpll_cache_hit_rate_nonzero": cache.stats.hit_rate > 0.0,
        "tolerance": tolerance,
        "methods_agree_within_tolerance": (
            kl["vectorized_max_abs_error"] <= tolerance
            and kl["scalar_max_abs_error"] <= tolerance
            and mcq["vectorized_abs_error"] <= tolerance
            and mcq["scalar_abs_error"] <= tolerance
            and all(q["agrees_with_partial_lineage"] for q in per_query.values())
        ),
    }

    return {
        "benchmark": "mc_dpll",
        "workload": {
            "figure": "fig5",
            "N": n,
            "m": m,
            "fanout": 4,
            "r_f": 0.01,
            "r_d": 1.0,
            "seed": seed,
            "mc_query": mc_query,
            "cache_queries": list(cache_queries),
        },
        "environment": bench_environment(),
        "sampling": sampling,
        "dpll_cache": cache_section,
        "acceptance": acceptance,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.mc_dpll",
        description="Scalar-vs-vectorized sampling and shared-DPLL-cache "
                    "micro-benchmark on the Fig. 5 workload.",
    )
    parser.add_argument("--out", default="BENCH_mc_dpll.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--samples", type=int, default=50_000,
                        help="Monte-Carlo samples per estimator "
                             "(default: %(default)s)")
    parser.add_argument("--n", type=int, default=2,
                        help="workload N, number of head values")
    parser.add_argument("--m", type=int, default=60,
                        help="workload m, per-head relation size")
    parser.add_argument("--seed", type=int, default=7,
                        help="generator + sampler seed; every estimator is "
                             "seeded from it, never from an unseeded RNG")
    parser.add_argument("--query", default="P1",
                        choices=sorted(TABLE1_QUERIES),
                        help="Table 1 query for the sampling comparison")
    args = parser.parse_args(argv)
    if args.samples <= 0:
        parser.error("--samples must be positive")

    payload = run_benchmark(
        samples=args.samples, n=args.n, m=args.m, seed=args.seed,
        mc_query=args.query,
    )
    registry = MetricsRegistry()
    for name, section in payload["sampling"].items():
        registry.absorb(f"sampling.{name}", section)
    registry.absorb("dpll_cache", payload["dpll_cache"]["totals"])
    path = write_bench_report(args.out, payload, registry)
    kl = payload["sampling"]["karp_luby"]
    mcq = payload["sampling"]["mc_query_probability"]
    totals = payload["dpll_cache"]["totals"]
    print(f"karp_luby:            {kl['speedup']:.1f}x "
          f"({kl['scalar_seconds']:.2f}s -> {kl['vectorized_seconds']:.3f}s, "
          f"{kl['vectorized_samples_per_sec']:.0f} samples/s)")
    print(f"mc_query_probability: {mcq['speedup']:.1f}x "
          f"({mcq['scalar_seconds']:.2f}s -> {mcq['vectorized_seconds']:.3f}s)")
    print(f"dpll cache:           {totals['hits']} hits / "
          f"{totals['misses']} misses (hit rate {totals['hit_rate']:.2%})")
    print(f"acceptance:           {payload['acceptance']}")
    print(f"wrote {path}")
    return acceptance_exit_code(payload["acceptance"])


if __name__ == "__main__":
    sys.exit(main())
