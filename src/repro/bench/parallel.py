"""Component-sliced / process-parallel inference benchmark.

Writes ``BENCH_parallel.json``. Scales Fig. 5-style workloads (Section 6.1
generator, ``r_f = 0.01, r_d = 1``) over instance size ``m``, evaluates the
Table 1 queries once per instance with the partial-lineage evaluator, and
then times three final-inference strategies on each resulting And-Or
network:

* ``serial`` — the pre-slicing oracle: one
  :func:`repro.core.inference.compute_marginal` call per answer, each paying
  its own ancestor walk and width estimation;
* ``sliced`` — :func:`repro.perf.parallel.sliced_marginals`: one union-find
  over the network, one component extraction + early-exit width probe +
  solve per answer component, all in-process;
* ``parallel-w{k}`` — :func:`repro.perf.parallel.parallel_marginals` with a
  ``ProcessPoolExecutor`` of ``k`` workers (the benchmark forces fan-out by
  zeroing the small-workload cost threshold — the point is to measure pool
  scaling, not the escape hatch).

Per point the payload records wall-clocks, speedups relative to serial and
sliced, component counts, and the maximum absolute deviation of every
strategy from the serial oracle.

Acceptance: all strategies agree with the serial oracle to 1e-12 on every
instance, and slicing beats the serial loop on the largest instance
(``--min-sliced-speedup``, default 1.0). The parallel-scaling criterion —
``--parallel-workers`` workers at least ``--min-parallel-speedup`` times
faster than sliced on the largest instance — is only *enforced* when the
host actually has multiple CPUs: process fan-out cannot beat one core on a
single-core machine, so there the payload records the honest numbers plus
``cpu_count`` and marks the check as skipped (same spirit as the columnar
suite's relaxed ``--min-speedup`` in CI smoke runs).

Run ``PYTHONPATH=src python -m repro.bench.parallel --help`` (or
``repro bench --suite parallel``).
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

from repro.bench.reporting import (
    acceptance_exit_code,
    bench_environment,
    write_bench_report,
)
from repro.core.executor import PartialLineageEvaluator
from repro.core.inference import compute_marginals
from repro.obs.metrics import MetricsRegistry
from repro.perf.parallel import (
    group_by_component,
    parallel_marginals,
    sliced_marginals,
)
from repro.workload.generator import WorkloadParams, generate_database
from repro.workload.queries import TABLE1_QUERIES

#: Strategy-agreement tolerance against the serial oracle. Every strategy
#: runs the same exact engines over the same factor decompositions; the only
#: slack is summation order inside the clique-tree vs VE paths.
ANSWER_TOLERANCE = 1e-12

#: Default Table 1 queries to scale — the Fig. 5 plot's query plus the
#: deeper S2 pipeline, matching the columnar suite.
DEFAULT_QUERIES = ("P1", "S2")


def _time_strategies(
    net, nodes, worker_counts, max_calls: int, registry=None
) -> dict:
    """Time serial / sliced / parallel marginals on one network.

    Garbage left over from workload generation and plan evaluation is
    collected before every timed region — a cycle collection landing inside
    a millisecond-scale measurement would otherwise swamp it.
    """
    gc.collect()
    start = time.perf_counter()
    oracle = compute_marginals(net, nodes, dpll_max_calls=max_calls)
    serial_seconds = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    sliced = sliced_marginals(net, nodes, dpll_max_calls=max_calls)
    sliced_seconds = time.perf_counter() - start

    def deviation(marginals) -> float:
        return max((abs(marginals[v] - oracle[v]) for v in nodes), default=0.0)

    out = {
        "answers": len(nodes),
        "network_nodes": len(net),
        "components": len(group_by_component(net, nodes)),
        "serial_seconds": serial_seconds,
        "sliced_seconds": sliced_seconds,
        "sliced_speedup": (
            serial_seconds / sliced_seconds if sliced_seconds > 0 else 0.0
        ),
        "sliced_max_abs_diff": deviation(sliced),
        "parallel": {},
    }
    for workers in worker_counts:
        gc.collect()
        start = time.perf_counter()
        result = parallel_marginals(
            net,
            nodes,
            workers=workers,
            dpll_max_calls=max_calls,
            min_parallel_cost=0.0,  # measure pool scaling, not the escape hatch
            registry=registry,
        )
        seconds = time.perf_counter() - start
        out["parallel"][str(workers)] = {
            "seconds": seconds,
            "speedup_vs_serial": serial_seconds / seconds if seconds > 0 else 0.0,
            "speedup_vs_sliced": sliced_seconds / seconds if seconds > 0 else 0.0,
            "max_abs_diff": deviation(result),
        }
    return out


def run_benchmark(
    *,
    sizes: tuple[int, ...] = (200, 800, 3200),
    n: int = 8,
    seed: int = 7,
    queries: tuple[str, ...] = DEFAULT_QUERIES,
    workers: tuple[int, ...] = (1, 2, 4, 8),
    max_calls: int = 2_000_000,
    registry: MetricsRegistry | None = None,
) -> dict:
    """Scale the Fig. 5 workload over *sizes*; return the JSON payload.

    *registry* optionally collects the pool's scheduling metrics (chunk
    sizes and costs, serial fallbacks) across every timed
    :func:`parallel_marginals` call.
    """
    scaling = []
    for m in sorted(sizes):
        params = WorkloadParams(
            N=n, m=m, fanout=4, r_f=0.01, r_d=1.0, seed=seed
        )
        db = generate_database(params)
        evaluator = PartialLineageEvaluator(db)
        point = {"m": m, "tuples": db.total_tuples(), "queries": {}}
        for name in queries:
            bench = TABLE1_QUERIES[name]
            result = evaluator.evaluate_query(
                bench.query, list(bench.join_order)
            )
            nodes = [l for _, l, _ in result.relation.items()]
            point["queries"][name] = _time_strategies(
                result.network, nodes, workers, max_calls, registry
            )
        qs = point["queries"].values()
        point["serial_seconds"] = sum(q["serial_seconds"] for q in qs)
        point["sliced_seconds"] = sum(q["sliced_seconds"] for q in qs)
        point["sliced_speedup"] = (
            point["serial_seconds"] / point["sliced_seconds"]
            if point["sliced_seconds"] > 0
            else 0.0
        )
        for w in workers:
            total = sum(q["parallel"][str(w)]["seconds"] for q in qs)
            point[f"parallel_w{w}_seconds"] = total
        scaling.append(point)

    largest = scaling[-1]
    all_queries = [q for point in scaling for q in point["queries"].values()]
    deviations = [q["sliced_max_abs_diff"] for q in all_queries] + [
        p["max_abs_diff"]
        for q in all_queries
        for p in q["parallel"].values()
    ]
    acceptance = {
        "tolerance": ANSWER_TOLERANCE,
        "answers_agree_within_tolerance": all(
            d <= ANSWER_TOLERANCE for d in deviations
        ),
        "max_abs_diff": max(deviations, default=0.0),
        "largest_instance_sliced_speedup": largest["sliced_speedup"],
    }
    return {
        "benchmark": "parallel",
        "workload": {
            "figure": "fig5",
            "N": n,
            "fanout": 4,
            "r_f": 0.01,
            "r_d": 1.0,
            "seed": seed,
            "sizes": sorted(sizes),
            "queries": list(queries),
            "workers": list(workers),
        },
        "environment": bench_environment(),
        "scaling": scaling,
        "acceptance": acceptance,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.parallel",
        description="Serial vs component-sliced vs process-parallel final "
                    "inference on Fig. 5 workloads.",
    )
    parser.add_argument("--out", default="BENCH_parallel.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[200, 800, 3200],
                        help="instance sizes m (default: %(default)s)")
    parser.add_argument("--n", type=int, default=8,
                        help="workload N, number of head values (one network "
                             "component each; default %(default)s)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload generator seed")
    parser.add_argument("--queries", nargs="+", default=list(DEFAULT_QUERIES),
                        choices=sorted(TABLE1_QUERIES),
                        help="Table 1 queries to scale (default: %(default)s)")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8],
                        help="process-pool sizes to sweep (default: %(default)s)")
    parser.add_argument("--min-sliced-speedup", type=float, default=1.0,
                        help="acceptance: sliced-over-serial speedup required "
                             "on the largest instance (default: %(default)s)")
    parser.add_argument("--min-parallel-speedup", type=float, default=2.0,
                        help="acceptance: speedup of --parallel-workers "
                             "workers over sliced on the largest instance; "
                             "0 disables, and multi-CPU hosts are required "
                             "for the check to be enforced (default: %(default)s)")
    parser.add_argument("--parallel-workers", type=int, default=4,
                        help="worker count the parallel acceptance criterion "
                             "applies to (default: %(default)s)")
    args = parser.parse_args(argv)
    if any(m <= 0 for m in args.sizes):
        parser.error("--sizes must be positive")
    if any(w <= 0 for w in args.workers):
        parser.error("--workers must be positive")
    if args.min_sliced_speedup <= 0:
        parser.error("--min-sliced-speedup must be positive")
    if args.min_parallel_speedup < 0:
        parser.error("--min-parallel-speedup must be non-negative")
    if args.parallel_workers not in args.workers:
        parser.error("--parallel-workers must be one of --workers")

    registry = MetricsRegistry()
    payload = run_benchmark(
        sizes=tuple(args.sizes), n=args.n, seed=args.seed,
        queries=tuple(args.queries), workers=tuple(args.workers),
        registry=registry,
    )
    acceptance = payload["acceptance"]
    acceptance["min_sliced_speedup"] = args.min_sliced_speedup
    acceptance["sliced_at_least_min"] = (
        acceptance["largest_instance_sliced_speedup"]
        >= args.min_sliced_speedup
    )
    largest = payload["scaling"][-1]
    sliced_total = largest["sliced_seconds"]
    parallel_total = largest[f"parallel_w{args.parallel_workers}_seconds"]
    parallel_speedup = (
        sliced_total / parallel_total if parallel_total > 0 else 0.0
    )
    cpu_count = payload["environment"]["cpu_count"]
    enforced = args.min_parallel_speedup > 0 and cpu_count >= 2
    acceptance["min_parallel_speedup"] = args.min_parallel_speedup
    acceptance["parallel_workers"] = args.parallel_workers
    acceptance["largest_instance_parallel_speedup"] = parallel_speedup
    acceptance["parallel_scaling_enforced"] = enforced
    if enforced:
        acceptance["parallel_at_least_min"] = (
            parallel_speedup >= args.min_parallel_speedup
        )
    else:
        acceptance["parallel_at_least_min"] = True  # vacuous; see next key
        acceptance["parallel_skipped_reason"] = (
            "check disabled by --min-parallel-speedup 0"
            if args.min_parallel_speedup <= 0
            else f"host has {cpu_count} CPU(s); process fan-out cannot "
                 f"beat one core"
        )
    path = write_bench_report(args.out, payload, registry)
    for point in payload["scaling"]:
        parallel = " ".join(
            f"w{w}={point[f'parallel_w{w}_seconds']:.3f}s"
            for w in payload["workload"]["workers"]
        )
        print(f"m={point['m']:>6} ({point['tuples']} tuples): "
              f"serial {point['serial_seconds']:.3f}s, "
              f"sliced {point['sliced_seconds']:.3f}s "
              f"({point['sliced_speedup']:.2f}x), {parallel}")
    print(f"acceptance:           {acceptance}")
    print(f"wrote {path}")
    # parallel_scaling_enforced is a descriptor, not a pass/fail check
    return acceptance_exit_code(
        acceptance, ignore=("parallel_scaling_enforced",)
    )


if __name__ == "__main__":
    sys.exit(main())
