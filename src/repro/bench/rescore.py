"""Compile-once / re-score-many benchmark: batch circuit vs scalar OBDD.

Writes ``BENCH_rescore.json``. One Table 1 query is evaluated once with the
partial-lineage evaluator (circuit cache attached), and then every symbolic
answer is re-scored under a batch of random what-if scenarios — each
scenario overriding every offending tuple's probability — two ways:

* ``scalar`` — the oracle: one :meth:`~repro.core.whatif.WhatIfAnalysis
  .probability` call per scenario, i.e. one override-dict construction plus
  one OBDD walk each;
* ``batch`` — the served path: one :class:`~repro.circuit.ScenarioBatch`
  matrix pushed through the answer's compiled arithmetic circuit in a
  single vectorized bottom-up sweep
  (:meth:`~repro.core.whatif.WhatIfAnalysis.probability_batch`).

Both evaluate the same multilinear lineage polynomial, so the batch column
must match the scalar oracle to float rounding on every scenario — the
speedup is pure evaluation strategy, not approximation. The batch sweep is
timed in steady state (one warm-up call, then the mean of ``--repeats``
sweeps): compile cost is reported separately per answer, and the first
call's buffer page faults belong to neither strategy.

The suite then repeats the *identical* evaluation against the same cache to
measure the warm path: every answer circuit must come back as a structural
cache hit with zero recompiles (compile-once), which is what makes the
amortised batch throughput honest.

Acceptance: batch results agree with the scalar oracle to ``--tolerance``
(default 1e-12) on every answer and scenario; the overall batch-over-scalar
speedup is at least ``--min-speedup`` (default 50) at ``--batch`` scenarios
(default 1000); and the warm pass performs zero recompiles.

Run ``PYTHONPATH=src python -m repro.bench.rescore --help`` (or
``repro bench --suite rescore``).
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

import numpy as np

from repro.bench.reporting import (
    acceptance_exit_code,
    bench_environment,
    write_bench_report,
)
from repro.circuit import CircuitCache, ScenarioBatch
from repro.core.executor import PartialLineageEvaluator
from repro.core.network import EPSILON
from repro.core.whatif import WhatIfAnalysis
from repro.obs.metrics import MetricsRegistry
from repro.workload.generator import WorkloadParams, generate_database
from repro.workload.queries import TABLE1_QUERIES

#: Batch-vs-scalar agreement tolerance. Both paths evaluate the same exact
#: multilinear polynomial; the only slack is float summation order.
ANSWER_TOLERANCE = 1e-12


def _timed(fn, repeats: int = 1):
    """Run *fn* after a GC sweep; return ``(result, per-call seconds)``.

    With *repeats* > 1 the call is repeated and the mean per-call time
    returned — steady-state throughput, once the allocator has the batch
    buffers warm (the first call pays page faults both paths amortise)."""
    gc.collect()
    start = time.perf_counter()
    for _ in range(repeats):
        result = fn()
    return result, (time.perf_counter() - start) / repeats


def run_benchmark(
    *,
    n: int = 2,
    m: int = 60,
    seed: int = 7,
    query: str = "P1",
    batch: int = 1000,
    repeats: int = 5,
    fanout: int = 3,
    r_f: float = 0.1,
    r_d: float = 1.0,
    registry: MetricsRegistry | None = None,
) -> dict:
    """Benchmark one Table 1 query on a Section 6.1 workload instance.

    Returns the JSON payload: per-answer scalar/batch wall-clocks,
    throughputs and deviations under ``"answers"``, warm-pass provenance
    under ``"warm"``, and the pass/fail-relevant aggregates under
    ``"acceptance"`` (speedup thresholds are stamped in by :func:`main`).
    """
    params = WorkloadParams(N=n, m=m, fanout=fanout, r_f=r_f, r_d=r_d,
                            seed=seed)
    db = generate_database(params)
    cache = CircuitCache()
    evaluator = PartialLineageEvaluator(db, circuit_cache=cache)
    bench = TABLE1_QUERIES[query]

    result, evaluate_seconds = _timed(
        lambda: evaluator.evaluate_query(bench.query, list(bench.join_order))
    )
    analysis = WhatIfAnalysis(result, circuit_cache=cache)
    offending = list(result.conditioned_tuples)
    variables = tuple(analysis.variable_for(off) for off in offending)

    # One scenario matrix shared by both paths: every scenario overrides
    # every offending tuple. The scalar oracle gets the same numbers as
    # per-scenario override dicts (its native interface).
    rng = np.random.default_rng(seed)
    matrix = rng.random((batch, len(variables)))
    scenarios = ScenarioBatch(variables, matrix)
    override_maps = [
        {off: float(matrix[j, i]) for i, off in enumerate(offending)}
        for j in range(batch)
    ]

    answers = []
    total_scalar = total_batch = 0.0
    worst_diff = 0.0
    for row, l, _p in result.relation.items():
        if l == EPSILON:
            continue  # constant lineage: nothing to re-score
        circuit = analysis.circuit_for(row)
        analysis.probability_batch(row, scenarios)  # warm the batch buffers
        batch_values, batch_seconds = _timed(
            lambda row=row: analysis.probability_batch(row, scenarios),
            repeats=repeats,
        )
        scalar_values, scalar_seconds = _timed(
            lambda row=row: np.array(
                [analysis.probability(row, ov) for ov in override_maps]
            )
        )
        diff = float(np.max(np.abs(batch_values - scalar_values)))
        worst_diff = max(worst_diff, diff)
        total_scalar += scalar_seconds
        total_batch += batch_seconds
        answers.append({
            "answer": str(row),
            "circuit_nodes": len(circuit),
            "circuit_source": analysis.circuit_sources[l],
            "compile_seconds": analysis.compile_seconds[l],
            "scalar_seconds": scalar_seconds,
            "batch_seconds": batch_seconds,
            "scalar_scenarios_per_second": (
                batch / scalar_seconds if scalar_seconds > 0 else 0.0
            ),
            "batch_scenarios_per_second": (
                batch / batch_seconds if batch_seconds > 0 else 0.0
            ),
            "speedup": (
                scalar_seconds / batch_seconds if batch_seconds > 0 else 0.0
            ),
            "max_abs_diff": diff,
        })

    # Warm pass: the identical query against the same cache. Every circuit
    # must come back as a structural hit — compile-once means the second
    # evaluation pays rebind cost only, and the recompile counter stays 0.
    warm_result, warm_evaluate_seconds = _timed(
        lambda: evaluator.evaluate_query(bench.query, list(bench.join_order))
    )
    warm_analysis = WhatIfAnalysis(warm_result, circuit_cache=cache)
    for row, l, _p in warm_result.relation.items():
        if l != EPSILON:
            warm_analysis.circuit_for(row)
    warm_sources = sorted(set(warm_analysis.circuit_sources.values()))

    if registry is not None:
        registry.absorb("circuit.cache", cache)
        for point in answers:
            registry.observe("bench.rescore.speedup", point["speedup"])

    speedup = total_scalar / total_batch if total_batch > 0 else 0.0
    acceptance = {
        "tolerance": ANSWER_TOLERANCE,
        "batch_matches_oracle": worst_diff <= ANSWER_TOLERANCE,
        "max_abs_diff": worst_diff,
        "speedup": speedup,
        "warm_recompiles": cache.recompiles,
        "warm_cache_no_recompiles": cache.recompiles == 0,
        "warm_all_cache_hits": warm_sources in ([], ["cache"]),
    }
    return {
        "benchmark": "rescore",
        "workload": {
            "figure": "table1",
            "N": n,
            "m": m,
            "fanout": fanout,
            "r_f": r_f,
            "r_d": r_d,
            "seed": seed,
            "query": query,
            "batch": batch,
            "repeats": repeats,
            "tuples": db.total_tuples(),
            "offending_tuples": len(offending),
        },
        "environment": bench_environment(),
        "evaluate_seconds": evaluate_seconds,
        "warm_evaluate_seconds": warm_evaluate_seconds,
        "answers": answers,
        "totals": {
            "symbolic_answers": len(answers),
            "scalar_seconds": total_scalar,
            "batch_seconds": total_batch,
            "scalar_scenarios_per_second": (
                len(answers) * batch / total_scalar if total_scalar > 0
                else 0.0
            ),
            "batch_scenarios_per_second": (
                len(answers) * batch / total_batch if total_batch > 0 else 0.0
            ),
            "speedup": speedup,
        },
        "warm": {
            "circuit_sources": warm_sources,
            "cache": cache.as_dict(),
        },
        "acceptance": acceptance,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.rescore",
        description="Scalar per-scenario OBDD walks vs vectorized circuit "
                    "batch re-scoring on a Table 1 workload.",
    )
    parser.add_argument("--out", default="BENCH_rescore.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--n", type=int, default=2,
                        help="workload N, number of head values "
                             "(default: %(default)s)")
    parser.add_argument("--m", type=int, default=60,
                        help="instance size (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload generator and scenario seed")
    parser.add_argument("--query", default="P1",
                        choices=sorted(TABLE1_QUERIES),
                        help="Table 1 query (default: %(default)s)")
    parser.add_argument("--batch", type=int, default=1000,
                        help="scenarios per batch (default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed batch sweeps to average (steady state; "
                             "default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=50.0,
                        help="acceptance: batch-over-scalar speedup required "
                             "across all symbolic answers "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)
    if args.m <= 0 or args.n <= 0:
        parser.error("--n and --m must be positive")
    if args.batch <= 0 or args.repeats <= 0:
        parser.error("--batch and --repeats must be positive")
    if args.min_speedup <= 0:
        parser.error("--min-speedup must be positive")

    registry = MetricsRegistry()
    payload = run_benchmark(
        n=args.n, m=args.m, seed=args.seed, query=args.query,
        batch=args.batch, repeats=args.repeats, registry=registry,
    )
    acceptance = payload["acceptance"]
    acceptance["min_speedup"] = args.min_speedup
    acceptance["speedup_at_least_min"] = (
        acceptance["speedup"] >= args.min_speedup
    )
    path = write_bench_report(args.out, payload, registry)
    totals = payload["totals"]
    for point in payload["answers"]:
        print(f"answer {point['answer']}: "
              f"{point['circuit_nodes']} nodes ({point['circuit_source']}), "
              f"scalar {point['scalar_seconds']:.3f}s, "
              f"batch {point['batch_seconds']:.4f}s "
              f"({point['speedup']:.1f}x, "
              f"{point['batch_scenarios_per_second']:,.0f} scenarios/s)")
    print(f"total: scalar {totals['scalar_seconds']:.3f}s, "
          f"batch {totals['batch_seconds']:.4f}s "
          f"({totals['speedup']:.1f}x), "
          f"warm recompiles {acceptance['warm_recompiles']}")
    print(f"acceptance:           {acceptance}")
    print(f"wrote {path}")
    return acceptance_exit_code(acceptance)


if __name__ == "__main__":
    sys.exit(main())
