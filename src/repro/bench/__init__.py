"""Benchmark harness: timed evaluation of the competing methods.

``harness`` wraps each evaluation strategy — partial lineage (this paper),
full lineage + exact DPLL (the MayBMS-style competitor), lifted inference
(safe queries only), and sampling — in a uniform timed interface; it is the
engine behind every ``benchmarks/test_fig*.py``. ``reporting`` renders the
rows/series the paper's tables and figures show.
"""

from repro.bench.harness import (
    MethodResult,
    run_full_lineage,
    run_partial_lineage,
    run_partial_lineage_sqlite,
    run_sampling,
)
from repro.bench.reporting import format_table, write_json_report

__all__ = [
    "MethodResult",
    "run_partial_lineage",
    "run_partial_lineage_sqlite",
    "run_full_lineage",
    "run_sampling",
    "format_table",
    "write_json_report",
]
