"""Bench-trajectory regression sentinel over the committed ``BENCH_*.json``.

The suite reports each carry one or two *headline* metrics — scale-free
speedup ratios (or rates) that stay comparable across machines of
different absolute speed (an 8x columnar speedup means the same thing on a
laptop and in CI, unlike raw seconds). :data:`EXTRACTORS` names them per
suite:

========== ==============================================================
suite      headline metrics (path into the report payload)
========== ==============================================================
columnar   ``acceptance.largest_instance_speedup``
parallel   ``acceptance.largest_instance_sliced_speedup``
rescore    ``acceptance.speedup``
dissoc     ``acceptance.largest_instance_speedup``
mc_dpll    ``sampling.karp_luby.speedup``,
           ``sampling.mc_query_probability.speedup``
serve      ``acceptance.sustained_qps``
========== ==============================================================

:func:`main` (behind ``python -m repro.bench.trajectory`` and the CI
``telemetry-smoke`` job) reads every ``BENCH_<suite>.json`` next to the
history file, compares each headline metric against the last recorded point
in ``BENCH_trajectory.json``, and exits nonzero when any metric fell by more
than ``--tolerance`` (a fraction: 0.25 means a drop below 75% of the
baseline fails). ``--update`` appends the current points to the history —
keyed by ``run_sequence`` and ``git_sha``, never wall-clock time, so the
file stays deterministic and diff-friendly. Fresh CI runs on unknown
hardware pass a relaxed tolerance; the committed history is only advanced
deliberately, with ``--update`` on a benchmarking host.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass

from repro.bench.reporting import format_table, write_json_report

__all__ = [
    "EXTRACTORS",
    "TRAJECTORY_SCHEMA_VERSION",
    "Regression",
    "check_trajectory",
    "extract_headline",
    "load_history",
    "read_current_points",
    "update_history",
    "main",
]

TRAJECTORY_SCHEMA_VERSION = 1

#: suite name -> {metric name -> key path into the suite's report payload}.
EXTRACTORS: dict[str, dict[str, tuple[str, ...]]] = {
    "columnar": {
        "largest_instance_speedup": ("acceptance", "largest_instance_speedup"),
    },
    "parallel": {
        "largest_instance_sliced_speedup": (
            "acceptance", "largest_instance_sliced_speedup",
        ),
    },
    "rescore": {
        "speedup": ("acceptance", "speedup"),
    },
    "dissoc": {
        "largest_instance_speedup": ("acceptance", "largest_instance_speedup"),
    },
    "mc_dpll": {
        "karp_luby_speedup": ("sampling", "karp_luby", "speedup"),
        "mc_query_probability_speedup": (
            "sampling", "mc_query_probability", "speedup",
        ),
    },
    "serve": {
        "sustained_qps": ("acceptance", "sustained_qps"),
    },
}


@dataclass(frozen=True)
class Regression:
    """One headline metric that fell below its tolerance band."""

    suite: str
    metric: str
    baseline: float
    current: float
    tolerance: float

    @property
    def ratio(self) -> float:
        """current / baseline (0 when the baseline is 0)."""
        return self.current / self.baseline if self.baseline else 0.0

    def describe(self) -> str:
        return (
            f"{self.suite}.{self.metric}: {self.current:.4g} is "
            f"{self.ratio:.0%} of baseline {self.baseline:.4g} "
            f"(floor {1.0 - self.tolerance:.0%})"
        )

    def as_dict(self) -> dict:
        return {
            "suite": self.suite,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": self.ratio,
            "tolerance": self.tolerance,
        }


def extract_headline(suite: str, payload: dict) -> dict[str, float]:
    """The suite's headline metrics present in *payload*.

    Missing paths are skipped rather than raised — a partially-written or
    older-schema report simply contributes fewer points.

    Examples
    --------
    >>> extract_headline("rescore", {"acceptance": {"speedup": 64.25}})
    {'speedup': 64.25}
    >>> extract_headline("rescore", {"acceptance": {}})
    {}
    """
    metrics: dict[str, float] = {}
    for name, path in EXTRACTORS.get(suite, {}).items():
        node: object = payload
        for key in path:
            if not isinstance(node, dict) or key not in node:
                node = None
                break
            node = node[key]
        if isinstance(node, (int, float)) and not isinstance(node, bool):
            metrics[name] = float(node)
    return metrics


def read_current_points(bench_dir: str | pathlib.Path) -> dict[str, dict]:
    """Read every ``BENCH_<suite>.json`` under *bench_dir* known to EXTRACTORS.

    Returns ``{suite: {"metrics": {...}, "run_sequence": int,
    "git_sha": str | None}}`` for each suite whose report exists and yields
    at least one headline metric.
    """
    bench_dir = pathlib.Path(bench_dir)
    points: dict[str, dict] = {}
    for suite in EXTRACTORS:
        path = bench_dir / f"BENCH_{suite}.json"
        if not path.exists():
            continue
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            continue
        metrics = extract_headline(suite, payload)
        if not metrics:
            continue
        points[suite] = {
            "metrics": metrics,
            "run_sequence": int(payload.get("run_sequence", 0)),
            "git_sha": (payload.get("environment") or {}).get("git_sha"),
        }
    return points


def load_history(path: str | pathlib.Path) -> dict:
    """Load ``BENCH_trajectory.json``, or an empty history if absent."""
    path = pathlib.Path(path)
    if not path.exists():
        return {"schema_version": TRAJECTORY_SCHEMA_VERSION, "suites": {}}
    history = json.loads(path.read_text())
    history.setdefault("schema_version", TRAJECTORY_SCHEMA_VERSION)
    history.setdefault("suites", {})
    return history


def check_trajectory(
    history: dict, points: dict[str, dict], *, tolerance: float
) -> list[Regression]:
    """Compare *points* against the last recorded history entry per suite.

    A metric regresses when ``current < baseline * (1 - tolerance)``.
    Suites or metrics without history are new — recorded, never failed.

    Examples
    --------
    >>> history = {"suites": {"rescore": [
    ...     {"run_sequence": 1, "metrics": {"speedup": 60.0}}]}}
    >>> check_trajectory(
    ...     history, {"rescore": {"metrics": {"speedup": 58.0}}},
    ...     tolerance=0.25)
    []
    >>> [r.describe() for r in check_trajectory(
    ...     history, {"rescore": {"metrics": {"speedup": 30.0}}},
    ...     tolerance=0.25)]
    ['rescore.speedup: 30 is 50% of baseline 60 (floor 75%)']
    """
    regressions: list[Regression] = []
    for suite, point in sorted(points.items()):
        entries = history.get("suites", {}).get(suite) or []
        if not entries:
            continue
        baseline = entries[-1].get("metrics", {})
        for metric, current in sorted(point["metrics"].items()):
            if metric not in baseline:
                continue
            floor = baseline[metric] * (1.0 - tolerance)
            if current < floor:
                regressions.append(Regression(
                    suite=suite, metric=metric,
                    baseline=baseline[metric], current=current,
                    tolerance=tolerance,
                ))
    return regressions


def update_history(history: dict, points: dict[str, dict]) -> bool:
    """Append each suite's current point to *history*; True if anything new.

    A point identical to the suite's last entry (same metrics, sequence and
    sha) is skipped, so re-running ``--update`` without re-benchmarking
    leaves the file byte-identical.
    """
    changed = False
    suites = history.setdefault("suites", {})
    for suite, point in sorted(points.items()):
        entries = suites.setdefault(suite, [])
        entry = {
            "run_sequence": point.get("run_sequence", 0),
            "git_sha": point.get("git_sha"),
            "metrics": dict(sorted(point["metrics"].items())),
        }
        if entries and entries[-1] == entry:
            continue
        entries.append(entry)
        changed = True
    return changed


def _format_report(
    points: dict[str, dict], history: dict, regressions: list[Regression]
) -> str:
    rows = []
    flagged = {(r.suite, r.metric) for r in regressions}
    for suite, point in sorted(points.items()):
        entries = history.get("suites", {}).get(suite) or []
        baseline = entries[-1].get("metrics", {}) if entries else {}
        for metric, current in sorted(point["metrics"].items()):
            base = baseline.get(metric)
            rows.append((
                suite, metric, current,
                "-" if base is None else base,
                "-" if not base else f"{current / base:.0%}",
                "REGRESSED" if (suite, metric) in flagged
                else ("new" if base is None else "ok"),
            ))
    return format_table(
        ("suite", "metric", "current", "baseline", "ratio", "status"),
        rows, title="bench trajectory",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-trajectory", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--bench-dir", default=".",
        help="directory holding the BENCH_*.json reports (default: .)",
    )
    parser.add_argument(
        "--history", default=None,
        help="trajectory history file "
             "(default: <bench-dir>/BENCH_trajectory.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional drop below the baseline before failing "
             "(default: 0.25; CI smoke runs on unknown hardware pass a "
             "relaxed value)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="append the current points to the history file",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the report as JSON instead of a text table",
    )
    args = parser.parse_args(argv)

    bench_dir = pathlib.Path(args.bench_dir)
    history_path = (
        pathlib.Path(args.history) if args.history
        else bench_dir / "BENCH_trajectory.json"
    )
    points = read_current_points(bench_dir)
    if not points:
        print(f"no BENCH_*.json reports found under {bench_dir}",
              file=sys.stderr)
        return 2
    history = load_history(history_path)
    regressions = check_trajectory(history, points, tolerance=args.tolerance)
    report_text = _format_report(points, history, regressions)
    if args.update:
        if update_history(history, points):
            write_json_report(history_path, history)
    if args.as_json:
        print(json.dumps({
            "history": str(history_path),
            "tolerance": args.tolerance,
            "points": points,
            "regressions": [r.as_dict() for r in regressions],
            "ok": not regressions,
        }, indent=2, sort_keys=True))
    else:
        print(report_text)
        for regression in regressions:
            print(f"REGRESSION: {regression.describe()}", file=sys.stderr)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
