"""Bounds-first top-k vs exact-all-answers benchmark; writes ``BENCH_dissoc.json``.

Scales a *ranked* variant of the Section 6.1 workload over instance size
``m`` and answers the question the dissociation subsystem exists for: how
much wall-clock does certifying the top-k ranking from extensional-speed
enclosures save over running exact inference on every answer?

The ranked workload splices two generator runs per head (heads are
independent components of the Table 1 queries, so per-head splicing is
sound): the bottom ``N - k`` heads come from a high-``r_f`` instance and
carry the fan-out hardness, the top ``k`` heads from a low-``r_f``
instance. Per-head tuple probabilities are then damped log-linearly by
rank (``spread ** (1 - h/(N-1))``) so the answer probabilities separate.
Damping is purely multiplicative — it never turns an uncertain tuple
deterministic, so the hard heads stay hard. This is the regime ranked
retrieval actually lives in: the expensive lineage sits in low-ranked
answers the user never sees, and the bounds-first certifier skips exactly
those.

Both pipelines are timed end to end on fresh evaluators:

* **exact-all** — plan evaluation, then exact inference on every answer,
  then sort and cut to k.
* **bounds-first** — plan evaluation, then dissociation enclosures for
  every answer (:class:`~repro.dissociation.DissociationEvaluator`), then
  :func:`~repro.dissociation.certified_top_k`, which spends exact
  inference only on answers whose interval overlaps the k-th decision
  boundary.

Acceptance: at every size the certified top-k matches the exact-all top-k
as a *sequence* (same answers, same order), every enclosure contains the
exact probability to 1e-9, and the largest instance's speedup is at least
``--min-speedup`` (5x by default; CI's smoke run relaxes this to 1x at
reduced sizes — the committed full-size BENCH_dissoc.json asserts the
real bar).

Run ``PYTHONPATH=src python -m repro.bench.dissoc --help`` (or
``repro bench --suite dissoc``).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from repro.bench.reporting import (
    acceptance_exit_code,
    bench_environment,
    write_bench_report,
)
from repro.core.executor import PartialLineageEvaluator
from repro.core.plan import left_deep_plan
from repro.db import ProbabilisticDatabase
from repro.dissociation import DissociationEvaluator, certified_top_k
from repro.obs.metrics import MetricsRegistry
from repro.workload.generator import WorkloadParams, generate_database
from repro.workload.queries import TABLE1_QUERIES

#: Enclosure tolerance against exact answer probabilities. The bounds are
#: closed-form folds; the only slack is float round-off between the
#: vectorized fold and the DPLL-side accumulation.
ENCLOSURE_TOLERANCE = 1e-9

#: The Fig. 5 plot's query — one join pair per head, the shape the
#: dissociation rewrite targets.
DEFAULT_QUERY = "P1"


def ranked_database(
    params: WorkloadParams,
    k: int,
    easy_rf: float,
    spread: float,
) -> ProbabilisticDatabase:
    """The ranked workload: hard low-ranked heads, separated probabilities.

    Generates the Section 6.1 database twice — once with ``params.r_f``
    (the hard instance) and once with *easy_rf* — and splices them per
    head: heads below ``N - k`` keep the hard rows, the top ``k`` heads
    take the easy rows. Every relation leads with ``H`` and the Table 1
    queries join per head, so each head is an independent component and
    the splice preserves both instances' per-head lineage exactly.

    Tuple probabilities are then damped by ``spread ** (1 - h/(N-1))`` so
    head ``N-1`` keeps its probabilities and head 0 is damped by the full
    *spread*; deterministic tuples (``p == 1``) are left alone so the
    damping never changes which tuples are uncertain.
    """
    hard = generate_database(params)
    easy = generate_database(replace(params, r_f=easy_rf))
    cut = params.N - k
    out = ProbabilisticDatabase()
    for rel in hard:
        attrs = rel.schema.attributes
        hi = attrs.index("H")
        rows: dict[tuple, float] = {}
        for source in (hard[rel.name], easy[rel.name]):
            for row, p in source.items():
                h = row[hi]
                if (h < cut) != (source is hard[rel.name]):
                    continue
                scale = spread ** (1.0 - h / (params.N - 1))
                rows[row] = min(1.0, p * scale) if p < 1.0 else p
        out.add_relation(rel.name, attrs, rows)
    return out


def _run_point(db, bench, k: int, max_calls: int) -> dict:
    """Time both pipelines on one instance; cross-check their rankings."""
    plan = left_deep_plan(bench.query, list(bench.join_order))

    # Exact-all: evaluate, infer every answer, sort, cut to k.
    start = time.perf_counter()
    result = PartialLineageEvaluator(db, engine="columnar").evaluate(plan)
    eval_seconds = time.perf_counter() - start
    start = time.perf_counter()
    exact = result.answer_probabilities(dpll_max_calls=max_calls)
    inference_seconds = time.perf_counter() - start
    exact_topk = sorted(exact.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
    exact_seconds = eval_seconds + inference_seconds

    # Bounds-first: fresh evaluator, enclosures, certify, refine the rest.
    start = time.perf_counter()
    result = PartialLineageEvaluator(db, engine="columnar").evaluate(plan)
    bf_eval_seconds = time.perf_counter() - start
    bounds = DissociationEvaluator(db, engine="columnar").evaluate(plan)
    cert = certified_top_k(result, bounds, k, dpll_max_calls=max_calls)
    bounds_first_seconds = (
        bf_eval_seconds + bounds.seconds + cert.bounds_seconds
        + cert.refine_seconds
    )

    topk_match = (
        [a.row for a in cert.answers] == [row for row, _ in exact_topk]
    )
    sound = all(
        bounds.interval(row).contains(p, ENCLOSURE_TOLERANCE)
        for row, p in exact.items()
    )
    widths = [bounds.interval(row).width for row in exact]
    return {
        "answers": len(exact),
        "exact": {
            "eval_seconds": eval_seconds,
            "inference_seconds": inference_seconds,
            "total_seconds": exact_seconds,
        },
        "bounds_first": {
            "eval_seconds": bf_eval_seconds,
            "bounds_seconds": bounds.seconds,
            "certify_seconds": cert.bounds_seconds,
            "refine_seconds": cert.refine_seconds,
            "total_seconds": bounds_first_seconds,
            "refined": cert.refined,
            "certified_out": cert.certified_out,
            "threshold": cert.threshold,
            "dissociated": bounds.dissociated,
        },
        "speedup": (
            exact_seconds / bounds_first_seconds
            if bounds_first_seconds > 0
            else 0.0
        ),
        "topk_match": topk_match,
        "sound_enclosure": sound,
        "max_width": max(widths, default=0.0),
        "mean_width": sum(widths) / len(widths) if widths else 0.0,
    }


def run_benchmark(
    *,
    sizes: tuple[int, ...] = (200, 800, 3200),
    n: int = 64,
    k: int = 10,
    seed: int = 7,
    hard_rf: float = 0.15,
    easy_rf: float = 0.02,
    spread: float = 1e-6,
    query: str = DEFAULT_QUERY,
    max_calls: int = 50_000_000,
) -> dict:
    """Scale the ranked workload over *sizes*; return the JSON payload."""
    bench = TABLE1_QUERIES[query]
    scaling = []
    for m in sorted(sizes):
        params = WorkloadParams(
            N=n, m=m, fanout=4, r_f=hard_rf, r_d=1.0, seed=seed
        )
        db = ranked_database(params, k, easy_rf, spread)
        point = {"m": m, "tuples": db.total_tuples()}
        point.update(_run_point(db, bench, k, max_calls))
        scaling.append(point)

    largest = scaling[-1]
    acceptance = {
        "tolerance": ENCLOSURE_TOLERANCE,
        "topk_matches_exact": all(p["topk_match"] for p in scaling),
        "sound_enclosures": all(p["sound_enclosure"] for p in scaling),
        "largest_instance_speedup": largest["speedup"],
    }
    return {
        "benchmark": "dissoc",
        "workload": {
            "figure": "ranked-topk",
            "N": n,
            "k": k,
            "fanout": 4,
            "hard_r_f": hard_rf,
            "easy_r_f": easy_rf,
            "r_d": 1.0,
            "spread": spread,
            "seed": seed,
            "sizes": sorted(sizes),
            "query": query,
        },
        "environment": bench_environment(),
        "scaling": scaling,
        "acceptance": acceptance,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.dissoc",
        description="Bounds-first top-k certification vs exact-all-answers "
                    "inference on the ranked workload.",
    )
    parser.add_argument("--out", default="BENCH_dissoc.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[200, 800, 3200],
                        help="instance sizes m (default: %(default)s)")
    parser.add_argument("--n", type=int, default=64,
                        help="workload N, number of head values")
    parser.add_argument("--k", type=int, default=10,
                        help="top-k cutoff to certify")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload generator seed")
    parser.add_argument("--hard-rf", type=float, default=0.15,
                        help="r_f of the bottom N-k heads")
    parser.add_argument("--easy-rf", type=float, default=0.02,
                        help="r_f of the top k heads")
    parser.add_argument("--spread", type=float, default=1e-6,
                        help="probability damping across the head ranking")
    parser.add_argument("--query", default=DEFAULT_QUERY,
                        choices=sorted(TABLE1_QUERIES),
                        help="Table 1 query to scale (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required bounds-first-over-exact speedup on "
                             "the largest instance (default: %(default)s)")
    args = parser.parse_args(argv)
    if any(m <= 0 for m in args.sizes):
        parser.error("--sizes must be positive")
    if args.k <= 0 or args.k >= args.n:
        parser.error("--k must lie in [1, n)")
    if args.min_speedup <= 0:
        parser.error("--min-speedup must be positive")

    payload = run_benchmark(
        sizes=tuple(args.sizes), n=args.n, k=args.k, seed=args.seed,
        hard_rf=args.hard_rf, easy_rf=args.easy_rf, spread=args.spread,
        query=args.query,
    )
    payload["acceptance"]["min_speedup"] = args.min_speedup
    payload["acceptance"]["speedup_at_least_min"] = (
        payload["acceptance"]["largest_instance_speedup"] >= args.min_speedup
    )
    registry = MetricsRegistry()
    for point in payload["scaling"]:
        registry.observe("dissoc.speedup", point["speedup"])
        registry.observe("dissoc.max_width", point["max_width"])
        registry.observe(
            "dissoc.refined", point["bounds_first"]["refined"]
        )
    registry.gauge(
        "dissoc.largest_speedup",
        payload["acceptance"]["largest_instance_speedup"],
    )
    path = write_bench_report(args.out, payload, registry)
    for point in payload["scaling"]:
        bf = point["bounds_first"]
        print(f"m={point['m']:>6} ({point['tuples']} tuples): "
              f"exact-all {point['exact']['total_seconds']:.3f}s, "
              f"bounds-first {bf['total_seconds']:.3f}s "
              f"(refined {bf['refined']}/{point['answers']}) "
              f"-> {point['speedup']:.1f}x")
    print(f"acceptance:           {payload['acceptance']}")
    print(f"wrote {path}")
    return acceptance_exit_code(payload["acceptance"])


if __name__ == "__main__":
    sys.exit(main())
