"""Columnar-vs-rows operator engine benchmark; writes ``BENCH_columnar.json``.

Scales Fig. 5-style workloads (Section 6.1 generator, ``r_f = 0.01,
r_d = 1``) over instance size ``m`` and runs the same Table 1 queries through
:class:`~repro.core.executor.PartialLineageEvaluator` twice — once with the
row-at-a-time reference engine, once with the vectorized columnar engine —
timing plan evaluation separately from final inference. Both engines grow the
same And-Or network by construction, so the bench also cross-checks that
their answers agree to 1e-12 and their per-operator offending counts match.

Each engine is timed twice through one evaluator: ``cold_eval_seconds`` is
the first evaluation (for the columnar engine this includes dictionary-
encoding every base relation), ``eval_seconds`` the second, where the
evaluator's base-encode cache is warm — the regime of any repeated use of
one evaluator, e.g. the optimizer costing many join orders over one
database. The warm number is the headline: it isolates the operator
pipeline the columnar backend vectorizes from the one-time ingest cost.

Per size and query the payload records, for each engine, both wall-clocks,
throughput (tuples flowing through all operators per second), offending
counts, network size, and a per-operator breakdown
``{operator, output_size, conditioned, seconds}`` taken straight from
:class:`~repro.core.executor.OperatorStat`.

Acceptance: answers agree to 1e-12, offending counts and network sizes
match everywhere, and the columnar engine is at least ``--min-speedup``
times faster than rows on the largest instance (10x by default; CI's smoke
run relaxes this to 1x at reduced sizes).

Run ``PYTHONPATH=src python -m repro.bench.columnar --help`` (or
``repro bench --suite columnar``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.reporting import (
    acceptance_exit_code,
    bench_environment,
    write_bench_report,
)
from repro.core.executor import PartialLineageEvaluator
from repro.obs.metrics import MetricsRegistry
from repro.workload.generator import WorkloadParams, generate_database
from repro.workload.queries import TABLE1_QUERIES

#: Answer-agreement tolerance between the two engines. They build identical
#: networks node for node, so the only slack is float round-off in the
#: probability column (log-space vs sequential 1-Π(1-p) accumulation).
ANSWER_TOLERANCE = 1e-12

#: Default Table 1 queries to scale. P1 is the Fig. 5 plot's query; S2 adds
#: a deeper join pipeline with a different offending profile.
DEFAULT_QUERIES = ("P1", "S2")


def _run_engine(db, bench, engine: str, max_calls: int) -> dict:
    """Evaluate *bench* with one engine; time the pipeline and inference.

    Two evaluations through one evaluator: the first (cold) pays the
    columnar engine's base-relation encode, the second (warm) hits its
    cache. Both produce identical results — every evaluation grows a fresh
    network.
    """
    evaluator = PartialLineageEvaluator(db, engine=engine)
    start = time.perf_counter()
    evaluator.evaluate_query(bench.query, list(bench.join_order))
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    result = evaluator.evaluate_query(bench.query, list(bench.join_order))
    eval_seconds = time.perf_counter() - start
    start = time.perf_counter()
    answers = result.answer_probabilities(dpll_max_calls=max_calls)
    inference_seconds = time.perf_counter() - start
    tuples = sum(s.output_size for s in result.stats)
    return {
        "cold_eval_seconds": cold_seconds,
        "eval_seconds": eval_seconds,
        "inference_seconds": inference_seconds,
        "tuples_through_operators": tuples,
        "tuples_per_sec": tuples / eval_seconds if eval_seconds > 0 else 0.0,
        "offending": result.offending_count,
        "network_nodes": len(result.network),
        "answers": len(answers),
        "operators": [
            {
                "operator": s.operator,
                "output_size": s.output_size,
                "conditioned": s.conditioned,
                "seconds": s.seconds,
            }
            for s in result.stats
        ],
        "_answer_probs": answers,  # stripped before serialisation
    }


def _compare_engines(db, bench, max_calls: int) -> dict:
    rows = _run_engine(db, bench, "rows", max_calls)
    col = _run_engine(db, bench, "columnar", max_calls)
    ra, ca = rows.pop("_answer_probs"), col.pop("_answer_probs")
    max_diff = (
        max((abs(ra[a] - ca[a]) for a in ra), default=0.0)
        if set(ra) == set(ca)
        else float("inf")
    )
    return {
        "rows": rows,
        "columnar": col,
        "eval_speedup": (
            rows["eval_seconds"] / col["eval_seconds"]
            if col["eval_seconds"] > 0
            else 0.0
        ),
        "max_abs_answer_diff": max_diff,
        "offending_match": rows["offending"] == col["offending"],
        "network_match": rows["network_nodes"] == col["network_nodes"],
    }


def run_benchmark(
    *,
    sizes: tuple[int, ...] = (200, 800, 3200),
    n: int = 2,
    seed: int = 7,
    queries: tuple[str, ...] = DEFAULT_QUERIES,
    max_calls: int = 2_000_000,
) -> dict:
    """Scale the Fig. 5 workload over *sizes*; return the JSON payload."""
    scaling = []
    for m in sorted(sizes):
        params = WorkloadParams(
            N=n, m=m, fanout=4, r_f=0.01, r_d=1.0, seed=seed
        )
        db = generate_database(params)
        point = {
            "m": m,
            "tuples": db.total_tuples(),
            "queries": {
                name: _compare_engines(db, TABLE1_QUERIES[name], max_calls)
                for name in queries
            },
        }
        qs = point["queries"].values()
        rows_total = sum(q["rows"]["eval_seconds"] for q in qs)
        col_total = sum(q["columnar"]["eval_seconds"] for q in qs)
        point["rows_eval_seconds"] = rows_total
        point["columnar_eval_seconds"] = col_total
        point["eval_speedup"] = (
            rows_total / col_total if col_total > 0 else 0.0
        )
        rows_cold = sum(q["rows"]["cold_eval_seconds"] for q in qs)
        col_cold = sum(q["columnar"]["cold_eval_seconds"] for q in qs)
        point["cold_eval_speedup"] = (
            rows_cold / col_cold if col_cold > 0 else 0.0
        )
        scaling.append(point)

    largest = scaling[-1]
    all_queries = [q for point in scaling for q in point["queries"].values()]
    acceptance = {
        "tolerance": ANSWER_TOLERANCE,
        "answers_agree_within_tolerance": all(
            q["max_abs_answer_diff"] <= ANSWER_TOLERANCE for q in all_queries
        ),
        "offending_counts_match": all(
            q["offending_match"] for q in all_queries
        ),
        "network_sizes_match": all(q["network_match"] for q in all_queries),
        "largest_instance_speedup": largest["eval_speedup"],
    }
    return {
        "benchmark": "columnar",
        "workload": {
            "figure": "fig5",
            "N": n,
            "fanout": 4,
            "r_f": 0.01,
            "r_d": 1.0,
            "seed": seed,
            "sizes": sorted(sizes),
            "queries": list(queries),
        },
        "environment": bench_environment(),
        "scaling": scaling,
        "acceptance": acceptance,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.columnar",
        description="Row-vs-columnar operator engine benchmark scaling "
                    "Fig. 5 workloads over instance size.",
    )
    parser.add_argument("--out", default="BENCH_columnar.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[200, 800, 3200],
                        help="instance sizes m (default: %(default)s)")
    parser.add_argument("--n", type=int, default=2,
                        help="workload N, number of head values")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload generator seed")
    parser.add_argument("--queries", nargs="+", default=list(DEFAULT_QUERIES),
                        choices=sorted(TABLE1_QUERIES),
                        help="Table 1 queries to scale (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="required columnar-over-rows speedup on the "
                             "largest instance (default: %(default)s)")
    args = parser.parse_args(argv)
    if any(m <= 0 for m in args.sizes):
        parser.error("--sizes must be positive")
    if args.min_speedup <= 0:
        parser.error("--min-speedup must be positive")

    payload = run_benchmark(
        sizes=tuple(args.sizes), n=args.n, seed=args.seed,
        queries=tuple(args.queries),
    )
    payload["acceptance"]["min_speedup"] = args.min_speedup
    payload["acceptance"]["speedup_at_least_min"] = (
        payload["acceptance"]["largest_instance_speedup"] >= args.min_speedup
    )
    registry = MetricsRegistry()
    for point in payload["scaling"]:
        registry.observe("columnar.eval_speedup", point["eval_speedup"])
        registry.observe("columnar.tuples", point["tuples"])
    registry.gauge(
        "columnar.largest_eval_speedup",
        payload["acceptance"]["largest_instance_speedup"],
    )
    path = write_bench_report(args.out, payload, registry)
    for point in payload["scaling"]:
        print(f"m={point['m']:>6} ({point['tuples']} tuples): "
              f"rows {point['rows_eval_seconds']:.3f}s, "
              f"columnar {point['columnar_eval_seconds']:.3f}s "
              f"-> {point['eval_speedup']:.1f}x")
    print(f"acceptance:           {payload['acceptance']}")
    print(f"wrote {path}")
    return acceptance_exit_code(payload["acceptance"])


if __name__ == "__main__":
    sys.exit(main())
