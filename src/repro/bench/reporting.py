"""Plain-text and JSON rendering of benchmark rows and series.

The benchmark scripts print, for every figure of the paper, the same series
the figure plots (method × parameter → seconds), as aligned text tables that
land in ``bench_output.txt``. Machine-readable trajectories (per-method work
counters: samples/sec, cache hit-rates, speedups) are written as JSON via
:func:`write_json_report` so successive PRs can be compared mechanically.
"""

from __future__ import annotations

import json
import pathlib
from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table.

    Examples
    --------
    >>> print(format_table(("a", "b"), [(1, 2.5), (10, 0.125)], title="t"))
    t
    a   b
    --  -----
    1   2.5
    10  0.125
    """
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    *,
    width: int = 56,
    log: bool = True,
    title: str = "",
    unit: str = "s",
) -> str:
    """Render labelled (x, y) series as horizontal ASCII bars, one row per x.

    With ``log`` the bar length is proportional to the y value's position on
    a log scale between the smallest and largest positive y across all
    series — the right reading for the paper's log-scale time plots.

    Examples
    --------
    >>> print(ascii_chart({"a": [(0, 0.001), (1, 0.1)]}, width=10, title="t"))
    t
    a x=0 ▏ 1.000e-03s
    a x=1 ██████████▏ 0.1s
    """
    import math

    positives = [
        y for points in series.values() for _, y in points if y > 0
    ]
    if not positives:
        return title
    lo, hi = min(positives), max(positives)

    def bar(y: float) -> int:
        if y <= 0:
            return 0
        if hi == lo:
            return width
        if log:
            return round(width * (math.log(y) - math.log(lo)) /
                         (math.log(hi) - math.log(lo)))
        return round(width * (y - lo) / (hi - lo))

    label_width = max(len(name) for name in series)
    x_width = max(
        len(_fmt(x)) for points in series.values() for x, _ in points
    )
    lines = [title] if title else []
    for name, points in series.items():
        for x, y in points:
            lines.append(
                f"{name.ljust(label_width)} x={_fmt(x).ljust(x_width)} "
                f"{'█' * bar(y)}▏ {_fmt(y)}{unit}"
            )
    return "\n".join(lines)


def write_json_report(path: str | pathlib.Path, payload: dict) -> pathlib.Path:
    """Write a benchmark payload as stable, diff-friendly JSON.

    Keys are sorted and floats pass through ``json`` untouched, so reruns
    with identical numbers produce byte-identical files — the property the
    ``BENCH_*.json`` trajectory files rely on.

    Examples
    --------
    >>> import tempfile, os
    >>> target = os.path.join(tempfile.mkdtemp(), "BENCH_demo.json")
    >>> p = write_json_report(target, {"b": 1, "a": {"speedup": 12.5}})
    >>> print(p.read_text(), end="")
    {
      "a": {
        "speedup": 12.5
      },
      "b": 1
    }
    """
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 0.01:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)
