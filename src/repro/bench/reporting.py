"""Plain-text and JSON rendering of benchmark rows and series.

The benchmark scripts print, for every figure of the paper, the same series
the figure plots (method × parameter → seconds), as aligned text tables that
land in ``bench_output.txt``. Machine-readable trajectories (per-method work
counters: samples/sec, cache hit-rates, speedups) are written as JSON via
:func:`write_json_report` so successive PRs can be compared mechanically.

The three suite runners share their report plumbing here instead of each
carrying its own copy: :func:`bench_environment` is the one environment
stamp (Python/NumPy versions, CPU count, git SHA), :func:`write_bench_report`
folds it plus an optional :class:`~repro.obs.metrics.MetricsRegistry`
snapshot into every ``BENCH_*.json``, and :func:`acceptance_exit_code` turns
an acceptance dict into the process exit code.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table.

    Examples
    --------
    >>> print(format_table(("a", "b"), [(1, 2.5), (10, 0.125)], title="t"))
    t
    a   b
    --  -----
    1   2.5
    10  0.125
    """
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    *,
    width: int = 56,
    log: bool = True,
    title: str = "",
    unit: str = "s",
) -> str:
    """Render labelled (x, y) series as horizontal ASCII bars, one row per x.

    With ``log`` the bar length is proportional to the y value's position on
    a log scale between the smallest and largest positive y across all
    series — the right reading for the paper's log-scale time plots.

    Examples
    --------
    >>> print(ascii_chart({"a": [(0, 0.001), (1, 0.1)]}, width=10, title="t"))
    t
    a x=0 ▏ 1.000e-03s
    a x=1 ██████████▏ 0.1s
    """
    import math

    positives = [
        y for points in series.values() for _, y in points if y > 0
    ]
    if not positives:
        return title
    lo, hi = min(positives), max(positives)

    def bar(y: float) -> int:
        if y <= 0:
            return 0
        if hi == lo:
            return width
        if log:
            return round(width * (math.log(y) - math.log(lo)) /
                         (math.log(hi) - math.log(lo)))
        return round(width * (y - lo) / (hi - lo))

    label_width = max(len(name) for name in series)
    x_width = max(
        len(_fmt(x)) for points in series.values() for x, _ in points
    )
    lines = [title] if title else []
    for name, points in series.items():
        for x, y in points:
            lines.append(
                f"{name.ljust(label_width)} x={_fmt(x).ljust(x_width)} "
                f"{'█' * bar(y)}▏ {_fmt(y)}{unit}"
            )
    return "\n".join(lines)


def write_json_report(path: str | pathlib.Path, payload: dict) -> pathlib.Path:
    """Write a benchmark payload as stable, diff-friendly JSON.

    Keys are sorted and floats pass through ``json`` untouched, so reruns
    with identical numbers produce byte-identical files — the property the
    ``BENCH_*.json`` trajectory files rely on.

    Examples
    --------
    >>> import tempfile, os
    >>> target = os.path.join(tempfile.mkdtemp(), "BENCH_demo.json")
    >>> p = write_json_report(target, {"b": 1, "a": {"speedup": 12.5}})
    >>> print(p.read_text(), end="")
    {
      "a": {
        "speedup": 12.5
      },
      "b": 1
    }
    """
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def git_sha() -> str | None:
    """HEAD commit of the repository containing this package, or ``None``.

    Benchmarks embed it so a ``BENCH_*.json`` trajectory point can always be
    traced back to the code that produced it. Outside a git checkout (or
    without a ``git`` binary) the stamp is simply absent.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def bench_environment() -> dict:
    """The environment stamp every benchmark payload carries.

    Examples
    --------
    >>> env = bench_environment()
    >>> sorted(k for k in env if k != "git_sha")
    ['cpu_count', 'numpy', 'python']
    """
    import numpy as np

    env = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
    }
    sha = git_sha()
    if sha is not None:
        env["git_sha"] = sha
    return env


#: Version of the ``BENCH_*.json`` report shape. Version 2 adds the
#: ``schema_version`` / ``run_sequence`` stamps themselves — the fields the
#: trajectory sentinel (:mod:`repro.bench.trajectory`) needs to order and
#: compare reports across PRs. Reports without them are treated as version 1.
BENCH_SCHEMA_VERSION = 2


def next_run_sequence(path: str | pathlib.Path) -> int:
    """The monotonically-increasing run sequence for a report at *path*.

    Reads the previous report (if any) and returns its ``run_sequence + 1``,
    so successive runs writing to the same committed file are totally
    ordered even when wall clocks or git SHAs are unavailable. A missing or
    unreadable previous report (or a pre-versioning one) starts at 1.
    """
    path = pathlib.Path(path)
    try:
        previous = json.loads(path.read_text())
        return int(previous.get("run_sequence", 0)) + 1
    except (OSError, ValueError, TypeError):
        return 1


def write_bench_report(
    path: str | pathlib.Path, payload: dict, registry=None
) -> pathlib.Path:
    """Stamp and write one benchmark payload.

    Fills ``payload["environment"]`` with :func:`bench_environment` (keys the
    runner already set win), stamps ``schema_version``
    (:data:`BENCH_SCHEMA_VERSION`) and the monotone ``run_sequence``
    (:func:`next_run_sequence`), and, when a
    :class:`~repro.obs.metrics.MetricsRegistry` is passed, embeds its
    snapshot as ``payload["metrics"]``; then writes via
    :func:`write_json_report`.
    """
    payload = dict(payload)
    environment = dict(payload.get("environment") or {})
    for key, value in bench_environment().items():
        environment.setdefault(key, value)
    payload["environment"] = environment
    payload.setdefault("schema_version", BENCH_SCHEMA_VERSION)
    payload.setdefault("run_sequence", next_run_sequence(path))
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    return write_json_report(path, payload)


def acceptance_exit_code(
    acceptance: dict, ignore: Iterable[str] = ()
) -> int:
    """Exit code from an acceptance dict: 0 iff every boolean check passed.

    Non-boolean entries (tolerances, measured values) are descriptors, not
    checks; *ignore* names boolean entries that are descriptors too (e.g.
    the parallel suite's ``parallel_scaling_enforced``).

    Examples
    --------
    >>> acceptance_exit_code({"ok": True, "tolerance": 1e-12})
    0
    >>> acceptance_exit_code({"ok": False, "tolerance": 1e-12})
    1
    >>> acceptance_exit_code({"ok": True, "enforced": False},
    ...                      ignore=("enforced",))
    0
    """
    ignored = set(ignore)
    checks = [
        value
        for key, value in acceptance.items()
        if isinstance(value, bool) and key not in ignored
    ]
    return 0 if all(checks) else 1


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 0.01:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)
