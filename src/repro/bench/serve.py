"""Query-service soak benchmark; writes ``BENCH_serve.json``.

Replays a concurrent workload against an in-process
:class:`~repro.serve.Server` and measures what the serving layer promises:
sustained throughput and tail latency *while faults are being injected*,
with every served answer either bit-identical to a serial oracle (exact
mode) or a sound enclosure of it (degraded modes), and every failure an
explicit protocol rejection — degraded or rejected, never wrong.

Two phases:

**read-chaos** — ``--requests`` read-only queries from ``--clients``
client threads over prepared Table 1 statements, with a chaos mix woven
in: worker-crash fault plans through the resilient pool (retried, then
degraded), near-zero deadlines (admission-rejected), tiny deadlines that
expire mid-pipeline (degrade to dissociation bounds in ``auto`` mode), and
plain exact requests. The database never moves, so one serial oracle per
statement checks every response.

**txn-churn** — a writer thread toggles one tuple's probability between
two values (commit per toggle) while reader threads run exact queries
concurrently. Snapshot isolation makes a stronger check possible: every
reader's answer set must be bit-identical to the oracle of *one* of the
two committed states — a torn read (mixing states) matches neither and
counts as wrong.

The whole run happens under a fresh flight recorder; the ``serve`` records
drive the latency percentiles, the :data:`~repro.obs.SERVE_SLO_TARGETS`
report, and a schema validation. Acceptance: zero wrong answers in both
phases, only known rejection codes, a valid flight log, a passing SLO
report, and a clean drain.

Run ``PYTHONPATH=src python -m repro.bench.serve --help`` (or
``repro bench --suite serve``).
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

from repro.bench.reporting import (
    acceptance_exit_code,
    bench_environment,
    write_bench_report,
)
from repro.core.executor import PartialLineageEvaluator
from repro.core.plan import left_deep_plan
from repro.obs import telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SERVE_SLO_TARGETS, registry_from_records, evaluate_slos
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.serve import AdmissionPolicy, Server, protocol
from repro.workload.generator import WorkloadParams, generate_database
from repro.workload.queries import benchmark_query

#: Enclosure tolerance for degraded answers against the serial oracle.
ENCLOSURE_TOLERANCE = 1e-9

#: Statements the replay exercises (hierarchical + non-hierarchical mix).
STATEMENTS = ("P1", "P2")

#: Rejection codes that count as explicit backpressure, not failures.
EXPECTED_REJECTIONS = frozenset(
    {"rejected_overload", "rejected_deadline", "timeout", "budget_exceeded"}
)


def serial_oracle(db, name: str) -> dict:
    """Exact per-answer probabilities from a fresh single-threaded run."""
    bench = benchmark_query(name)
    plan = left_deep_plan(bench.query, list(bench.join_order))
    result = PartialLineageEvaluator(db, engine="columnar").evaluate(plan)
    return result.answer_probabilities()


def check_payload(payload: dict, oracle: dict) -> bool:
    """True iff *payload* is exact-correct or a sound enclosure of *oracle*."""
    got = {tuple(a["row"]): a for a in payload["answers"]}
    if set(got) != set(oracle):
        return False
    for row, truth in oracle.items():
        a = got[row]
        if a["exact"] and payload["mode"] == "exact":
            if a["probability"] != truth:
                return False
        elif not (
            a["lower"] - ENCLOSURE_TOLERANCE
            <= truth
            <= a["upper"] + ENCLOSURE_TOLERANCE
        ):
            return False
    return True


def _chaos_kind(i: int) -> str:
    """The request mix: mostly plain, every Nth a specific chaos flavour."""
    if i % 7 == 3:
        return "crash"        # worker-crash fault plan through the pool
    if i % 11 == 5:
        return "zero_deadline"  # rejected at admission, never dispatched
    if i % 13 == 7:
        return "tiny_deadline"  # expires mid-flight; auto degrades soundly
    return "plain"


def run_read_chaos(
    server: Server, oracles: dict, requests: int, clients: int
) -> dict:
    """Phase 1: concurrent read-only replay with injected faults."""
    counts = {
        "ok": 0, "rejected": 0, "wrong": 0, "degraded": 0,
        "unexpected_errors": 0,
    }
    lock = threading.Lock()
    crash_plan = FaultPlan((FaultSpec("crash", chunk=0),))

    def one(i: int) -> None:
        name = STATEMENTS[i % len(STATEMENTS)]
        kind = _chaos_kind(i)
        kwargs: dict = {"mode": "auto", "deadline": 30.0}
        if kind == "crash":
            kwargs = {
                "mode": "degrade", "deadline": 30.0,
                "fault_plan": crash_plan, "pool_workers": 2,
            }
        elif kind == "zero_deadline":
            kwargs = {"mode": "auto", "deadline": 0.0}
        elif kind == "tiny_deadline":
            kwargs = {"mode": "auto", "deadline": 0.002}
        try:
            payload = server.query(name, **kwargs)
        except Exception as exc:
            code = protocol.code_for_exception(exc)
            with lock:
                counts["rejected" if code in EXPECTED_REJECTIONS else
                       "unexpected_errors"] += 1
            return
        good = check_payload(payload, oracles[name])
        with lock:
            counts["ok"] += 1
            if payload["mode"] != "exact":
                counts["degraded"] += 1
            if not good:
                counts["wrong"] += 1

    start = time.perf_counter()
    indexes = iter(range(requests))
    ilock = threading.Lock()

    def pump() -> None:
        while True:
            with ilock:
                i = next(indexes, None)
            if i is None:
                return
            one(i)

    threads = [
        threading.Thread(target=pump, name=f"bench-client-{c}")
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - start
    counts.update(
        requests=requests, seconds=seconds,
        qps=counts["ok"] / seconds if seconds > 0 else 0.0,
    )
    return counts


def run_txn_churn(
    server: Server, oracle_a: dict, oracle_b: dict,
    row: tuple, p_a: float, p_b: float,
    commits: int, readers: int, statement: str,
) -> dict:
    """Phase 2: exact readers racing a committing writer.

    Every reader response must bit-match the oracle of exactly one
    committed state; anything else is a torn (wrong) read.
    """
    counts = {"reads": 0, "wrong": 0, "commits": 0, "rollbacks": 0}
    lock = threading.Lock()

    def writer() -> None:
        flip = False
        for i in range(commits):
            sid = server.begin()["session"]
            target = p_b if not flip else p_a
            server.set_prob(sid, "R1", row, target)
            if i % 5 == 4:
                # Churn the rollback path too: buffered, discarded, free.
                server.rollback(sid)
                with lock:
                    counts["rollbacks"] += 1
                continue
            server.commit(sid)
            flip = not flip
            with lock:
                counts["commits"] += 1

    def reader() -> None:
        # Fixed read count (not a stop flag): a fast writer must not be
        # able to end the phase before any racing read completes.
        for _ in range(max(4, commits)):
            payload = server.query(statement, mode="exact", deadline=30.0)
            got = {
                tuple(a["row"]): a["probability"] for a in payload["answers"]
            }
            consistent = got == oracle_a or got == oracle_b
            with lock:
                counts["reads"] += 1
                if not consistent:
                    counts["wrong"] += 1

    start = time.perf_counter()
    threads = [threading.Thread(target=writer, name="bench-writer")] + [
        threading.Thread(target=reader, name=f"bench-reader-{r}")
        for r in range(readers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - start
    counts.update(
        seconds=seconds,
        qps=counts["reads"] / seconds if seconds > 0 else 0.0,
    )
    return counts


def run_benchmark(
    *,
    n: int = 2,
    m: int = 40,
    seed: int = 0,
    requests: int = 120,
    clients: int = 6,
    commits: int = 20,
    readers: int = 3,
) -> dict:
    """Both phases against one server; returns the JSON payload."""
    params = WorkloadParams(N=n, m=m, seed=seed)
    db = generate_database(params)

    # Pick the toggled tuple and precompute both committed-state oracles.
    row, p_a = next(iter(db["R1"].items()))
    p_b = p_a / 2 if p_a > 0.5 else min(1.0, p_a * 1.5 + 0.1)
    oracles = {name: serial_oracle(db, name) for name in STATEMENTS}
    db_b = generate_database(params)
    db_b["R1"].set_probability(row, p_b)
    churn_statement = STATEMENTS[0]
    oracle_b = serial_oracle(db_b, churn_statement)

    server = Server(
        db,
        policy=AdmissionPolicy(max_queue=16, workers=4),
        default_deadline=30.0,
        seed=seed,
    )
    for name in STATEMENTS:
        bench = benchmark_query(name)
        server.prepare(name, bench.text, join_order=list(bench.join_order))

    with telemetry.flight_recorder(capacity=4 * (requests + 1000)) as recorder:
        read_chaos = run_read_chaos(server, oracles, requests, clients)
        txn_churn = run_txn_churn(
            server, oracles[churn_statement], oracle_b,
            row, p_a, p_b, commits, readers, churn_statement,
        )
        clean = server.drain()
        records = recorder.records

    serve_records = [r for r in records if r.get("kind") == "serve"]
    registry = registry_from_records(serve_records)
    latency = registry.histogram("serve.request.latency_ms")
    slo = evaluate_slos(registry, SERVE_SLO_TARGETS)
    flight_errors = telemetry.validate_flight_records(serve_records)

    total_ok = read_chaos["ok"] + txn_churn["reads"]
    total_seconds = read_chaos["seconds"] + txn_churn["seconds"]
    acceptance = {
        "tolerance": ENCLOSURE_TOLERANCE,
        "zero_wrong_answers": (
            read_chaos["wrong"] == 0 and txn_churn["wrong"] == 0
        ),
        "explicit_rejections_only": read_chaos["unexpected_errors"] == 0,
        "flight_log_valid": not flight_errors,
        "slo_pass": slo.ok,
        "clean_drain": clean,
        "sustained_qps": total_ok / total_seconds if total_seconds else 0.0,
        "p50_ms": latency.percentile(0.50) if latency.count else 0.0,
        "p99_ms": latency.percentile(0.99) if latency.count else 0.0,
    }
    return {
        "benchmark": "serve",
        "workload": {
            "N": n, "m": m, "seed": seed,
            "statements": list(STATEMENTS),
            "requests": requests, "clients": clients,
            "commits": commits, "readers": readers,
        },
        "environment": bench_environment(),
        "read_chaos": read_chaos,
        "txn_churn": txn_churn,
        "slo": slo.as_dict(),
        "flight_errors": flight_errors[:10],
        "serve_records": len(serve_records),
        "acceptance": acceptance,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.serve",
        description="Concurrent replay with injected faults against the "
                    "query service; sustained QPS + tail latency.",
    )
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="output JSON path (default: %(default)s)")
    parser.add_argument("--n", type=int, default=2, help="workload N")
    parser.add_argument("--m", type=int, default=40,
                        help="workload instance size m")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests", type=int, default=120,
                        help="read-chaos phase request count")
    parser.add_argument("--clients", type=int, default=6,
                        help="concurrent client threads")
    parser.add_argument("--commits", type=int, default=20,
                        help="txn-churn phase writer iterations")
    parser.add_argument("--readers", type=int, default=3,
                        help="txn-churn phase reader threads")
    args = parser.parse_args(argv)
    if args.requests <= 0 or args.clients <= 0:
        parser.error("--requests and --clients must be positive")

    payload = run_benchmark(
        n=args.n, m=args.m, seed=args.seed, requests=args.requests,
        clients=args.clients, commits=args.commits, readers=args.readers,
    )
    registry = MetricsRegistry()
    acc = payload["acceptance"]
    registry.gauge("serve.bench.qps", acc["sustained_qps"])
    registry.gauge("serve.bench.p99_ms", acc["p99_ms"])
    registry.gauge("serve.bench.wrong", 0 if acc["zero_wrong_answers"] else 1)
    path = write_bench_report(args.out, payload, registry)
    rc = payload["read_chaos"]
    tc = payload["txn_churn"]
    print(f"read-chaos: {rc['ok']} ok / {rc['rejected']} rejected / "
          f"{rc['degraded']} degraded / {rc['wrong']} wrong "
          f"in {rc['seconds']:.2f}s ({rc['qps']:.1f} qps)")
    print(f"txn-churn:  {tc['reads']} reads / {tc['commits']} commits / "
          f"{tc['rollbacks']} rollbacks / {tc['wrong']} torn "
          f"in {tc['seconds']:.2f}s")
    print(f"latency:    p50 {acc['p50_ms']:.1f}ms  p99 {acc['p99_ms']:.1f}ms  "
          f"sustained {acc['sustained_qps']:.1f} qps")
    print(f"acceptance: {acc}")
    print(f"wrote {path}")
    return acceptance_exit_code(payload["acceptance"])


if __name__ == "__main__":
    sys.exit(main())
