"""Timed evaluation wrappers for the competing methods.

Every wrapper returns a :class:`MethodResult` carrying the per-answer
probabilities, wall-clock seconds, and method-specific work counters, so the
benchmark scripts can both assert agreement between methods and print the
paper-shaped comparison rows.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.core.executor import PartialLineageEvaluator
from repro.db.database import ProbabilisticDatabase
from repro.db.schema import Row
from repro.errors import InferenceError
from repro.lineage.dnf import answer_lineages
from repro.lineage.exact import DPLLStats, dnf_probability
from repro.lineage.sampling import karp_luby
from repro.sqlbackend.executor import SQLitePartialLineageEvaluator
from repro.workload.queries import BenchmarkQuery


@dataclass
class MethodResult:
    """Outcome of one timed evaluation."""

    method: str
    answers: dict[Row, float]
    seconds: float
    #: Number of conditioned (offending) tuples — partial lineage only.
    offending: int = 0
    #: Network size — partial lineage only.
    network_nodes: int = 0
    #: DPLL work — full lineage only.
    dpll_calls: int = 0
    #: True when the method hit its work budget and gave up.
    timed_out: bool = False
    extra: dict = field(default_factory=dict)


def run_partial_lineage(
    db: ProbabilisticDatabase,
    bench: BenchmarkQuery,
    max_calls: int = 2_000_000,
) -> MethodResult:
    """This paper's method: pL evaluation + And-Or network inference.

    *max_calls* bounds the final-inference DPLL exactly like the competitor's
    budget in :func:`run_full_lineage`, keeping comparisons symmetric.
    """
    start = time.perf_counter()
    result = PartialLineageEvaluator(db).evaluate_query(
        bench.query, list(bench.join_order)
    )
    try:
        answers = result.answer_probabilities(dpll_max_calls=max_calls)
        timed_out = False
    except InferenceError:
        answers = {}
        timed_out = True
    seconds = time.perf_counter() - start
    return MethodResult(
        "partial-lineage",
        answers,
        seconds,
        offending=result.offending_count,
        network_nodes=len(result.network),
        timed_out=timed_out,
    )


def run_partial_lineage_sqlite(
    db: ProbabilisticDatabase, bench: BenchmarkQuery
) -> MethodResult:
    """Partial lineage with the extensional work pushed into SQLite."""
    evaluator = SQLitePartialLineageEvaluator(db)
    try:
        start = time.perf_counter()
        result = evaluator.evaluate_query(bench.query, list(bench.join_order))
        try:
            answers = result.answer_probabilities()
            timed_out = False
        except InferenceError:
            answers = {}
            timed_out = True
        seconds = time.perf_counter() - start
    finally:
        evaluator.close()
    return MethodResult(
        "partial-lineage-sqlite",
        answers,
        seconds,
        offending=result.offending_count,
        network_nodes=len(result.network),
        timed_out=timed_out,
    )


def run_full_lineage(
    db: ProbabilisticDatabase,
    bench: BenchmarkQuery,
    max_calls: int = 2_000_000,
) -> MethodResult:
    """The MayBMS-style competitor: ground full lineage, solve each DNF exactly."""
    start = time.perf_counter()
    dnfs, probs = answer_lineages(bench.query, db)
    answers: dict[Row, float] = {}
    stats = DPLLStats()
    calls = 0
    timed_out = False
    for answer, dnf in dnfs.items():
        try:
            answers[answer] = dnf_probability(
                dnf, probs, max_calls=max_calls, stats=stats
            )
        except InferenceError:
            timed_out = True
            break
        calls += stats.calls
    seconds = time.perf_counter() - start
    return MethodResult(
        "full-lineage-dpll",
        answers,
        seconds,
        dpll_calls=calls,
        timed_out=timed_out,
    )


def run_sampling(
    db: ProbabilisticDatabase,
    bench: BenchmarkQuery,
    samples: int = 5000,
    seed: int = 0,
) -> MethodResult:
    """Approximate baseline: Karp-Luby on the full lineage of every answer."""
    rng = random.Random(seed)
    start = time.perf_counter()
    dnfs, probs = answer_lineages(bench.query, db)
    answers = {
        answer: karp_luby(dnf, probs, samples, rng) for answer, dnf in dnfs.items()
    }
    seconds = time.perf_counter() - start
    return MethodResult("karp-luby", answers, seconds)


def agreement(a: MethodResult, b: MethodResult, tolerance: float = 1e-6) -> bool:
    """Do two exact methods produce the same answers (within float noise)?"""
    if set(a.answers) != set(b.answers):
        return False
    return all(abs(a.answers[k] - b.answers[k]) <= tolerance for k in a.answers)
