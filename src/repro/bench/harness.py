"""Timed evaluation wrappers for the competing methods.

Every wrapper returns a :class:`MethodResult` carrying the per-answer
probabilities, wall-clock seconds, and method-specific work counters, so the
benchmark scripts can both assert agreement between methods and print the
paper-shaped comparison rows.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.core.executor import PartialLineageEvaluator
from repro.db.database import ProbabilisticDatabase
from repro.db.schema import Row
from repro.errors import InferenceError
from repro.lineage.dnf import answer_lineages
from repro.lineage.exact import DPLLStats, dnf_probability
from repro.lineage.sampling import karp_luby
from repro.perf.cache import SubformulaCache
from repro.sqlbackend.executor import SQLitePartialLineageEvaluator
from repro.workload.queries import BenchmarkQuery


@dataclass
class MethodResult:
    """Outcome of one timed evaluation."""

    method: str
    answers: dict[Row, float]
    seconds: float
    #: Number of conditioned (offending) tuples — partial lineage only.
    offending: int = 0
    #: Network size — partial lineage only.
    network_nodes: int = 0
    #: DPLL work — full lineage only.
    dpll_calls: int = 0
    #: True when the method hit its work budget and gave up.
    timed_out: bool = False
    #: Sampling throughput (drawn samples per wall-clock second) — sampling
    #: methods only.
    samples_per_sec: float = 0.0
    #: Shared-subformula cache hit-rate — cache-backed exact methods only.
    cache_hit_rate: float | None = None
    extra: dict = field(default_factory=dict)

    def work_counters(self) -> dict:
        """The per-method counters, JSON-shaped (zero/None entries dropped)."""
        counters: dict = {
            "seconds": self.seconds,
            "answers": len(self.answers),
        }
        if self.offending:
            counters["offending"] = self.offending
        if self.network_nodes:
            counters["network_nodes"] = self.network_nodes
        if self.dpll_calls:
            counters["dpll_calls"] = self.dpll_calls
        if self.samples_per_sec:
            counters["samples_per_sec"] = self.samples_per_sec
        if self.cache_hit_rate is not None:
            counters["cache_hit_rate"] = self.cache_hit_rate
        if self.timed_out:
            counters["timed_out"] = True
        counters.update(self.extra)
        return counters


def run_partial_lineage(
    db: ProbabilisticDatabase,
    bench: BenchmarkQuery,
    max_calls: int = 2_000_000,
    engine: str = "columnar",
    inference: str = "auto",
    workers: int | None = None,
) -> MethodResult:
    """This paper's method: pL evaluation + And-Or network inference.

    *max_calls* bounds the final-inference DPLL exactly like the competitor's
    budget in :func:`run_full_lineage`, keeping comparisons symmetric.
    *engine* selects the operator backend (``"columnar"`` or ``"rows"``);
    *inference* the final-inference path (see
    :meth:`~repro.core.executor.EvaluationResult.answer_probabilities`);
    *workers* the process-pool size for component-parallel inference
    (``None`` stays in-process).
    """
    start = time.perf_counter()
    result = PartialLineageEvaluator(
        db, engine=engine, workers=workers
    ).evaluate_query(bench.query, list(bench.join_order))
    try:
        answers = result.answer_probabilities(
            engine=inference, dpll_max_calls=max_calls
        )
        timed_out = False
    except InferenceError:
        answers = {}
        timed_out = True
    seconds = time.perf_counter() - start
    method = "partial-lineage" if workers is None else f"partial-lineage-w{workers}"
    return MethodResult(
        method,
        answers,
        seconds,
        offending=result.offending_count,
        network_nodes=len(result.network),
        timed_out=timed_out,
    )


def run_partial_lineage_sqlite(
    db: ProbabilisticDatabase, bench: BenchmarkQuery
) -> MethodResult:
    """Partial lineage with the extensional work pushed into SQLite."""
    evaluator = SQLitePartialLineageEvaluator(db)
    try:
        start = time.perf_counter()
        result = evaluator.evaluate_query(bench.query, list(bench.join_order))
        try:
            answers = result.answer_probabilities()
            timed_out = False
        except InferenceError:
            answers = {}
            timed_out = True
        seconds = time.perf_counter() - start
    finally:
        evaluator.close()
    return MethodResult(
        "partial-lineage-sqlite",
        answers,
        seconds,
        offending=result.offending_count,
        network_nodes=len(result.network),
        timed_out=timed_out,
    )


def run_full_lineage(
    db: ProbabilisticDatabase,
    bench: BenchmarkQuery,
    max_calls: int = 2_000_000,
    cache: SubformulaCache | None = None,
) -> MethodResult:
    """The MayBMS-style competitor: ground full lineage, solve each DNF exactly.

    Passing a shared :class:`~repro.perf.SubformulaCache` lets the N
    per-answer DPLL solves reuse each other's subformula probabilities; the
    result then carries the cache's hit-rate and counters.
    """
    start = time.perf_counter()
    dnfs, probs = answer_lineages(bench.query, db)
    answers: dict[Row, float] = {}
    stats = DPLLStats()
    calls = 0
    timed_out = False
    for answer, dnf in dnfs.items():
        try:
            answers[answer] = dnf_probability(
                dnf, probs, max_calls=max_calls, stats=stats, cache=cache
            )
        except InferenceError:
            timed_out = True
            break
        calls += stats.calls
    seconds = time.perf_counter() - start
    result = MethodResult(
        "full-lineage-dpll",
        answers,
        seconds,
        dpll_calls=calls,
        timed_out=timed_out,
    )
    if cache is not None:
        result.cache_hit_rate = cache.stats.hit_rate
        result.extra["cache"] = cache.stats.as_dict()
    return result


def run_sampling(
    db: ProbabilisticDatabase,
    bench: BenchmarkQuery,
    samples: int = 5000,
    seed: int = 0,
    method: str = "auto",
) -> MethodResult:
    """Approximate baseline: Karp-Luby on the full lineage of every answer.

    *seed* always feeds a fresh generator, so benchmark runs never fall back
    to an unseeded ``random.Random()``; *method* picks the vectorized or
    scalar estimator (see :func:`repro.lineage.sampling.karp_luby`).
    """
    rng = random.Random(seed)
    start = time.perf_counter()
    dnfs, probs = answer_lineages(bench.query, db)
    answers = {
        answer: karp_luby(dnf, probs, samples, rng, method=method)
        for answer, dnf in dnfs.items()
    }
    seconds = time.perf_counter() - start
    drawn = samples * len(dnfs)
    return MethodResult(
        "karp-luby",
        answers,
        seconds,
        samples_per_sec=drawn / seconds if seconds > 0 else 0.0,
        extra={"samples": samples, "method": method},
    )


def agreement(a: MethodResult, b: MethodResult, tolerance: float = 1e-6) -> bool:
    """Do two exact methods produce the same answers (within float noise)?"""
    if set(a.answers) != set(b.answers):
        return False
    return all(abs(a.answers[k] - b.answers[k]) <= tolerance for k in a.answers)
