"""repro — bridging intensional and extensional probabilistic query evaluation.

A faithful Python reproduction of *Jha, Olteanu, Suciu: "Bridging the Gap
Between Intensional and Extensional Query Evaluation in Probabilistic
Databases" (EDBT 2010)*.

Quickstart
----------
>>> from repro import ProbabilisticDatabase, parse_query, PartialLineageEvaluator
>>> db = ProbabilisticDatabase()
>>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
>>> _ = db.add_relation("S", ("A", "B"), {(1, 1): 0.5, (1, 2): 0.5})
>>> _ = db.add_relation("T", ("B",), {(1,): 0.9, (2,): 0.9})
>>> q = parse_query("q() :- R(x), S(x,y), T(y)")     # the unsafe q_u of Sec. 4.1
>>> result = PartialLineageEvaluator(db).evaluate_query(q)
>>> round(result.boolean_probability(), 6)
0.34875

The public surface re-exports the main types from each layer; see DESIGN.md
for the complete system inventory.
"""

from repro.core import (
    AndOrNetwork,
    EPSILON,
    EvaluationResult,
    Filter,
    Join,
    NodeKind,
    PartialLineageEvaluator,
    PLRelation,
    PlanChoice,
    Project,
    RankedAnswer,
    Scan,
    Select,
    TopKReport,
    choose_join_order,
    compute_marginal,
    compute_marginals,
    forward_sample_marginal,
    hoeffding_samples,
    karp_luby_marginal,
    left_deep_plan,
    optimized_plan,
    partial_lineage_dnf,
    plan_schema,
    top_k_answers,
)
from repro.circuit import (
    ArithmeticCircuit,
    CircuitBuilder,
    CircuitCache,
    ScenarioBatch,
    circuit_signature,
    compile_dnf,
    compile_lineage,
    compile_network,
    compile_obdd,
    rescore,
    rescore_with_gradients,
)
from repro.core.whatif import Sensitivity, WhatIfAnalysis
from repro.core.executor import OffendingTuple
from repro.core.explain import explain, network_to_dot, result_to_dot
from repro.io import load_database, save_database
from repro.lineage.events import (
    conditional_probability,
    conjunction_probability,
    ucq_probability,
)
from repro.mc import mc_answer_probabilities, mc_query_probability
from repro.obs import (
    ExplainReport,
    MetricsRegistry,
    Tracer,
    build_explain_report,
    span,
    traced,
)
from repro.bid import BIDDatabase, BIDRelation, bid_query_probability
from repro.core.safety import PlanSafetyReport, analyze_plan, join_is_data_safe
from repro.db import (
    ProbabilisticDatabase,
    ProbabilisticRelation,
    RelationSchema,
    brute_force_answer_probabilities,
    brute_force_probability,
    fanout_profile,
    fd_violation_count,
    relation_statistics,
)
from repro.errors import (
    BudgetExceededError,
    CapacityError,
    CircuitError,
    DeadlineExceededError,
    InferenceError,
    PlanError,
    ProbabilityError,
    QuerySemanticsError,
    QuerySyntaxError,
    ReproError,
    SchemaError,
    UnsafePlanError,
)
from repro.dissociation import (
    CertifiedAnswer,
    DissociationBounds,
    DissociationEvaluator,
    DissociationResult,
    TopKCertification,
    certified_top_k,
    dissociation_bounds,
    network_dissociation_bounds,
)
from repro.resilience import (
    AnswerResult,
    FaultPlan,
    FaultSpec,
    QueryBudget,
    exact_fractions,
    resilient_marginals,
)
from repro.extensional import lifted_answer_probabilities, lifted_probability, safe_plan
from repro.lineage import (
    DNF,
    EventVar,
    EventVarInterner,
    Interval,
    OBDD,
    answer_lineages,
    approximate_probability,
    build_obdd,
    dnf_probability,
    karp_luby,
    lineage_of_query,
    naive_monte_carlo,
    obdd_probability,
    read_once_probability,
)
from repro.perf import CacheStats, SubformulaCache
from repro.query import (
    Atom,
    ComparisonPredicate,
    ConjunctiveQuery,
    Constant,
    Variable,
    is_hierarchical,
    is_strictly_hierarchical,
    parse_query,
)

__version__ = "1.0.0"

__all__ = [
    # substrate
    "RelationSchema",
    "ProbabilisticRelation",
    "ProbabilisticDatabase",
    "brute_force_probability",
    "brute_force_answer_probabilities",
    # query language
    "Variable",
    "Constant",
    "Atom",
    "ComparisonPredicate",
    "ConjunctiveQuery",
    "parse_query",
    "is_hierarchical",
    "is_strictly_hierarchical",
    # core contribution
    "AndOrNetwork",
    "NodeKind",
    "EPSILON",
    "PLRelation",
    "Scan",
    "Select",
    "Filter",
    "Project",
    "Join",
    "left_deep_plan",
    "plan_schema",
    "PartialLineageEvaluator",
    "EvaluationResult",
    "compute_marginal",
    "compute_marginals",
    "analyze_plan",
    "join_is_data_safe",
    "PlanSafetyReport",
    # extensional baselines
    "lifted_probability",
    "lifted_answer_probabilities",
    "safe_plan",
    # intensional baselines
    "DNF",
    "EventVar",
    "EventVarInterner",
    "lineage_of_query",
    "answer_lineages",
    "dnf_probability",
    "read_once_probability",
    "naive_monte_carlo",
    "karp_luby",
    "OBDD",
    "build_obdd",
    "obdd_probability",
    "Interval",
    "approximate_probability",
    # performance infrastructure
    "CacheStats",
    "SubformulaCache",
    # arithmetic circuits: compile once, re-score many
    "ArithmeticCircuit",
    "CircuitBuilder",
    "CircuitCache",
    "ScenarioBatch",
    "circuit_signature",
    "compile_dnf",
    "compile_lineage",
    "compile_network",
    "compile_obdd",
    "rescore",
    "rescore_with_gradients",
    # statistics & optimiser
    "fanout_profile",
    "fd_violation_count",
    "relation_statistics",
    "PlanChoice",
    "choose_join_order",
    "optimized_plan",
    # approximate inference & ranking
    "partial_lineage_dnf",
    "forward_sample_marginal",
    "karp_luby_marginal",
    "hoeffding_samples",
    "top_k_answers",
    "TopKReport",
    "RankedAnswer",
    "WhatIfAnalysis",
    "Sensitivity",
    "OffendingTuple",
    "explain",
    "network_to_dot",
    "result_to_dot",
    "load_database",
    "save_database",
    # block-independent-disjoint extension
    "BIDRelation",
    "BIDDatabase",
    "bid_query_probability",
    # UCQs / conditionals / Monte-Carlo worlds
    "ucq_probability",
    "conjunction_probability",
    "conditional_probability",
    "mc_query_probability",
    "mc_answer_probabilities",
    # observability
    "Tracer",
    "span",
    "traced",
    "MetricsRegistry",
    "ExplainReport",
    "build_explain_report",
    # dissociation: extensional-speed enclosures and bounds-first top-k
    "DissociationBounds",
    "DissociationResult",
    "DissociationEvaluator",
    "dissociation_bounds",
    "network_dissociation_bounds",
    "CertifiedAnswer",
    "TopKCertification",
    "certified_top_k",
    # resilience: budgets, degradation ladder, fault-tolerant pool
    "QueryBudget",
    "AnswerResult",
    "resilient_marginals",
    "exact_fractions",
    "FaultSpec",
    "FaultPlan",
    # errors
    "ReproError",
    "SchemaError",
    "ProbabilityError",
    "QuerySyntaxError",
    "QuerySemanticsError",
    "PlanError",
    "UnsafePlanError",
    "InferenceError",
    "CapacityError",
    "CircuitError",
    "BudgetExceededError",
    "DeadlineExceededError",
]
