"""Read-once (one-occurrence) factorisation of lineage DNFs.

Strictly hierarchical queries produce lineage that factorises into a formula
where every variable occurs once; probability computation on such a tree is
linear [17]. The factorisation alternates:

* **Or-split** — partition the clauses into variable-disjoint groups;
* **And-split** — factor out the variables common to every clause, and more
  generally split the variable set so that the clause set is the cross
  product of the projections (detected through the co-occurrence graph's
  complement components, as in the cograph characterisation of read-once
  functions).

If neither applies, the DNF is not read-once and ``None`` is returned — the
caller falls back to DPLL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

from repro.lineage.dnf import DNF, EventVar


@dataclass(frozen=True)
class VarLeaf:
    """A single variable occurrence."""

    var: EventVar


@dataclass(frozen=True)
class OrNode:
    """Disjunction of variable-disjoint children."""

    children: tuple["ReadOnceTree", ...]


@dataclass(frozen=True)
class AndNode:
    """Conjunction of variable-disjoint children."""

    children: tuple["ReadOnceTree", ...]


ReadOnceTree = Union[VarLeaf, OrNode, AndNode]


def _or_groups(clauses: frozenset[frozenset[EventVar]]) -> list[set[frozenset[EventVar]]]:
    """Group clauses into variable-connected components."""
    clause_list = list(clauses)
    var_home: dict[EventVar, int] = {}
    parent = list(range(len(clause_list)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i, c in enumerate(clause_list):
        for v in c:
            if v in var_home:
                ri, rj = find(i), find(var_home[v])
                if ri != rj:
                    parent[ri] = rj
            else:
                var_home[v] = i
    groups: dict[int, set[frozenset[EventVar]]] = {}
    for i, c in enumerate(clause_list):
        groups.setdefault(find(i), set()).add(c)
    return list(groups.values())


def _and_partition(
    clauses: frozenset[frozenset[EventVar]],
) -> list[set[EventVar]] | None:
    """Variable blocks whose co-occurrence complement is disconnected.

    Returns the components of the complement of the co-occurrence graph, or
    ``None`` when there is a single component (no And-split possible). In a
    read-once formula whose top connective is ∧, every variable of one
    conjunct co-occurs (in some clause) with every variable of the others, so
    the conjuncts are exactly these components.
    """
    variables = sorted({v for c in clauses for v in c})
    if len(variables) <= 1:
        return None
    cooccur: dict[EventVar, set[EventVar]] = {v: set() for v in variables}
    for c in clauses:
        for v in c:
            cooccur[v] |= c
    # Components of the complement graph, via BFS over non-neighbours.
    unvisited = set(variables)
    blocks: list[set[EventVar]] = []
    while unvisited:
        seed = unvisited.pop()
        block = {seed}
        frontier = [seed]
        while frontier:
            v = frontier.pop()
            non_neighbours = unvisited - cooccur[v]
            block |= non_neighbours
            unvisited -= non_neighbours
            frontier.extend(non_neighbours)
        blocks.append(block)
    if len(blocks) == 1:
        return None
    return blocks


def read_once_tree(dnf: DNF) -> ReadOnceTree | None:
    """Factorise *dnf* into a read-once tree, or ``None`` if impossible.

    Examples
    --------
    ``xy ∨ xz`` is read-once (``x(y ∨ z)``); ``xy ∨ yz ∨ zx`` is not:

    >>> x, y, z = (EventVar("R", (i,)) for i in (1, 2, 3))
    >>> read_once_tree(DNF([{x, y}, {x, z}])) is not None
    True
    >>> read_once_tree(DNF([{x, y}, {y, z}, {z, x}])) is None
    True
    """
    if dnf.is_true or dnf.is_false:
        return None

    def build(clauses: frozenset[frozenset[EventVar]]) -> ReadOnceTree | None:
        if len(clauses) == 1:
            (clause,) = clauses
            leaves = tuple(VarLeaf(v) for v in sorted(clause))
            return leaves[0] if len(leaves) == 1 else AndNode(leaves)
        groups = _or_groups(clauses)
        if len(groups) > 1:
            children = []
            for g in groups:
                sub = build(frozenset(g))
                if sub is None:
                    return None
                children.append(sub)
            return OrNode(tuple(children))
        blocks = _and_partition(clauses)
        if blocks is None:
            return None
        projections: list[frozenset[frozenset[EventVar]]] = []
        expected = 1
        for block in blocks:
            proj = frozenset(frozenset(c & block) for c in clauses)
            if frozenset() in proj:
                return None
            projections.append(proj)
            expected *= len(proj)
        # The clause set must be exactly the cross product of the projections,
        # otherwise the formula is not a conjunction of these blocks.
        if expected != len(clauses):
            return None
        children = []
        for proj in projections:
            sub = build(proj)
            if sub is None:
                return None
            children.append(sub)
        return AndNode(tuple(children))

    return build(dnf.clauses)


def tree_probability(tree: ReadOnceTree, probs: Mapping[EventVar, float]) -> float:
    """Probability of a read-once tree: one linear pass."""
    if isinstance(tree, VarLeaf):
        return float(probs[tree.var])
    if isinstance(tree, AndNode):
        p = 1.0
        for child in tree.children:
            p *= tree_probability(child, probs)
        return p
    failure = 1.0
    for child in tree.children:
        failure *= 1.0 - tree_probability(child, probs)
    return 1.0 - failure


def read_once_probability(
    dnf: DNF, probs: Mapping[EventVar, float]
) -> float | None:
    """Probability via read-once factorisation; ``None`` when not read-once."""
    if dnf.is_true:
        return 1.0
    if dnf.is_false:
        return 0.0
    tree = read_once_tree(dnf)
    if tree is None:
        return None
    return tree_probability(tree, probs)
