"""Lineage DNFs (Definition 3.5).

The lineage of a Boolean conjunctive query on a database is the DNF obtained
by grounding: one clause per satisfying assignment, one Boolean variable per
database tuple. :func:`lineage_of_query` materialises it together with the
variable probability map; :func:`answer_lineages` does the same per answer for
queries with head variables (the "N Boolean queries" view of Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.db.database import ProbabilisticDatabase
from repro.db.schema import Row
from repro.query.grounding import all_groundings, groundings
from repro.query.syntax import ConjunctiveQuery, Constant


@dataclass(frozen=True, order=True)
class EventVar:
    """The Boolean event of one database tuple, ``(relation, row)``."""

    relation: str
    row: Row

    def __str__(self) -> str:
        return f"{self.relation}{self.row!r}"


class DNF:
    """A positive DNF over :class:`EventVar` variables.

    Clauses are frozensets of variables; the clause set is deduplicated
    (``C ∨ C = C``). The empty DNF is *false*; a DNF containing the empty
    clause is *true*.
    """

    __slots__ = ("clauses",)

    def __init__(self, clauses: Iterable[frozenset[EventVar]] = ()) -> None:
        self.clauses: frozenset[frozenset[EventVar]] = frozenset(
            frozenset(c) for c in clauses
        )

    def variables(self) -> set[EventVar]:
        """All variables mentioned by some clause."""
        out: set[EventVar] = set()
        for c in self.clauses:
            out |= c
        return out

    @property
    def is_false(self) -> bool:
        """No clause at all: the constant ``false``."""
        return not self.clauses

    @property
    def is_true(self) -> bool:
        """Contains the empty clause: the constant ``true``."""
        return frozenset() in self.clauses

    def __len__(self) -> int:
        return len(self.clauses)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DNF) and self.clauses == other.clauses

    def __hash__(self) -> int:
        return hash(self.clauses)

    def evaluate(self, world: Mapping[EventVar, bool]) -> bool:
        """Truth value under a (total-enough) assignment of variables."""
        return any(all(world.get(v, False) for v in c) for c in self.clauses)

    def __repr__(self) -> str:
        if self.is_false:
            return "DNF(false)"
        if self.is_true:
            return "DNF(true)"
        parts = sorted(
            " ∧ ".join(sorted(map(str, c))) for c in self.clauses
        )
        return " ∨ ".join(f"({p})" for p in parts)


class EventVarInterner:
    """Hash-cons :class:`EventVar` objects to dense integer ids.

    The inference and sampling engines all work over integer variable ids;
    interning assigns each distinct variable one id (``0, 1, 2, ...`` in
    first-seen order) and keeps the reverse table, so clause sets become
    small ``frozenset[int]`` values that hash and compare fast and can index
    straight into NumPy probability vectors or incidence matrices. One
    interner can be shared across the per-answer lineages of a multi-answer
    query, giving every engine the same id space.

    Examples
    --------
    >>> pool = EventVarInterner()
    >>> x, y = EventVar("R", (1,)), EventVar("R", (2,))
    >>> pool.intern(x), pool.intern(y), pool.intern(x)
    (0, 1, 0)
    >>> pool.var(1)
    EventVar(relation='R', row=(2,))
    >>> len(pool)
    2
    """

    __slots__ = ("_ids", "_vars")

    def __init__(self) -> None:
        self._ids: dict[EventVar, int] = {}
        self._vars: list[EventVar] = []

    def __len__(self) -> int:
        return len(self._vars)

    def intern(self, var: EventVar) -> int:
        """Dense id of *var*, assigning the next free id on first sight."""
        ident = self._ids.get(var)
        if ident is None:
            ident = len(self._vars)
            self._ids[var] = ident
            self._vars.append(var)
        return ident

    def var(self, ident: int) -> EventVar:
        """The variable behind a dense id."""
        return self._vars[ident]

    def id_of(self, var: EventVar) -> int:
        """Id of an already-interned variable (``KeyError`` otherwise)."""
        return self._ids[var]

    def variables(self) -> tuple[EventVar, ...]:
        """All interned variables, in id order."""
        return tuple(self._vars)

    def intern_clauses(self, dnf: "DNF") -> frozenset[frozenset[int]]:
        """Clause set of *dnf* over dense integer ids."""
        return frozenset(
            frozenset(self.intern(v) for v in c) for c in dnf.clauses
        )

    def probability_vector(
        self, probs: Mapping[EventVar, float]
    ) -> list[float]:
        """Per-id probabilities for every interned variable, in id order."""
        return [float(probs[v]) for v in self._vars]


def lineage_of_query(
    query: ConjunctiveQuery, db: ProbabilisticDatabase
) -> tuple[DNF, dict[EventVar, float]]:
    """Lineage of a Boolean query plus the variable probability map.

    Grounding ranges over *all* tuples of the database (deterministic ones
    included — they become probability-1 variables, which the inference
    engines simplify away).

    Examples
    --------
    Example 3.6 of the paper: ``q = R(x,y), S(y,z)`` over the 2x2 complete
    relations has the 8-clause lineage ``∨ r_ij s_jk``:

    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> db = ProbabilisticDatabase()
    >>> rows = {(i, j): 0.5 for i in (1, 2) for j in (1, 2)}
    >>> _ = db.add_relation("R", ("A", "B"), rows)
    >>> _ = db.add_relation("S", ("B", "C"), rows)
    >>> f, probs = lineage_of_query(parse_query("R(x,y), S(y,z)"), db)
    >>> len(f)
    8
    """
    instance = db.deterministic_instance()
    clauses = []
    for ground in all_groundings(query.boolean_view(), instance):
        clauses.append(
            frozenset(EventVar(rel, row) for rel, row in ground.items())
        )
    dnf = DNF(clauses)
    probs = {v: db[v.relation].probability(v.row) for v in dnf.variables()}
    return dnf, probs


def answer_lineages(
    query: ConjunctiveQuery, db: ProbabilisticDatabase
) -> tuple[dict[Row, DNF], dict[EventVar, float]]:
    """Per-answer lineages for a query with head variables.

    Returns a map ``answer row -> DNF`` plus one shared probability map.
    """
    instance = db.deterministic_instance()
    by_answer: dict[Row, list[frozenset[EventVar]]] = {}
    for binding in groundings(query, instance):
        answer = tuple(binding[v] for v in query.head)
        clause = []
        for atom in query.atoms:
            row = tuple(
                t.value if isinstance(t, Constant) else binding[t]
                for t in atom.terms
            )
            clause.append(EventVar(atom.relation, row))
        by_answer.setdefault(answer, []).append(frozenset(clause))
    dnfs = {a: DNF(cs) for a, cs in by_answer.items()}
    probs: dict[EventVar, float] = {}
    for f in dnfs.values():
        for v in f.variables():
            if v not in probs:
                probs[v] = db[v.relation].probability(v.row)
    return dnfs, probs
