"""Lineage DNFs (Definition 3.5).

The lineage of a Boolean conjunctive query on a database is the DNF obtained
by grounding: one clause per satisfying assignment, one Boolean variable per
database tuple. :func:`lineage_of_query` materialises it together with the
variable probability map; :func:`answer_lineages` does the same per answer for
queries with head variables (the "N Boolean queries" view of Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.db.database import ProbabilisticDatabase
from repro.db.schema import Row
from repro.query.grounding import all_groundings, groundings
from repro.query.syntax import ConjunctiveQuery, Constant


@dataclass(frozen=True, order=True)
class EventVar:
    """The Boolean event of one database tuple, ``(relation, row)``."""

    relation: str
    row: Row

    def __str__(self) -> str:
        return f"{self.relation}{self.row!r}"


class DNF:
    """A positive DNF over :class:`EventVar` variables.

    Clauses are frozensets of variables; the clause set is deduplicated
    (``C ∨ C = C``). The empty DNF is *false*; a DNF containing the empty
    clause is *true*.
    """

    __slots__ = ("clauses",)

    def __init__(self, clauses: Iterable[frozenset[EventVar]] = ()) -> None:
        self.clauses: frozenset[frozenset[EventVar]] = frozenset(
            frozenset(c) for c in clauses
        )

    def variables(self) -> set[EventVar]:
        """All variables mentioned by some clause."""
        out: set[EventVar] = set()
        for c in self.clauses:
            out |= c
        return out

    @property
    def is_false(self) -> bool:
        """No clause at all: the constant ``false``."""
        return not self.clauses

    @property
    def is_true(self) -> bool:
        """Contains the empty clause: the constant ``true``."""
        return frozenset() in self.clauses

    def __len__(self) -> int:
        return len(self.clauses)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DNF) and self.clauses == other.clauses

    def __hash__(self) -> int:
        return hash(self.clauses)

    def evaluate(self, world: Mapping[EventVar, bool]) -> bool:
        """Truth value under a (total-enough) assignment of variables."""
        return any(all(world.get(v, False) for v in c) for c in self.clauses)

    def __repr__(self) -> str:
        if self.is_false:
            return "DNF(false)"
        if self.is_true:
            return "DNF(true)"
        parts = sorted(
            " ∧ ".join(sorted(map(str, c))) for c in self.clauses
        )
        return " ∨ ".join(f"({p})" for p in parts)


def lineage_of_query(
    query: ConjunctiveQuery, db: ProbabilisticDatabase
) -> tuple[DNF, dict[EventVar, float]]:
    """Lineage of a Boolean query plus the variable probability map.

    Grounding ranges over *all* tuples of the database (deterministic ones
    included — they become probability-1 variables, which the inference
    engines simplify away).

    Examples
    --------
    Example 3.6 of the paper: ``q = R(x,y), S(y,z)`` over the 2x2 complete
    relations has the 8-clause lineage ``∨ r_ij s_jk``:

    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> db = ProbabilisticDatabase()
    >>> rows = {(i, j): 0.5 for i in (1, 2) for j in (1, 2)}
    >>> _ = db.add_relation("R", ("A", "B"), rows)
    >>> _ = db.add_relation("S", ("B", "C"), rows)
    >>> f, probs = lineage_of_query(parse_query("R(x,y), S(y,z)"), db)
    >>> len(f)
    8
    """
    instance = db.deterministic_instance()
    clauses = []
    for ground in all_groundings(query.boolean_view(), instance):
        clauses.append(
            frozenset(EventVar(rel, row) for rel, row in ground.items())
        )
    dnf = DNF(clauses)
    probs = {v: db[v.relation].probability(v.row) for v in dnf.variables()}
    return dnf, probs


def answer_lineages(
    query: ConjunctiveQuery, db: ProbabilisticDatabase
) -> tuple[dict[Row, DNF], dict[EventVar, float]]:
    """Per-answer lineages for a query with head variables.

    Returns a map ``answer row -> DNF`` plus one shared probability map.
    """
    instance = db.deterministic_instance()
    by_answer: dict[Row, list[frozenset[EventVar]]] = {}
    for binding in groundings(query, instance):
        answer = tuple(binding[v] for v in query.head)
        clause = []
        for atom in query.atoms:
            row = tuple(
                t.value if isinstance(t, Constant) else binding[t]
                for t in atom.terms
            )
            clause.append(EventVar(atom.relation, row))
        by_answer.setdefault(answer, []).append(frozenset(clause))
    dnfs = {a: DNF(cs) for a, cs in by_answer.items()}
    probs: dict[EventVar, float] = {}
    for f in dnfs.values():
        for v in f.variables():
            if v not in probs:
                probs[v] = db[v.relation].probability(v.row)
    return dnfs, probs
