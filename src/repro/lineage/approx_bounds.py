"""Approximate confidence computation with error guarantees [19].

Olteanu-Huang-Koch (ICDE 2010) approximate a DNF's probability by partially
expanding its decomposition tree and keeping *interval bounds* at the
frontier. We reproduce the approach on our DPLL decomposition rules:

* frontier bounds for a clause set ``F``:
  ``lower = max_clause Pr(clause)`` (any single clause implies ``F``) and
  ``upper = min(1, Σ Pr(clause))`` (the union bound);
* **independent components** combine as ``1 - Π (1 - I_i)`` — monotone in
  each interval endpoint;
* **common-variable factoring** multiplies by the factored weight;
* **Shannon expansion** combines convexly: ``p·I₁ + (1-p)·I₀``, whose width
  is the probability-weighted average of the children's widths — so an
  ``ε``-budget can be *passed down* unchanged, and for components split as
  ``ε/k`` (the width of the combination is at most the sum of widths).

``approximate_probability`` expands until the root interval is narrower than
``epsilon`` (absolute error) or the call budget runs out, returning the
interval — so even a truncated run is *sound*: the true probability always
lies inside.
"""

from __future__ import annotations

import sys
from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.errors import DeadlineExceededError
from repro.lineage.dnf import DNF, EventVar
from repro.lineage.exact import _split_components

_Clauses = frozenset[frozenset[int]]


@dataclass(frozen=True)
class Interval:
    """A sound enclosure of a probability."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not -1e-12 <= self.low <= self.high <= 1.0 + 1e-12:
            raise ValueError(f"invalid interval [{self.low}, {self.high}]")

    @property
    def width(self) -> float:
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        return (self.low + self.high) / 2.0

    def contains(self, value: float, tolerance: float = 1e-9) -> bool:
        """Is *value* inside the interval (up to float noise)?"""
        return self.low - tolerance <= value <= self.high + tolerance


def _clause_weight(clause: frozenset[int], probs: list[float]) -> float:
    w = 1.0
    for v in clause:
        w *= probs[v]
    return w


class _Approximator:
    #: Expansion steps between cooperative deadline checks.
    CHECK_EVERY = 256

    def __init__(self, probs: list[float], max_calls: int, budget=None) -> None:
        self.probs = probs
        self.max_calls = max_calls
        self.calls = 0
        self.budget = budget
        self.truncated = False

    def frontier(self, clauses: _Clauses) -> Interval:
        """Cheap sound bounds without expansion."""
        weights = [_clause_weight(c, self.probs) for c in clauses]
        return Interval(max(weights), min(1.0, sum(weights)))

    def bounds(self, clauses: _Clauses, epsilon: float) -> Interval:
        if not clauses:
            return Interval(0.0, 0.0)
        if frozenset() in clauses:
            return Interval(1.0, 1.0)
        self.calls += 1
        if (
            self.budget is not None
            and not self.truncated
            and self.calls % self.CHECK_EVERY == 0
        ):
            try:
                self.budget.checkpoint("approx-bounds")
            except DeadlineExceededError:
                # Deadline passed mid-expansion: stop deepening and unwind
                # with frontier bounds everywhere below this point. Same
                # sound truncation as call-budget exhaustion — the interval
                # stays a true enclosure, only wider than requested.
                self.truncated = True
        cheap = self.frontier(clauses)
        if cheap.width <= epsilon or self.calls > self.max_calls or self.truncated:
            return cheap

        groups = _split_components(clauses)
        if len(groups) > 1:
            share = epsilon / len(groups)
            # 1 - Π(1 - p_i) is increasing in every p_i, so the result's
            # lower bound uses the children's lower bounds and vice versa.
            fail_high = fail_low = 1.0
            for g in groups:
                sub = self._factored(g, share)
                fail_high *= 1.0 - sub.low
                fail_low *= 1.0 - sub.high
            return Interval(1.0 - fail_high, 1.0 - fail_low)
        return self._factored(clauses, epsilon)

    def _factored(self, clauses: _Clauses, epsilon: float) -> Interval:
        common = frozenset.intersection(*clauses)
        if common:
            weight = 1.0
            for v in common:
                weight *= self.probs[v]
            rest = frozenset(c - common for c in clauses)
            if frozenset() in rest:
                return Interval(weight, weight)
            # widening epsilon by /weight keeps the scaled width within budget
            inner = self.bounds(rest, min(1.0, epsilon / max(weight, 1e-12)))
            return Interval(weight * inner.low, weight * inner.high)
        return self._shannon(clauses, epsilon)

    def _shannon(self, clauses: _Clauses, epsilon: float) -> Interval:
        counts: Counter[int] = Counter()
        for c in clauses:
            counts.update(c)
        var, _ = counts.most_common(1)[0]
        p = self.probs[var]
        positive = frozenset(c - {var} for c in clauses if var in c) | frozenset(
            c for c in clauses if var not in c
        )
        negative = frozenset(c for c in clauses if var not in c)
        pos = (
            Interval(1.0, 1.0)
            if frozenset() in positive
            else self.bounds(positive, epsilon)
        )
        neg = (
            Interval(0.0, 0.0) if not negative else self.bounds(negative, epsilon)
        )
        return Interval(
            p * pos.low + (1.0 - p) * neg.low,
            p * pos.high + (1.0 - p) * neg.high,
        )


def approximate_probability(
    dnf: DNF,
    probs: Mapping[EventVar, float],
    epsilon: float = 0.01,
    max_calls: int = 200_000,
    *,
    budget=None,
) -> Interval:
    """A sound interval of width ≤ *epsilon* around ``Pr(dnf)`` — or the best
    interval reachable within *max_calls* expansion steps.

    *budget* is an optional :class:`~repro.resilience.QueryBudget`: its
    wall-clock deadline is checked cooperatively inside the expansion loop,
    and a passed deadline *truncates* the expansion (frontier bounds below
    the current point) rather than raising — a degraded-but-sound interval
    beats no answer on the bounds rung of the degradation ladder.

    Examples
    --------
    >>> x, y, z = (EventVar("R", (i,)) for i in range(3))
    >>> f = DNF([{x, y}, {y, z}, {z, x}])
    >>> iv = approximate_probability(f, {x: .5, y: .5, z: .5}, epsilon=0.001)
    >>> iv.contains(0.5)        # exact: 2*(1/8) + ... = 0.5
    True
    >>> iv.width <= 0.001
    True
    """
    if dnf.is_true:
        return Interval(1.0, 1.0)
    if dnf.is_false:
        return Interval(0.0, 0.0)
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    variables = sorted(dnf.variables())
    ids = {v: i for i, v in enumerate(variables)}
    p = [float(probs[v]) for v in variables]
    clauses: set[frozenset[int]] = set()
    for clause in dnf.clauses:
        if any(p[ids[v]] == 0.0 for v in clause):
            continue
        clauses.add(frozenset(ids[v] for v in clause if p[ids[v]] < 1.0))
    if frozenset() in clauses:
        return Interval(1.0, 1.0)
    if not clauses:
        return Interval(0.0, 0.0)
    approx = _Approximator(p, max_calls, budget)
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000 + 6 * len(variables)))
    try:
        return approx.bounds(frozenset(clauses), epsilon)
    finally:
        sys.setrecursionlimit(old_limit)
