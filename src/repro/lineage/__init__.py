"""Full-lineage (intensional) machinery and baselines.

Modules
-------
``dnf``
    Lineage construction (Definition 3.5): the DNF over tuple events obtained
    by grounding the query.
``exact``
    Exact DNF probability by DPLL-style Shannon expansion with independent
    component decomposition, factoring, and memoisation — the same algorithmic
    family as MayBMS's exact confidence computation [16], and the competitor
    line in the paper's Figures 5-7.
``readonce``
    One-occurrence (read-once) factorisation [17]: linear-time probability for
    the lineages of strictly hierarchical queries.
``sampling``
    Monte-Carlo baselines: naive world sampling and the Karp-Luby DNF
    estimator [21].
``treewidth``
    Primal graphs of DNFs and treewidth bounds (exact for tiny graphs,
    min-fill/min-degree heuristics otherwise) — the measure behind
    Theorem 4.2.
"""

from repro.lineage.dnf import (
    DNF,
    EventVar,
    EventVarInterner,
    lineage_of_query,
    answer_lineages,
)
from repro.lineage.exact import dnf_probability
from repro.lineage.readonce import read_once_tree, read_once_probability
from repro.lineage.approx_bounds import Interval, approximate_probability
from repro.lineage.events import (
    conditional_probability,
    conjoin,
    conjunction_probability,
    disjoin,
    ucq_probability,
)
from repro.lineage.obdd import OBDD, build_obdd, default_variable_order, obdd_probability
from repro.lineage.sampling import karp_luby, naive_monte_carlo
from repro.lineage.treewidth import primal_graph, treewidth_exact, treewidth_upper_bound

__all__ = [
    "EventVar",
    "EventVarInterner",
    "DNF",
    "lineage_of_query",
    "answer_lineages",
    "dnf_probability",
    "read_once_tree",
    "read_once_probability",
    "naive_monte_carlo",
    "karp_luby",
    "OBDD",
    "build_obdd",
    "default_variable_order",
    "obdd_probability",
    "Interval",
    "approximate_probability",
    "disjoin",
    "conjoin",
    "ucq_probability",
    "conjunction_probability",
    "conditional_probability",
    "primal_graph",
    "treewidth_exact",
    "treewidth_upper_bound",
]
