"""Treewidth of lineage DNFs (Section 4.3.1 and Theorem 4.2).

The paper associates with a DNF the hypergraph whose hyperedges are its
clauses; the treewidth of the *primal graph* (clique per clause) governs the
cost of structure-exploiting intensional inference. Theorem 4.2: the queries
with instance-independent bounded lineage treewidth are exactly the strictly
hierarchical ones — e.g. the safe query ``R(x,y), S(x,z)`` already has
unbounded treewidth, and a many-many join embeds ``K_{m,n}`` (Fact 5.18:
``tw(K_{m,n}) = min(m,n)``).

Exact treewidth is itself NP-hard; we provide a subset-DP exact algorithm for
small graphs (tests and Fact 5.18 checks) and min-fill / min-degree heuristic
upper bounds (via networkx) for the experiment-scale measurements.
"""

from __future__ import annotations

import networkx as nx
from networkx.algorithms.approximation import (
    treewidth_min_degree,
    treewidth_min_fill_in,
)

from repro.errors import CapacityError
from repro.lineage.dnf import DNF

#: Exact treewidth DP is O(2^n * n * m); refuse beyond this many vertices.
_MAX_EXACT = 18


def primal_graph(dnf: DNF) -> nx.Graph:
    """Primal graph of the DNF's hypergraph: one clique per clause."""
    g = nx.Graph()
    for clause in dnf.clauses:
        members = sorted(clause)
        g.add_nodes_from(members)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                g.add_edge(a, b)
    return g


def treewidth_upper_bound(graph: nx.Graph, heuristic: str = "min_fill") -> int:
    """Heuristic treewidth upper bound (``min_fill`` or ``min_degree``)."""
    if graph.number_of_nodes() == 0:
        return 0
    if heuristic == "min_fill":
        width, _ = treewidth_min_fill_in(graph)
    elif heuristic == "min_degree":
        width, _ = treewidth_min_degree(graph)
    else:
        raise ValueError(f"unknown heuristic {heuristic!r}")
    return width


def treewidth_exact(graph: nx.Graph) -> int:
    """Exact treewidth by dynamic programming over vertex subsets.

    Uses the elimination-order characterisation: ``tw(G)`` is the minimum over
    orders of the maximum degree at elimination time, where eliminating a
    vertex connects its remaining neighbours. ``f(S)`` is the best width for
    eliminating set ``S`` first; the degree of ``v`` eliminated after ``S`` is
    the number of vertices outside ``S ∪ {v}`` reachable from ``v`` through
    ``S``.

    Raises
    ------
    CapacityError
        If the graph has more than 18 vertices.
    """
    nodes = sorted(graph.nodes())
    n = len(nodes)
    if n > _MAX_EXACT:
        raise CapacityError(f"{n} vertices exceed the exact treewidth limit")
    if n == 0:
        return 0
    index = {v: i for i, v in enumerate(nodes)}
    adj = [0] * n
    for a, b in graph.edges():
        adj[index[a]] |= 1 << index[b]
        adj[index[b]] |= 1 << index[a]

    def eliminated_degree(v: int, eliminated: int) -> int:
        """Vertices outside ``eliminated ∪ {v}`` reachable from ``v`` through
        already-eliminated vertices (BFS expanding only inside the set)."""
        visited = 1 << v
        pending = adj[v] & ~visited
        reach = 0
        while pending:
            low = pending & -pending
            pending ^= low
            if visited & low:
                continue
            visited |= low
            if eliminated & low:
                pending |= adj[low.bit_length() - 1] & ~visited
            else:
                reach |= low
        return bin(reach).count("1")

    best = {0: 0}
    for size in range(n):
        layer = {s: w for s, w in best.items() if bin(s).count("1") == size}
        for s, width in layer.items():
            for v in range(n):
                bit = 1 << v
                if s & bit:
                    continue
                deg = eliminated_degree(v, s)
                new_width = max(width, deg)
                t = s | bit
                if best.get(t, n + 1) > new_width:
                    best[t] = new_width
    return best[(1 << n) - 1]


def lineage_treewidth(dnf: DNF, exact: bool = False) -> int:
    """Treewidth (bound) of a lineage DNF's primal graph."""
    g = primal_graph(dnf)
    return treewidth_exact(g) if exact else treewidth_upper_bound(g)
