"""Exact DNF probability by DPLL-style variable elimination.

This is the library's stand-in for MayBMS's exact confidence computation [16]
("conditioning probabilistic databases"): Shannon expansion on a chosen
variable, with the standard optimisations that make it competitive —

* **independent components**: variable-disjoint sub-DNFs multiply,
  ``Pr(F1 ∨ F2) = 1 - (1 - Pr(F1)) (1 - Pr(F2))``;
* **common-variable factoring**: a variable in every clause factors out,
  ``Pr(x ∧ F') = p(x) · Pr(F')``;
* **memoisation** of sub-formula probabilities — per call by default, or
  across calls through a shared :class:`~repro.perf.SubformulaCache` keyed
  by rename-invariant canonical forms, so the N per-answer lineages of a
  multi-answer query reuse each other's independent-partition and
  Shannon-cofactor results;
* deterministic variables (probability 1) simplified away up front.

Worst-case exponential, as it must be (#P-hardness); on nearly-read-once
lineage it runs in near-linear time, which is what makes it a fair
competitor line for Figures 5-7.
"""

from __future__ import annotations

import sys
from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.errors import DPLLBudgetError, InferenceError
from repro.lineage.dnf import DNF, EventVar, EventVarInterner
from repro.obs.trace import span as _span
from repro.perf.cache import SubformulaCache, canonical_key

#: Clauses over integer variable ids (internal representation).
_Clauses = frozenset[frozenset[int]]

_TRUE = frozenset([frozenset()])


@dataclass
class DPLLStats:
    """Work accounting for one :func:`dnf_probability` call."""

    calls: int = 0
    shannon_branches: int = 0
    component_splits: int = 0
    memo_hits: int = 0

    @property
    def hits(self) -> int:
        """Alias of :attr:`memo_hits`.

        :class:`~repro.perf.cache.CacheStats` calls the same quantity
        ``hits``; the alias lets callers read either accounting object
        uniformly (the historic ``stats.hits`` vs ``stats.memo_hits``
        split).
        """
        return self.memo_hits

    def as_dict(self) -> dict:
        """Plain-dict view, the shape a
        :class:`~repro.obs.metrics.MetricsRegistry` absorbs."""
        return {
            "calls": self.calls,
            "shannon_branches": self.shannon_branches,
            "component_splits": self.component_splits,
            "memo_hits": self.memo_hits,
        }


class _Solver:
    #: Calls between cooperative deadline checks (one ``time.monotonic()``
    #: per block keeps the hot recursion unburdened).
    CHECK_EVERY = 256

    def __init__(
        self,
        probs: list[float],
        max_calls: int,
        cache: SubformulaCache | None = None,
        budget=None,
    ) -> None:
        self.probs = probs
        self.memo: dict[_Clauses, float] = {}
        self.stats = DPLLStats()
        self.max_calls = max_calls
        self.cache = cache
        self.budget = budget
        # Canonical keys are O(|F| log |F|) to build; remember them per
        # identical clause set so repeats within this call pay only a dict
        # lookup before hitting the shared cache.
        self._keys: dict[_Clauses, tuple] = {}

    def probability(self, clauses: _Clauses) -> float:
        self.stats.calls += 1
        if self.stats.calls > self.max_calls:
            raise DPLLBudgetError(
                f"DPLL exceeded the budget of {self.max_calls} calls; the "
                f"lineage is intractable for exact intensional evaluation"
            )
        if self.budget is not None and self.stats.calls % self.CHECK_EVERY == 0:
            self.budget.checkpoint("dpll")
        if not clauses:
            return 0.0
        if frozenset() in clauses:
            return 1.0
        if self.cache is not None:
            key = self._keys.get(clauses)
            if key is None:
                key = canonical_key(clauses, self.probs)
                self._keys[clauses] = key
            hit = self.cache.get(key)
            if hit is not None:
                self.stats.memo_hits += 1
                return hit
            result = self._components(clauses)
            self.cache.put(key, result)
            return result
        hit = self.memo.get(clauses)
        if hit is not None:
            self.stats.memo_hits += 1
            return hit

        result = self._components(clauses)
        self.memo[clauses] = result
        return result

    def _components(self, clauses: _Clauses) -> float:
        """Split into variable-disjoint components; multiply failures."""
        groups = _split_components(clauses)
        if len(groups) == 1:
            return self._factor(clauses)
        self.stats.component_splits += 1
        failure = 1.0
        for g in groups:
            failure *= 1.0 - self._factor(g)
            if failure == 0.0:
                break
        return 1.0 - failure

    def _factor(self, clauses: _Clauses) -> float:
        """Factor out variables common to every clause, then branch."""
        common = frozenset.intersection(*clauses)
        if common:
            weight = 1.0
            for v in common:
                weight *= self.probs[v]
            rest = frozenset(c - common for c in clauses)
            if frozenset() in rest:
                return weight
            return weight * self.probability(rest)
        return self._shannon(clauses)

    def _shannon(self, clauses: _Clauses) -> float:
        """Branch on the most frequent variable."""
        self.stats.shannon_branches += 1
        counts: Counter[int] = Counter()
        for c in clauses:
            counts.update(c)
        var, _ = counts.most_common(1)[0]
        p = self.probs[var]
        positive = frozenset(c - {var} for c in clauses if var in c) | frozenset(
            c for c in clauses if var not in c
        )
        negative = frozenset(c for c in clauses if var not in c)
        if frozenset() in positive:
            pos = 1.0
        else:
            pos = self.probability(positive)
        neg = self.probability(negative)
        return p * pos + (1.0 - p) * neg


def _split_components(clauses: _Clauses) -> list[_Clauses]:
    """Partition clauses into groups sharing no variable (union-find)."""
    parent: dict[int, int] = {}

    def find(v: int) -> int:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for c in clauses:
        it = iter(c)
        first = next(it)
        parent.setdefault(first, first)
        for v in it:
            parent.setdefault(v, v)
            rf, rv = find(first), find(v)
            if rf != rv:
                parent[rv] = rf
    acc: dict[int, list[frozenset[int]]] = {}
    for c in clauses:
        acc.setdefault(find(next(iter(c))), []).append(c)
    return [frozenset(g) for g in acc.values()]


def dnf_probability(
    dnf: DNF,
    probs: Mapping[EventVar, float],
    *,
    max_calls: int = 5_000_000,
    stats: DPLLStats | None = None,
    cache: SubformulaCache | None = None,
    budget=None,
) -> float:
    """Exact probability of a positive DNF over independent variables.

    Parameters
    ----------
    dnf:
        The formula.
    probs:
        Marginal probability of each variable. Variables with probability 1
        are simplified away before solving; probability-0 variables delete
        their clauses.
    max_calls:
        Work budget; :class:`~repro.errors.DPLLBudgetError` (an
        :class:`~repro.errors.InferenceError` that is also a
        :class:`~repro.errors.BudgetExceededError`) beyond it — the
        paper's Fig. 6/7 "both systems fail" regime.
    budget:
        Optional :class:`~repro.resilience.QueryBudget`; its deadline is
        checked cooperatively every :attr:`_Solver.CHECK_EVERY` calls.
    stats:
        Optional accounting object, filled in place.
    cache:
        Optional shared :class:`~repro.perf.SubformulaCache`. When given, it
        replaces the per-call memo: every solved subformula is stored under
        a rename-invariant canonical key, so later calls (e.g. the other
        answers of the same query) reuse the work. ``stats.memo_hits`` then
        counts shared-cache hits.

    Examples
    --------
    >>> from repro.lineage.dnf import DNF, EventVar
    >>> x, y = EventVar("R", (1,)), EventVar("R", (2,))
    >>> f = DNF([frozenset([x]), frozenset([y])])
    >>> round(dnf_probability(f, {x: 0.5, y: 0.5}), 6)
    0.75

    A shared cache turns the second, isomorphic solve into a lookup. The
    cache's :class:`~repro.perf.cache.CacheStats` counts it as ``hits``;
    the solver's :class:`DPLLStats` as ``memo_hits`` — :attr:`DPLLStats
    .hits` aliases the latter so both read the same way:

    >>> from repro.perf import SubformulaCache
    >>> shared = SubformulaCache()
    >>> f2 = DNF([frozenset([x, y])])
    >>> _ = dnf_probability(f2, {x: 0.3, y: 0.4}, cache=shared)
    >>> z, w = EventVar("S", (1,)), EventVar("S", (2,))
    >>> f3 = DNF([frozenset([z, w])])
    >>> st = DPLLStats()
    >>> _ = dnf_probability(f3, {z: 0.3, w: 0.4}, stats=st, cache=shared)
    >>> shared.stats.hits >= 1 and st.hits == st.memo_hits
    True
    """
    if dnf.is_true:
        return 1.0
    if dnf.is_false:
        return 0.0
    interner = EventVarInterner()
    for v in sorted(dnf.variables()):
        interner.intern(v)
    p = interner.probability_vector(probs)
    clauses: set[frozenset[int]] = set()
    for clause in dnf.clauses:
        if any(p[interner.id_of(v)] == 0.0 for v in clause):
            continue
        reduced = frozenset(
            interner.id_of(v) for v in clause if p[interner.id_of(v)] < 1.0
        )
        clauses.add(reduced)
    if frozenset() in clauses:
        return 1.0
    if not clauses:
        return 0.0
    solver = _Solver(p, max_calls, cache, budget)
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000 + 6 * len(interner)))
    with _span(
        "dnf_probability", variables=len(interner), clauses=len(clauses)
    ) as sp:
        try:
            result = solver.probability(frozenset(clauses))
        finally:
            sys.setrecursionlimit(old_limit)
        for name, value in solver.stats.as_dict().items():
            sp.add(name, value)
    if stats is not None:
        stats.calls = solver.stats.calls
        stats.shannon_branches = solver.stats.shannon_branches
        stats.component_splits = solver.stats.component_splits
        stats.memo_hits = solver.stats.memo_hits
    return result
