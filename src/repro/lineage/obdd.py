"""OBDD-based exact confidence computation [17].

Olteanu-Huang compile the lineage DNF into an ordered binary decision
diagram; the probability then falls out of one linear bottom-up pass. The
compilation is the same Shannon expansion the DPLL solver performs, but
*materialised* with a unique table, so repeated sub-functions are stored once
and the result is reusable for many probability computations (e.g. under
updated tuple probabilities — a capability the DPLL path lacks).

The OBDD size is exponential in the worst case (the paper's Theorem 4.2
argument: already the safe ``R(x,y), S(x,z)`` has no bounded-width OBDD under
any order), so construction takes a node budget. For strictly hierarchical
lineage a frequency-driven order keeps the OBDD linear.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import CapacityError
from repro.lineage.dnf import DNF, EventVar
from repro.obs.trace import span as _span
from repro.perf.cache import SubformulaCache

#: Terminal node ids.
FALSE, TRUE = 0, 1


@dataclass
class OBDD:
    """A reduced ordered BDD over :class:`EventVar` variables.

    ``nodes[i] = (var_index, low, high)`` for ``i >= 2``; ids 0 and 1 are the
    ``false``/``true`` terminals. ``order`` maps variable index to variable.
    """

    order: tuple[EventVar, ...]
    nodes: list[tuple[int, int, int]] = field(default_factory=list)
    root: int = FALSE

    def __len__(self) -> int:
        """Number of decision nodes (terminals excluded)."""
        return len(self.nodes)

    def node(self, node_id: int) -> tuple[int, int, int]:
        """Decision node payload for ``node_id >= 2``."""
        return self.nodes[node_id - 2]

    def probability(self, probs: Mapping[EventVar, float]) -> float:
        """Exact probability of the encoded function: one bottom-up pass."""
        cache: dict[int, float] = {FALSE: 0.0, TRUE: 1.0}
        for node_id in range(2, len(self.nodes) + 2):
            var_index, low, high = self.node(node_id)
            p = float(probs[self.order[var_index]])
            cache[node_id] = (1.0 - p) * cache[low] + p * cache[high]
        return cache[self.root]

    def as_arrays(self) -> tuple:
        """Flat array export: ``(var_index, low, high)`` int64 columns.

        The vectorized handoff to :mod:`repro.circuit`: rows are decision
        nodes in id order (node ``i + 2`` at row ``i``), entries reference
        node ids with 0/1 the terminals. Children always precede parents,
        so a consumer can lower the table in one forward pass.
        """
        import numpy as np

        if not self.nodes:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        table = np.asarray(self.nodes, dtype=np.int64)
        return table[:, 0], table[:, 1], table[:, 2]

    def evaluate(self, world: Mapping[EventVar, bool]) -> bool:
        """Evaluate the encoded function on a world."""
        node_id = self.root
        while node_id not in (FALSE, TRUE):
            var_index, low, high = self.node(node_id)
            node_id = high if world.get(self.order[var_index], False) else low
        return node_id == TRUE


def default_variable_order(dnf: DNF) -> tuple[EventVar, ...]:
    """A locality-preserving order: co-occurring variables stay adjacent.

    Traverses each connected component of the co-occurrence graph breadth-
    first from its most frequent variable, expanding neighbours by descending
    frequency. For hierarchical lineage this keeps every root variable next
    to its dependents (``r_a`` before ``s_{a,*}``), which is what yields the
    linear-size OBDDs of [17]; a global frequency sort would instead separate
    the groups and blow the width up exponentially.
    """
    counts: Counter[EventVar] = Counter()
    adjacency: dict[EventVar, set[EventVar]] = {}
    for clause in dnf.clauses:
        counts.update(clause)
        for a in clause:
            adjacency.setdefault(a, set()).update(b for b in clause if b != a)

    def priority(var: EventVar):
        return (-counts[var], var)

    order: list[EventVar] = []
    visited: set[EventVar] = set()
    for seed in sorted(adjacency, key=priority):
        if seed in visited:
            continue
        frontier = [seed]
        visited.add(seed)
        while frontier:
            var = frontier.pop(0)
            order.append(var)
            for nxt in sorted(adjacency[var] - visited, key=priority):
                visited.add(nxt)
                frontier.append(nxt)
    return tuple(order)


def build_obdd(
    dnf: DNF,
    order: Sequence[EventVar] | None = None,
    max_nodes: int = 200_000,
    *,
    cache: SubformulaCache | None = None,
    budget=None,
) -> OBDD:
    """Compile a monotone DNF into a reduced OBDD.

    Parameters
    ----------
    dnf:
        The formula (over positive literals).
    order:
        Variable order; defaults to :func:`default_variable_order`. Must
        cover every variable of the formula.
    max_nodes:
        Construction budget; :class:`~repro.errors.CapacityError` beyond it.
    budget:
        Optional :class:`~repro.resilience.QueryBudget`; the deadline is
        checked cooperatively every few hundred created nodes.
    cache:
        Optional shared :class:`~repro.perf.SubformulaCache`. The compiled
        node table depends only on the clause structure *over order
        positions*, so two lineages that look the same once variables are
        replaced by their positions (e.g. the per-answer lineages of a
        Section 6.1 multi-answer query) share one compilation; a hit returns
        a fresh :class:`OBDD` wrapping the cached nodes under the new order.

    Examples
    --------
    >>> x, y = EventVar("R", (1,)), EventVar("R", (2,))
    >>> d = build_obdd(DNF([{x}, {y}]))
    >>> len(d)                      # x ∨ y: two decision nodes
    2
    >>> d.probability({x: 0.5, y: 0.5})
    0.75
    """
    variables = dnf.variables()
    if order is None:
        order = default_variable_order(dnf)
    order = tuple(order)
    missing = variables - set(order)
    if missing:
        raise ValueError(f"order misses variables: {sorted(map(str, missing))}")
    position = {v: i for i, v in enumerate(order)}

    structure_key = None
    if cache is not None:
        structure_key = (
            "obdd",
            frozenset(
                frozenset(position[v] for v in c) for c in dnf.clauses
            ),
        )
        hit = cache.get(structure_key)
        if hit is not None:
            nodes, root = hit
            return OBDD(order=order, nodes=list(nodes), root=root)

    obdd = OBDD(order=order)
    unique: dict[tuple[int, int, int], int] = {}

    def make(var_index: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var_index, low, high)
        hit = unique.get(key)
        if hit is not None:
            return hit
        if len(obdd.nodes) >= max_nodes:
            raise CapacityError(
                f"OBDD construction exceeded {max_nodes} nodes; the lineage "
                f"has no small OBDD under this order (cf. Theorem 4.2)"
            )
        if budget is not None and len(obdd.nodes) % 256 == 0:
            budget.checkpoint("obdd")
        obdd.nodes.append(key)
        node_id = len(obdd.nodes) + 1
        unique[key] = node_id
        return node_id

    memo: dict[frozenset[frozenset[EventVar]], int] = {}

    def compile_clauses(clauses: frozenset[frozenset[EventVar]]) -> int:
        if not clauses:
            return FALSE
        if frozenset() in clauses:
            return TRUE
        hit = memo.get(clauses)
        if hit is not None:
            return hit
        # branch on the order-minimal variable present in the formula
        var = min((v for c in clauses for v in c), key=position.__getitem__)
        high_clauses = frozenset(
            c - {var} for c in clauses if var in c
        ) | frozenset(c for c in clauses if var not in c)
        low_clauses = frozenset(c for c in clauses if var not in c)
        high = compile_clauses(high_clauses)
        low = compile_clauses(low_clauses)
        node_id = make(position[var], low, high)
        memo[clauses] = node_id
        return node_id

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000 + 4 * len(order)))
    with _span(
        "build_obdd", variables=len(order), clauses=len(dnf.clauses)
    ) as sp:
        try:
            obdd.root = compile_clauses(dnf.clauses)
        finally:
            sys.setrecursionlimit(old_limit)
        sp.add("obdd_nodes", len(obdd))
    if cache is not None:
        cache.put(structure_key, (tuple(obdd.nodes), obdd.root))
    return obdd


def obdd_probability(
    dnf: DNF,
    probs: Mapping[EventVar, float],
    order: Sequence[EventVar] | None = None,
    max_nodes: int = 200_000,
    *,
    cache: SubformulaCache | None = None,
) -> float:
    """Convenience: compile and evaluate in one call."""
    return build_obdd(dnf, order, max_nodes, cache=cache).probability(probs)
