"""Monte-Carlo estimation of DNF probability.

Two estimators, used as approximate baselines (Section 7 mentions sampling
[21, 13] as the standard fallback when exact evaluation is infeasible):

* :func:`naive_monte_carlo` — sample full worlds, count satisfying ones.
  Unbiased, but needs many samples when ``Pr(F)`` is small.
* :func:`karp_luby` — the classic FPRAS for DNF counting: sample a clause
  with probability proportional to its weight, then a world conditioned on
  that clause being true, and estimate the union via the first-satisfied-
  clause indicator. Relative-error guarantees independent of ``Pr(F)``.

Both accept any random generator with ``random()`` (``random.Random`` or a
seeded instance), keeping runs reproducible.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.errors import InferenceError
from repro.lineage.dnf import DNF, EventVar


def naive_monte_carlo(
    dnf: DNF,
    probs: Mapping[EventVar, float],
    samples: int,
    rng: random.Random | None = None,
) -> float:
    """Estimate ``Pr(dnf)`` by sampling *samples* independent worlds."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    if dnf.is_true:
        return 1.0
    if dnf.is_false:
        return 0.0
    rng = rng or random.Random()
    variables = sorted(dnf.variables())
    clauses = [sorted(c) for c in dnf.clauses]
    hits = 0
    for _ in range(samples):
        world = {v: rng.random() < probs[v] for v in variables}
        if any(all(world[v] for v in c) for c in clauses):
            hits += 1
    return hits / samples


def karp_luby(
    dnf: DNF,
    probs: Mapping[EventVar, float],
    samples: int,
    rng: random.Random | None = None,
) -> float:
    """Karp-Luby estimator for the probability of a DNF union.

    Let ``w_i = Pr(clause_i)`` and ``S = Σ w_i``. Repeatedly sample a clause
    ``i`` with probability ``w_i / S`` and a world conditioned on clause ``i``
    holding; the indicator that ``i`` is the *first* satisfied clause, scaled
    by ``S``, is an unbiased estimator of ``Pr(∪ clauses)`` with variance
    bounded independently of how small the answer is.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    if dnf.is_true:
        return 1.0
    if dnf.is_false:
        return 0.0
    rng = rng or random.Random()
    clauses = sorted(dnf.clauses, key=lambda c: sorted(map(str, c)))
    weights = []
    for c in clauses:
        w = 1.0
        for v in c:
            w *= probs[v]
        weights.append(w)
    total = sum(weights)
    if total == 0.0:
        return 0.0
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)
    variables = sorted(dnf.variables())
    hits = 0
    for _ in range(samples):
        r = rng.random() * total
        index = _bisect(cumulative, r)
        chosen = clauses[index]
        world = {
            v: True if v in chosen else rng.random() < probs[v]
            for v in variables
        }
        first = None
        for j, c in enumerate(clauses):
            if all(world[v] for v in c):
                first = j
                break
        if first is None:
            raise InferenceError("sampled world does not satisfy its own clause")
        if first == index:
            hits += 1
    return total * hits / samples


def _bisect(cumulative: list[float], r: float) -> int:
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < r:
            lo = mid + 1
        else:
            hi = mid
    return lo
