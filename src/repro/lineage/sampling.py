"""Monte-Carlo estimation of DNF probability.

Two estimators, used as approximate baselines (Section 7 mentions sampling
[21, 13] as the standard fallback when exact evaluation is infeasible):

* :func:`naive_monte_carlo` — sample full worlds, count satisfying ones.
  Unbiased, but needs many samples when ``Pr(F)`` is small.
* :func:`karp_luby` — the classic FPRAS for DNF counting: sample a clause
  with probability proportional to its weight, then a world conditioned on
  that clause being true, and estimate the union via the first-satisfied-
  clause indicator. Relative-error guarantees independent of ``Pr(F)``.

Each estimator has two interchangeable implementations selected by the
``method`` flag:

* ``"vectorized"`` (the ``"auto"`` default) — worlds are drawn in NumPy
  blocks: one ``(batch, n_vars)`` uniform matrix compared against the
  probability vector, clause satisfaction decided by one matrix product
  against the clause-incidence matrix, and Karp-Luby's first-satisfied-clause
  check done with ``argmax`` over the ``(batch, n_clauses)`` boolean array.
  One to two orders of magnitude faster than the loop at benchmark sample
  counts.
* ``"scalar"`` — the original pure-Python loop, kept as the readable
  reference implementation the statistical tests cross-check against.

Both paths are unbiased and statistically equivalent; they consume
randomness differently, so estimates agree only within sampling tolerance.
The scalar path accepts any generator with ``random()`` (``random.Random``
or a seeded instance); the vectorized path accepts ``numpy.random.Generator``
directly or derives one deterministically from the given ``random.Random``,
keeping runs reproducible either way.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Iterator, Mapping

import numpy as np

from repro.errors import InferenceError
from repro.lineage.dnf import DNF, EventVar, EventVarInterner

#: Soft cap on world-matrix cells per batch; batches shrink as formulas grow
#: so peak memory stays flat while throughput stays matrix-shaped.
_BATCH_CELL_BUDGET = 4_000_000

_METHODS = ("auto", "vectorized", "scalar")


def _check_method(method: str) -> bool:
    """Validate *method*; True when the vectorized path should run."""
    if method not in _METHODS:
        raise ValueError(
            f"unknown sampling method {method!r}; expected one of {_METHODS}"
        )
    return method != "scalar"


def numpy_generator(
    rng: random.Random | np.random.Generator | None,
) -> np.random.Generator:
    """A NumPy generator matching *rng*.

    ``numpy.random.Generator`` instances pass through; a ``random.Random``
    seeds a fresh generator from its stream (deterministic given the
    Random's state); ``None`` gives an OS-seeded generator.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    return np.random.default_rng(rng.getrandbits(128))


def _batches(samples: int, width: int, batch_size: int | None) -> Iterator[int]:
    """Yield per-batch sample counts summing to *samples*."""
    if batch_size is None:
        batch_size = max(256, _BATCH_CELL_BUDGET // max(width, 1))
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    remaining = samples
    while remaining > 0:
        n = min(batch_size, remaining)
        yield n
        remaining -= n


def _incidence(
    clauses: list[frozenset[int]], n_vars: int
) -> tuple[np.ndarray, np.ndarray]:
    """Clause-incidence matrix (float32 for the matmul) and clause sizes."""
    inc = np.zeros((len(clauses), n_vars), dtype=np.float32)
    for row, clause in enumerate(clauses):
        inc[row, list(clause)] = 1.0
    sizes = inc.sum(axis=1)
    return inc, sizes


def _interned(
    dnf: DNF, probs: Mapping[EventVar, float]
) -> tuple[list[frozenset[int]], np.ndarray]:
    """Clauses over dense ids plus the id-indexed probability vector."""
    interner = EventVarInterner()
    for v in sorted(dnf.variables()):
        interner.intern(v)
    clauses = [
        frozenset(interner.id_of(v) for v in c)
        for c in sorted(dnf.clauses, key=lambda c: sorted(map(str, c)))
    ]
    p = np.asarray(interner.probability_vector(probs), dtype=np.float64)
    return clauses, p


def naive_monte_carlo(
    dnf: DNF,
    probs: Mapping[EventVar, float],
    samples: int,
    rng: random.Random | np.random.Generator | None = None,
    *,
    method: str = "auto",
    batch_size: int | None = None,
) -> float:
    """Estimate ``Pr(dnf)`` by sampling *samples* independent worlds."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    vectorized = _check_method(method)
    if dnf.is_true:
        return 1.0
    if dnf.is_false:
        return 0.0
    if vectorized:
        return _naive_vectorized(dnf, probs, samples, rng, batch_size)
    if isinstance(rng, np.random.Generator):
        raise TypeError("the scalar path needs a random.Random generator")
    rng = rng or random.Random()
    variables = sorted(dnf.variables())
    clauses = [sorted(c) for c in dnf.clauses]
    hits = 0
    for _ in range(samples):
        world = {v: rng.random() < probs[v] for v in variables}
        if any(all(world[v] for v in c) for c in clauses):
            hits += 1
    return hits / samples


def _naive_vectorized(
    dnf: DNF,
    probs: Mapping[EventVar, float],
    samples: int,
    rng: random.Random | np.random.Generator | None,
    batch_size: int | None,
) -> float:
    clauses, p = _interned(dnf, probs)
    inc, sizes = _incidence(clauses, p.size)
    gen = numpy_generator(rng)
    hits = 0
    for n in _batches(samples, p.size, batch_size):
        worlds = gen.random((n, p.size)) < p
        satisfied_vars = worlds.astype(np.float32) @ inc.T
        hits += int(np.any(satisfied_vars >= sizes, axis=1).sum())
    return hits / samples


def karp_luby(
    dnf: DNF,
    probs: Mapping[EventVar, float],
    samples: int,
    rng: random.Random | np.random.Generator | None = None,
    *,
    method: str = "auto",
    batch_size: int | None = None,
) -> float:
    """Karp-Luby estimator for the probability of a DNF union.

    Let ``w_i = Pr(clause_i)`` and ``S = Σ w_i``. Repeatedly sample a clause
    ``i`` with probability ``w_i / S`` and a world conditioned on clause ``i``
    holding; the indicator that ``i`` is the *first* satisfied clause, scaled
    by ``S``, is an unbiased estimator of ``Pr(∪ clauses)`` with variance
    bounded independently of how small the answer is.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    vectorized = _check_method(method)
    if dnf.is_true:
        return 1.0
    if dnf.is_false:
        return 0.0
    if vectorized:
        return _karp_luby_vectorized(dnf, probs, samples, rng, batch_size)
    if isinstance(rng, np.random.Generator):
        raise TypeError("the scalar path needs a random.Random generator")
    rng = rng or random.Random()
    clauses = sorted(dnf.clauses, key=lambda c: sorted(map(str, c)))
    weights = []
    for c in clauses:
        w = 1.0
        # Sorted so the rounding order (and hence the weight's last bits)
        # does not depend on the process's hash seed.
        for v in sorted(c):
            w *= probs[v]
        weights.append(w)
    total = sum(weights)
    if total == 0.0:
        return 0.0
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)
    variables = sorted(dnf.variables())
    hits = 0
    for _ in range(samples):
        r = rng.random() * total
        index = bisect_left(cumulative, r)
        chosen = clauses[index]
        world = {
            v: True if v in chosen else rng.random() < probs[v]
            for v in variables
        }
        first = None
        for j, c in enumerate(clauses):
            if all(world[v] for v in c):
                first = j
                break
        if first is None:
            raise InferenceError("sampled world does not satisfy its own clause")
        if first == index:
            hits += 1
    return total * hits / samples


def _karp_luby_vectorized(
    dnf: DNF,
    probs: Mapping[EventVar, float],
    samples: int,
    rng: random.Random | np.random.Generator | None,
    batch_size: int | None,
) -> float:
    clauses, p = _interned(dnf, probs)
    n_vars = p.size
    inc, sizes = _incidence(clauses, n_vars)
    weights = np.array(
        [float(np.prod(p[list(c)])) for c in clauses], dtype=np.float64
    )
    cumulative = np.cumsum(weights)
    total = float(cumulative[-1])
    if total == 0.0:
        return 0.0

    # Ragged clause → padded index matrix; the pad column n_vars is a scratch
    # variable so forcing it True is a no-op on the real world.
    max_len = max(len(c) for c in clauses)
    padded = np.full((len(clauses), max_len), n_vars, dtype=np.intp)
    for row, clause in enumerate(clauses):
        members = sorted(clause)
        padded[row, : len(members)] = members
    p_ext = np.append(p, 1.0)

    gen = numpy_generator(rng)
    hits = 0
    for n in _batches(samples, n_vars, batch_size):
        r = gen.random(n) * total
        chosen = np.searchsorted(cumulative, r, side="left")
        worlds = gen.random((n, n_vars + 1)) < p_ext
        worlds[np.arange(n)[:, None], padded[chosen]] = True
        satisfied_vars = worlds[:, :n_vars].astype(np.float32) @ inc.T
        satisfied = satisfied_vars >= sizes
        if not bool(satisfied[np.arange(n), chosen].all()):
            raise InferenceError("sampled world does not satisfy its own clause")
        first = np.argmax(satisfied, axis=1)
        hits += int((first == chosen).sum())
    return total * hits / samples
