"""Event algebra over lineages: unions of conjunctive queries and more.

The lineage view makes Boolean combinations of (self-join-free) conjunctive
queries free: the lineage of a disjunction is the union of the clause sets,
of a conjunction the pairwise clause products — both stay monotone DNFs over
the same tuple events, so every exact and approximate engine in
:mod:`repro.lineage` applies unchanged. This lifts the paper's machinery
from CQs to **UCQs** (unions of conjunctive queries) and to conditional
probabilities of query events, with correlations through shared tuples
handled for free (the DNFs share variables).

Note the queries may share *relations* here (that is the point of a union);
the no-self-join restriction applies within each conjunct.
"""

from __future__ import annotations

from typing import Sequence

from repro.db.database import ProbabilisticDatabase
from repro.errors import ProbabilityError
from repro.lineage.dnf import DNF, EventVar, lineage_of_query
from repro.lineage.exact import dnf_probability
from repro.query.syntax import ConjunctiveQuery


def disjoin(f: DNF, g: DNF) -> DNF:
    """``f ∨ g``: union of the clause sets."""
    return DNF(f.clauses | g.clauses)


def conjoin(f: DNF, g: DNF) -> DNF:
    """``f ∧ g``: pairwise clause unions (still a monotone DNF).

    Quadratic in the clause counts — fine for the query-combination use
    case, where each conjunct's lineage is per-answer sized.
    """
    if f.is_false or g.is_false:
        return DNF()
    return DNF(cf | cg for cf in f.clauses for cg in g.clauses)


def _combined_lineage(
    queries: Sequence[ConjunctiveQuery], db: ProbabilisticDatabase
) -> tuple[list[DNF], dict[EventVar, float]]:
    dnfs: list[DNF] = []
    probs: dict[EventVar, float] = {}
    for q in queries:
        f, p = lineage_of_query(q, db)
        dnfs.append(f)
        probs.update(p)
    return dnfs, probs


def ucq_probability(
    queries: Sequence[ConjunctiveQuery],
    db: ProbabilisticDatabase,
    max_calls: int = 2_000_000,
) -> float:
    """Exact ``Pr(q1 ∨ q2 ∨ ...)`` — a union of conjunctive queries.

    Shared tuples across the disjuncts correlate them; the union of the
    lineages accounts for that exactly.

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> _ = db.add_relation("S", ("A",), {(1,): 0.5})
    >>> ucq_probability(
    ...     [parse_query("R(x)"), parse_query("S(x)")], db)
    0.75
    """
    dnfs, probs = _combined_lineage(queries, db)
    union = DNF()
    for f in dnfs:
        union = disjoin(union, f)
    return dnf_probability(union, probs, max_calls=max_calls)


def conjunction_probability(
    queries: Sequence[ConjunctiveQuery],
    db: ProbabilisticDatabase,
    max_calls: int = 2_000_000,
) -> float:
    """Exact ``Pr(q1 ∧ q2 ∧ ...)`` over the same database."""
    dnfs, probs = _combined_lineage(queries, db)
    combined = DNF([frozenset()])
    for f in dnfs:
        combined = conjoin(combined, f)
    return dnf_probability(combined, probs, max_calls=max_calls)


def conditional_probability(
    query: ConjunctiveQuery,
    given: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    max_calls: int = 2_000_000,
) -> float:
    """``Pr(query | given)`` — e.g. "how likely is the alarm, given a
    maintenance ticket was filed?".

    Raises
    ------
    ProbabilityError
        If the conditioning event has probability zero.
    """
    dnfs, probs = _combined_lineage([query, given], db)
    denominator = dnf_probability(dnfs[1], probs, max_calls=max_calls)
    if denominator == 0.0:
        raise ProbabilityError(
            f"conditioning event {given} has probability 0"
        )
    joint = dnf_probability(
        conjoin(dnfs[0], dnfs[1]), probs, max_calls=max_calls
    )
    return joint / denominator
