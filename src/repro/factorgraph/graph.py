"""Construction of AND/OR factor graphs from query plans.

[25] models a query *plan* (not a query — Figure 1 of the paper shows two
different graphs for the two plans of Example 3.6) as a directed graph:

* every base tuple is a leaf random variable;
* every join output tuple is an And gate over the two joined tuples;
* every projection output tuple is an Or gate over all tuples projecting to
  it.

Nothing is folded into numbers and no nodes are merged, so the graph size is
the size of the full intermediate results. The partial-lineage And-Or network
is obtained from this graph by deleting extensionally-folded nodes and
contracting hash-merged ones — the minor relation of Proposition 4.3, which
``tests/factorgraph`` verifies on concrete instances via treewidth
monotonicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.network import EPSILON, AndOrNetwork
from repro.core.plan import Filter, Join, Plan, Project, Scan, Select, plan_schema
from repro.db.database import ProbabilisticDatabase
from repro.db.schema import Row
from repro.errors import PlanError
from repro.query.syntax import Constant, Variable


@dataclass
class FactorGraph:
    """The AND/OR factor graph ``G_f`` of a plan on an instance.

    ``graph`` is a DAG whose nodes carry a ``kind`` attribute (``"leaf"``,
    ``"and"``, ``"or"``) and, for leaves, a ``prob`` attribute. ``outputs``
    maps each output row of the plan to its node.
    """

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    outputs: dict[Row, int] = field(default_factory=dict)
    _counter: int = 0

    def _new_node(self, kind: str, prob: float | None = None) -> int:
        node = self._counter
        self._counter += 1
        if prob is None:
            self.graph.add_node(node, kind=kind)
        else:
            self.graph.add_node(node, kind=kind, prob=prob)
        return node

    def leaf(self, prob: float) -> int:
        """Add a base-tuple variable."""
        return self._new_node("leaf", prob)

    def gate(self, kind: str, inputs: list[int]) -> int:
        """Add an And/Or gate with edges from its inputs."""
        node = self._new_node(kind)
        for i in inputs:
            self.graph.add_edge(i, node)
        return node

    def undirected(self) -> nx.Graph:
        """The underlying undirected graph (for treewidth)."""
        return self.graph.to_undirected()


def build_factor_graph(
    plan: Plan, db: ProbabilisticDatabase
) -> FactorGraph:
    """Evaluate *plan* intensionally, building the Sen-Deshpande graph.

    The returned graph has one node per tuple of every intermediate relation,
    so its size is the full intensional blow-up; build it only on the modest
    instances used for the Prop 4.3 / Cor 4.4 measurements.
    """
    plan_schema(plan, db)  # validate
    fg = FactorGraph()

    def walk(p: Plan) -> dict[Row, int]:
        if isinstance(p, Scan):
            return _scan(p, db, fg)
        if isinstance(p, Select):
            child = walk(p.child)
            idx = {a: i for i, a in enumerate(plan_schema(p.child, db))}
            out = {}
            for row, node in child.items():
                if all(row[idx[a]] == v for a, v in p.conditions):
                    out[row] = node
            return out
        if isinstance(p, Filter):
            child = walk(p.child)
            idx = {a: i for i, a in enumerate(plan_schema(p.child, db))}
            return {
                row: node
                for row, node in child.items()
                if all(c.matches(row, idx.__getitem__) for c in p.predicates)
            }
        if isinstance(p, Project):
            child = walk(p.child)
            schema = plan_schema(p.child, db)
            positions = [schema.index(a) for a in p.attributes]
            groups: dict[Row, list[int]] = {}
            for row, node in child.items():
                key = tuple(row[i] for i in positions)
                groups.setdefault(key, []).append(node)
            return {
                key: fg.gate("or", nodes) for key, nodes in groups.items()
            }
        if isinstance(p, Join):
            left = walk(p.left)
            right = walk(p.right)
            lschema = plan_schema(p.left, db)
            rschema = plan_schema(p.right, db)
            lpos = [lschema.index(a) for a in p.on]
            rpos = [rschema.index(a) for a in p.on]
            keep = [i for i, a in enumerate(rschema) if a not in set(p.on)]
            index: dict[Row, list[tuple[Row, int]]] = {}
            for row, node in right.items():
                index.setdefault(tuple(row[i] for i in rpos), []).append((row, node))
            out = {}
            for lrow, lnode in left.items():
                for rrow, rnode in index.get(tuple(lrow[i] for i in lpos), ()):
                    merged = lrow + tuple(rrow[i] for i in keep)
                    out[merged] = fg.gate("and", [lnode, rnode])
            return out
        raise PlanError(f"unknown plan node {p!r}")

    fg.outputs = walk(plan)
    return fg


def _scan(scan: Scan, db: ProbabilisticDatabase, fg: FactorGraph) -> dict[Row, int]:
    base = db[scan.relation]
    if scan.terms is None:
        return {row: fg.leaf(p) for row, p in base.items()}
    var_first: dict[str, int] = {}
    for i, t in enumerate(scan.terms):
        if isinstance(t, Variable) and t.name not in var_first:
            var_first[t.name] = i
    out: dict[Row, int] = {}
    for row, p in base.items():
        binding: dict[str, object] = {}
        ok = True
        for i, t in enumerate(scan.terms):
            if isinstance(t, Constant):
                if row[i] != t.value:
                    ok = False
                    break
            else:
                prev = binding.setdefault(t.name, row[i])
                if prev != row[i]:
                    ok = False
                    break
        if ok:
            out[tuple(row[i] for i in var_first.values())] = fg.leaf(p)
    return out


def network_to_graph(net: AndOrNetwork, include_epsilon: bool = False) -> nx.Graph:
    """Undirected view of an And-Or network ``G_n`` (for treewidth comparison).

    ε is excluded by default: it is a constant, contributes no correlation,
    and would artificially connect otherwise-independent components.
    """
    g = nx.Graph()
    for v in net.nodes():
        if v == EPSILON and not include_epsilon:
            continue
        g.add_node(v)
        for w, _ in net.parents(v):
            if w == EPSILON and not include_epsilon:
                continue
            g.add_edge(w, v)
    return g
