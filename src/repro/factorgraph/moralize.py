"""Factor decomposition and moralisation (Figure 2, Section 4.3.2).

Inference in a Bayesian network built from a factor graph ``G`` operates on
the *moralised* graph ``M(G)`` (parents of every node pairwise connected),
whose treewidth can be as large as the biggest gate fan-in. [25] exploit
decomposability [22] to first split every gate into a chain of binary gates —
``D(G)`` — so only ``tw(M(D(G)))`` matters. The chain of inequalities the
paper leans on (Sec. 4.3.2, Cor. 4.4) is::

    tw(G) ≤ tw(M(D(G))) ≤ tw(M(G))          and          tw(G_n) ≤ tw(G_f)

which the ``benchmarks/test_fig2_decomposition.py`` and
``benchmarks/test_prop43_minor.py`` harnesses measure on generated instances.
"""

from __future__ import annotations

import networkx as nx

from repro.lineage.treewidth import treewidth_upper_bound


def decompose(graph: nx.DiGraph) -> nx.DiGraph:
    """``D(G)``: split every gate with fan-in > 2 into a binary chain.

    Auxiliary nodes are named ``(node, "aux", i)`` and inherit the gate's
    ``kind``; the semantics (composition of the same associative connective)
    is unchanged.
    """
    out = nx.DiGraph()
    for node, data in graph.nodes(data=True):
        out.add_node(node, **data)
    for node in graph.nodes():
        parents = sorted(graph.predecessors(node), key=str)
        if len(parents) <= 2:
            for p in parents:
                out.add_edge(p, node)
            continue
        kind = graph.nodes[node].get("kind", "or")
        prev = parents[0]
        for i, parent in enumerate(parents[1:-1]):
            aux = (node, "aux", i)
            out.add_node(aux, kind=kind)
            out.add_edge(prev, aux)
            out.add_edge(parent, aux)
            prev = aux
        out.add_edge(prev, node)
        out.add_edge(parents[-1], node)
    return out


def moralize(graph: nx.DiGraph) -> nx.Graph:
    """``M(G)``: connect all co-parents, then drop edge directions."""
    moral = graph.to_undirected()
    for node in graph.nodes():
        parents = list(graph.predecessors(node))
        for i, a in enumerate(parents):
            for b in parents[i + 1 :]:
                moral.add_edge(a, b)
    return moral


def treewidth_bound(graph: nx.Graph | nx.DiGraph, heuristic: str = "min_fill") -> int:
    """Heuristic treewidth upper bound, accepting directed graphs too."""
    if isinstance(graph, nx.DiGraph):
        graph = graph.to_undirected()
    return treewidth_upper_bound(graph, heuristic)
