"""AND/OR factor graphs of Sen-Deshpande [25] (Section 4.3.2).

``graph`` builds, from a plan and a database, the factor graph ``G_f`` whose
nodes are base tuples and intermediate tuples and whose gates mirror the
plan's operators — *without* the paper's extensional folding or hashing, which
is exactly what makes the partial-lineage network ``G_n`` a minor of it
(Proposition 4.3). ``moralize`` provides the ``D(G)`` decomposition and
``M(G)`` moralisation of Figure 2, and the treewidth comparisons behind
Corollary 4.4.
"""

from repro.factorgraph.graph import FactorGraph, build_factor_graph, network_to_graph
from repro.factorgraph.moralize import decompose, moralize, treewidth_bound

__all__ = [
    "FactorGraph",
    "build_factor_graph",
    "network_to_graph",
    "decompose",
    "moralize",
    "treewidth_bound",
]
