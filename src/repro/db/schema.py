"""Relation schemas.

A schema is a relation name plus an ordered list of attribute names. Tuples
are plain Python tuples positionally aligned with the attribute list; values
must be hashable (we use ints and strings throughout the test suite and the
workload generator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import SchemaError

#: Type alias for a database tuple. Values are positional, hashable scalars.
Row = tuple


@dataclass(frozen=True)
class RelationSchema:
    """Name and attributes of a relation.

    Parameters
    ----------
    name:
        Relation name, a Python identifier (e.g. ``"S1"``).
    attributes:
        Ordered attribute names, each a unique identifier (e.g. ``("H", "A",
        "B")``).

    Examples
    --------
    >>> s = RelationSchema("S1", ("H", "A", "B"))
    >>> s.arity
    3
    >>> s.index_of("A")
    1
    """

    name: str
    attributes: tuple[str, ...]
    _positions: dict[str, int] = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid relation name: {self.name!r}")
        attrs = tuple(self.attributes)
        object.__setattr__(self, "attributes", attrs)
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attributes in schema {self.name}: {attrs}")
        for a in attrs:
            if not a or not a.isidentifier():
                raise SchemaError(f"invalid attribute name: {a!r}")
        object.__setattr__(self, "_positions", {a: i for i, a in enumerate(attrs)})

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def index_of(self, attribute: str) -> int:
        """Return the position of *attribute*, raising :class:`SchemaError` if absent."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name} has no attribute {attribute!r}; "
                f"attributes are {self.attributes}"
            ) from None

    def indices_of(self, attributes: Sequence[str]) -> tuple[int, ...]:
        """Return positions for several attributes, in the order given."""
        return tuple(self.index_of(a) for a in attributes)

    def check_row(self, row: Iterable) -> Row:
        """Validate that *row* matches this schema's arity and return it as a tuple."""
        r = tuple(row)
        if len(r) != self.arity:
            raise SchemaError(
                f"row {r!r} has arity {len(r)}, but relation {self.name} "
                f"expects arity {self.arity}"
            )
        return r

    def project(self, attributes: Sequence[str]) -> "RelationSchema":
        """Schema obtained by keeping only *attributes* (in the given order)."""
        idx = self.indices_of(attributes)  # validates
        del idx
        return RelationSchema(self.name, tuple(attributes))

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"
