"""Probabilistic databases: named collections of independent relations.

Per Section 2 of the paper, a probabilistic database is the *product space* of
its relations: relations are mutually independent, and each relation is
tuple-independent. :class:`ProbabilisticDatabase` is therefore just a name ->
relation mapping plus convenience constructors and world-level accounting.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, Mapping, Sequence

from repro.db.relation import ProbabilisticRelation
from repro.db.schema import Row
from repro.errors import SchemaError


#: A tuple reference: (relation name, row). This is the identity of a tuple's
#: Boolean event variable in lineage expressions.
TupleRef = tuple[str, Row]


class ProbabilisticDatabase:
    """A set of independent probabilistic relations, addressed by name.

    Examples
    --------
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> _ = db.add_relation("S", ("A", "B"), {(1, 2): 0.9})
    >>> db["R"].probability((1,))
    0.5
    """

    def __init__(self, relations: Iterable[ProbabilisticRelation] = ()) -> None:
        self._relations: Dict[str, ProbabilisticRelation] = {}
        self._hooks: list = []
        self._version = 0
        # Serialises transaction commits against snapshot captures so a
        # reader never sees a half-installed multi-relation commit.
        self._txn_lock = threading.Lock()
        self.subscribe(self._bump_version)
        for rel in relations:
            self.attach(rel)

    def _bump_version(self, _name: str) -> None:
        self._version += 1

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation (attach, insert,
        probability update, delete, transaction commit). Snapshots and
        optimistic transactions compare versions to detect concurrent
        changes."""
        return self._version

    # ----------------------------------------------------------- population
    def attach(self, relation: ProbabilisticRelation) -> ProbabilisticRelation:
        """Register an existing relation object under its schema name."""
        if relation.name in self._relations:
            raise SchemaError(f"relation {relation.name} already exists")
        self._relations[relation.name] = relation
        for hook in self._hooks:
            relation.subscribe(hook)
            hook(relation.name)
        return relation

    def subscribe(self, hook) -> None:
        """Register a database-wide mutation hook.

        The hook is wired into every current *and future* relation (and
        fires once when a new relation is attached), so a subscriber —
        e.g. :meth:`repro.circuit.CircuitCache.watch` — sees every change
        to the instance through one call.
        """
        self._hooks.append(hook)
        for rel in self:
            rel.subscribe(hook)

    def add_relation(
        self,
        name: str,
        attributes: Sequence[str],
        rows: Mapping[Row, float] | Iterable[tuple[Row, float]] | None = None,
    ) -> ProbabilisticRelation:
        """Create, register, and return a new relation."""
        return self.attach(ProbabilisticRelation.create(name, attributes, rows))

    # -------------------------------------------------------------- access
    def __getitem__(self, name: str) -> ProbabilisticRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"unknown relation {name!r}; known: {sorted(self._relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[ProbabilisticRelation]:
        return iter(self._relations.values())

    def names(self) -> list[str]:
        """Names of all relations, in registration order."""
        return list(self._relations)

    def probability(self, ref: TupleRef) -> float:
        """Marginal probability of a tuple reference ``(relation, row)``."""
        name, row = ref
        return self[name].probability(row)

    # ---------------------------------------------------------- accounting
    def uncertain_tuples(self) -> list[TupleRef]:
        """All tuple references with probability strictly below 1."""
        return [
            (rel.name, row) for rel in self for row in rel.uncertain_rows()
        ]

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self)

    def copy(self) -> "ProbabilisticDatabase":
        """Deep-enough copy: relations are copied, rows are shared immutables."""
        out = ProbabilisticDatabase()
        for rel in self:
            out.attach(rel.copy())
        return out

    # --------------------------------------------------------- transactions
    def snapshot(self) -> "ProbabilisticDatabase":
        """A cheap read view of the *currently committed* state.

        The snapshot shares the current relation objects without wiring any
        hooks into them. Because :meth:`repro.db.txn.Transaction.commit`
        installs *new* relation objects instead of mutating the old ones in
        place, a snapshot taken before a commit keeps seeing the
        pre-commit instance — this is what gives in-flight queries snapshot
        isolation in :mod:`repro.serve`. Direct (non-transactional) calls to
        :meth:`ProbabilisticRelation.add` mutate the shared objects and are
        visible through existing snapshots; use transactions when isolation
        matters.
        """
        with self._txn_lock:
            out = ProbabilisticDatabase.__new__(ProbabilisticDatabase)
            out._relations = dict(self._relations)
            out._hooks = []
            out._version = self._version
            out._txn_lock = threading.Lock()
            return out

    def begin(self):
        """Start a buffered :class:`~repro.db.txn.Transaction` against this
        database. Alias: :meth:`transaction` (usable as a context manager)."""
        from repro.db.txn import Transaction

        return Transaction(self)

    def transaction(self):
        """Synonym for :meth:`begin`, reading naturally in ``with`` blocks::

            with db.transaction() as txn:
                txn.insert("R", (3,), 0.5)
        """
        return self.begin()

    def deterministic_instance(self) -> dict[str, set[Row]]:
        """The instance containing every tuple, ignoring probabilities.

        Used for grounding lineage: the DNF of Definition 3.5 is built over all
        tuples of the database, regardless of probability.
        """
        return {rel.name: set(rel.rows()) for rel in self}

    def __repr__(self) -> str:
        parts = ", ".join(f"{rel.name}[{len(rel)}]" for rel in self)
        return f"<ProbabilisticDatabase {parts}>"
