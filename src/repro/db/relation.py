"""Probabilistic relations.

A *tuple-independent* probabilistic relation (Section 2, Eq. 1) is a finite
set of tuples, each present independently with its own marginal probability.
:class:`ProbabilisticRelation` stores that representation and exposes the
bookkeeping the paper's algorithms need: which tuples are uncertain
(``0 < p < 1``), which are deterministic (``p == 1``), and per-value indexes
used by the data-safety checks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence

from repro.db.schema import RelationSchema, Row
from repro.errors import ProbabilityError, SchemaError


class ProbabilisticRelation:
    """A finite relation with an existence probability per tuple.

    Tuples with probability 0 are rejected at insertion: a tuple that can never
    appear carries no information and would needlessly enlarge offending-tuple
    sets. Probability 1 marks a *deterministic* tuple; per Proposition 3.2 these
    never offend a join.

    Parameters
    ----------
    schema:
        The relation's :class:`~repro.db.schema.RelationSchema`.
    rows:
        Optional initial mapping or iterable of ``(row, probability)`` pairs.

    Examples
    --------
    >>> r = ProbabilisticRelation.create("R", ("A",), {(1,): 0.5, (2,): 1.0})
    >>> r.probability((1,))
    0.5
    >>> sorted(r.uncertain_rows())
    [(1,)]
    """

    __slots__ = ("schema", "_rows", "_hooks")

    def __init__(
        self,
        schema: RelationSchema,
        rows: Mapping[Row, float] | Iterable[tuple[Row, float]] | None = None,
    ) -> None:
        self.schema = schema
        self._rows: Dict[Row, float] = {}
        self._hooks: list = []
        if rows is not None:
            items = rows.items() if isinstance(rows, Mapping) else rows
            for row, p in items:
                self.add(row, p)

    @classmethod
    def create(
        cls,
        name: str,
        attributes: Sequence[str],
        rows: Mapping[Row, float] | Iterable[tuple[Row, float]] | None = None,
    ) -> "ProbabilisticRelation":
        """Build a relation from a name, attribute list, and row/probability pairs."""
        return cls(RelationSchema(name, tuple(attributes)), rows)

    # ------------------------------------------------------------------ basics
    @property
    def name(self) -> str:
        """The relation name from the schema."""
        return self.schema.name

    def add(self, row: Iterable, probability: float) -> None:
        """Insert *row* with the given existence probability.

        Raises
        ------
        ProbabilityError
            If the probability is not in ``(0, 1]``.
        SchemaError
            If the row arity does not match the schema, or the row is already
            present (tuple-independence forbids duplicate tuples).
        """
        r = self.schema.check_row(row)
        p = float(probability)
        if not 0.0 < p <= 1.0:
            raise ProbabilityError(
                f"tuple {r!r} in {self.name} has probability {p}, expected (0, 1]"
            )
        if r in self._rows:
            raise SchemaError(f"duplicate tuple {r!r} in relation {self.name}")
        self._rows[r] = p
        for hook in self._hooks:
            hook(self.name)

    def set_probability(self, row: Iterable, probability: float) -> None:
        """Update the existence probability of an *existing* row.

        Raises
        ------
        ProbabilityError
            If the probability is not in ``(0, 1]``.
        SchemaError
            If the row is not present in the relation.
        """
        r = self.schema.check_row(row)
        p = float(probability)
        if not 0.0 < p <= 1.0:
            raise ProbabilityError(
                f"tuple {r!r} in {self.name} has probability {p}, expected (0, 1]"
            )
        if r not in self._rows:
            raise SchemaError(f"no tuple {r!r} in relation {self.name}")
        self._rows[r] = p
        for hook in self._hooks:
            hook(self.name)

    def remove(self, row: Iterable) -> None:
        """Delete an existing row from the relation.

        Raises
        ------
        SchemaError
            If the row is not present in the relation.
        """
        r = self.schema.check_row(row)
        if r not in self._rows:
            raise SchemaError(f"no tuple {r!r} in relation {self.name}")
        del self._rows[r]
        for hook in self._hooks:
            hook(self.name)

    def subscribe(self, hook) -> None:
        """Register a mutation hook, called as ``hook(relation_name)`` after
        every successful :meth:`add`, :meth:`set_probability`, or
        :meth:`remove`.

        Caches of artifacts derived from the instance (compiled lineage
        circuits, columnar base encodings) subscribe so a mutation flushes
        them instead of silently serving stale answers.
        """
        self._hooks.append(hook)

    def probability(self, row: Row) -> float:
        """Marginal probability of *row*; 0.0 if the tuple is not in the relation."""
        return self._rows.get(tuple(row), 0.0)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def items(self) -> Iterator[tuple[Row, float]]:
        """Iterate over ``(row, probability)`` pairs."""
        return iter(self._rows.items())

    def rows(self) -> list[Row]:
        """All rows, in insertion order."""
        return list(self._rows)

    # ------------------------------------------------------- derived views
    def uncertain_rows(self) -> list[Row]:
        """Rows with probability strictly below 1 (the *non-deterministic* tuples)."""
        return [r for r, p in self._rows.items() if p < 1.0]

    def deterministic_rows(self) -> list[Row]:
        """Rows with probability exactly 1."""
        return [r for r, p in self._rows.items() if p == 1.0]

    def deterministic_fraction(self) -> float:
        """Fraction of rows with probability 1 (the paper's *FDT* complement)."""
        if not self._rows:
            return 1.0
        return len(self.deterministic_rows()) / len(self._rows)

    def group_by(self, attributes: Sequence[str]) -> dict[Row, list[Row]]:
        """Group rows by their value on *attributes*.

        Returns a mapping from the projected key to the full rows carrying it.
        Used by the data-safety checks (Proposition 3.2) and by the join
        operators.
        """
        idx = self.schema.indices_of(attributes)
        groups: dict[Row, list[Row]] = {}
        for r in self._rows:
            key = tuple(r[i] for i in idx)
            groups.setdefault(key, []).append(r)
        return groups

    def satisfies_fd(self, lhs: Sequence[str], rhs: Sequence[str]) -> bool:
        """Check the functional dependency ``lhs -> rhs`` on this instance."""
        lidx = self.schema.indices_of(lhs)
        ridx = self.schema.indices_of(rhs)
        seen: dict[Row, Row] = {}
        for r in self._rows:
            key = tuple(r[i] for i in lidx)
            val = tuple(r[i] for i in ridx)
            if seen.setdefault(key, val) != val:
                return False
        return True

    def copy(self) -> "ProbabilisticRelation":
        """Shallow copy (rows and probabilities are immutable values)."""
        out = ProbabilisticRelation(self.schema)
        out._rows = dict(self._rows)
        return out

    def __repr__(self) -> str:
        return f"<ProbabilisticRelation {self.schema} with {len(self)} tuples>"
