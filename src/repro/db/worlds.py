"""Possible-worlds enumeration: the semantic ground truth.

Definition 2.1 of the paper defines the meaning of query evaluation as a sum
over worlds. This module implements that definition literally — exponentially,
over the uncertain tuples only — so that every efficient evaluator in the
library can be checked against it on small instances.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.db.database import ProbabilisticDatabase, TupleRef
from repro.db.schema import Row
from repro.errors import CapacityError

#: A world: a deterministic instance, relation name -> set of present rows.
World = dict[str, set[Row]]

#: Safety valve: refuse to enumerate more than 2**MAX_UNCERTAIN worlds.
MAX_UNCERTAIN = 22


def enumerate_worlds(
    db: ProbabilisticDatabase, max_uncertain: int = MAX_UNCERTAIN
) -> Iterator[tuple[World, float]]:
    """Yield every possible world of *db* together with its probability.

    Deterministic tuples (probability 1) are present in every world; the
    enumeration ranges over the ``2**u`` subsets of the ``u`` uncertain tuples.

    Raises
    ------
    CapacityError
        If the database has more than *max_uncertain* uncertain tuples.
    """
    uncertain: list[TupleRef] = db.uncertain_tuples()
    if len(uncertain) > max_uncertain:
        raise CapacityError(
            f"{len(uncertain)} uncertain tuples exceed the enumeration "
            f"limit of {max_uncertain}"
        )
    base: World = {rel.name: set(rel.deterministic_rows()) for rel in db}
    probs = [db.probability(ref) for ref in uncertain]
    n = len(uncertain)
    for mask in range(1 << n):
        world = {name: set(rows) for name, rows in base.items()}
        weight = 1.0
        for i in range(n):
            name, row = uncertain[i]
            if mask >> i & 1:
                world[name].add(row)
                weight *= probs[i]
            else:
                weight *= 1.0 - probs[i]
        yield world, weight


def brute_force_probability(
    db: ProbabilisticDatabase,
    satisfies: Callable[[World], bool],
    max_uncertain: int = MAX_UNCERTAIN,
) -> float:
    """Probability that a Boolean property holds, by exhaustive enumeration.

    Parameters
    ----------
    db:
        The probabilistic database.
    satisfies:
        Predicate deciding whether a world satisfies the query. For conjunctive
        queries use :func:`repro.query.grounding.world_satisfies`.
    """
    return sum(
        weight
        for world, weight in enumerate_worlds(db, max_uncertain)
        if satisfies(world)
    )


def brute_force_answer_probabilities(
    db: ProbabilisticDatabase,
    answers: Callable[[World], set],
    max_uncertain: int = MAX_UNCERTAIN,
) -> dict:
    """Per-answer probabilities for a non-Boolean query, by enumeration.

    *answers* maps a world to the set of answer tuples the query returns on it;
    the result maps each answer ever produced to the total probability of the
    worlds producing it.
    """
    acc: dict = {}
    for world, weight in enumerate_worlds(db, max_uncertain):
        for a in answers(world):
            acc[a] = acc.get(a, 0.0) + weight
    return acc
