"""Buffered transactions over a :class:`~repro.db.ProbabilisticDatabase`.

The serving layer (:mod:`repro.serve`) needs two properties the raw
mutation API cannot give it:

1. **Snapshot isolation for in-flight queries.** A query admitted while a
   transaction is open must see the committed instance, unperturbed, for
   its whole evaluation — even if the transaction commits midway.
2. **Transactional cache invalidation.** Mutation hooks (which flush the
   :class:`~repro.circuit.CircuitCache` and the evaluators' base-encode
   caches) must fire only when changes actually become visible. A rolled
   back transaction must leave every warm cache intact.

:class:`Transaction` gets both from one mechanism: copy-on-write relation
replacement. Writes are buffered in private working copies (created from
the committed relation at first touch, with *no* hooks wired, so nothing
observes them). ``commit()`` installs fresh relation objects into the
database — the old objects are never mutated, so snapshots that captured
them keep reading the old state — and only then fires each touched
relation's mutation hooks, exactly once per touched relation.
``rollback()`` simply discards the working copies: no hook ever fires, no
cache is flushed.

Commits are *optimistic*: the database version observed at ``begin`` is
re-checked at commit, and a concurrent commit raises
:class:`~repro.errors.TransactionConflictError` (retry the whole
transaction). The server serialises writers, so conflicts there are
impossible by construction; the check protects direct API users.

Examples
--------
>>> from repro.db import ProbabilisticDatabase
>>> db = ProbabilisticDatabase()
>>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
>>> with db.transaction() as txn:
...     txn.insert("R", (2,), 0.25)
...     txn.set_probability("R", (1,), 0.75)
>>> sorted(db["R"].items())
[((1,), 0.75), ((2,), 0.25)]
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.db.database import ProbabilisticDatabase
from repro.db.relation import ProbabilisticRelation
from repro.db.schema import Row
from repro.errors import TransactionConflictError, TransactionError

__all__ = ["Transaction"]


class Transaction:
    """A buffered read-write transaction with commit/rollback semantics.

    Obtain one via :meth:`ProbabilisticDatabase.begin` or use
    :meth:`ProbabilisticDatabase.transaction` as a context manager (commit
    on clean exit, rollback on exception). All validation — arity, the
    ``(0, 1]`` probability range, duplicate or missing tuples — happens
    eagerly at the buffered operation, against the transaction's own view,
    so a commit can only fail on an optimistic conflict.
    """

    def __init__(self, db: ProbabilisticDatabase) -> None:
        self._db = db
        self._start_version = db.version
        self._working: Dict[str, ProbabilisticRelation] = {}
        self._ops = 0
        self._state = "active"

    # ------------------------------------------------------------- status
    @property
    def active(self) -> bool:
        """True until :meth:`commit` or :meth:`rollback` finishes."""
        return self._state == "active"

    @property
    def state(self) -> str:
        """One of ``active``, ``committed``, ``rolled_back``."""
        return self._state

    @property
    def operations(self) -> int:
        """Number of buffered mutations so far."""
        return self._ops

    def touched(self) -> list[str]:
        """Names of relations with buffered changes, in first-touch order."""
        return list(self._working)

    # -------------------------------------------------------------- reads
    def relation(self, name: str) -> ProbabilisticRelation:
        """The transaction's view of *name*: the working copy if this
        transaction wrote to it, otherwise the committed relation
        (read-your-writes inside the transaction)."""
        self._check_active()
        return self._working.get(name) or self._db[name]

    def probability(self, name: str, row: Row) -> float:
        """Marginal probability of ``row`` under this transaction's view."""
        return self.relation(name).probability(row)

    # ------------------------------------------------------------- writes
    def _copy_for_write(self, name: str) -> ProbabilisticRelation:
        rel = self._working.get(name)
        if rel is None:
            # The working copy carries no hooks: buffered writes must be
            # invisible to cache invalidation until commit.
            rel = self._db[name].copy()
            self._working[name] = rel
        return rel

    def insert(self, name: str, row: Iterable, probability: float) -> None:
        """Buffer an insert of *row* into relation *name*."""
        self._check_active()
        self._copy_for_write(name).add(row, probability)
        self._ops += 1

    def set_probability(self, name: str, row: Iterable, probability: float) -> None:
        """Buffer a probability update for an existing *row*."""
        self._check_active()
        self._copy_for_write(name).set_probability(row, probability)
        self._ops += 1

    def delete(self, name: str, row: Iterable) -> None:
        """Buffer a delete of an existing *row*."""
        self._check_active()
        self._copy_for_write(name).remove(row)
        self._ops += 1

    # ------------------------------------------------------------ outcome
    def commit(self) -> list[str]:
        """Install all buffered changes atomically; return touched names.

        New relation objects (carrying the old objects' hooks so future
        direct mutations keep notifying subscribers) replace the committed
        ones, then each touched relation's hooks fire exactly once. Hook
        order is: all installs first, then all notifications — a hook that
        re-reads the database sees the fully committed state.

        Raises
        ------
        TransactionError
            If the transaction already finished.
        TransactionConflictError
            If the database was mutated (by another transaction or a direct
            ``add``) since this transaction began. Nothing is installed.
        """
        self._check_active()
        with self._db._txn_lock:
            if self._db.version != self._start_version:
                self._state = "rolled_back"
                raise TransactionConflictError(
                    f"database changed under transaction (version "
                    f"{self._start_version} -> {self._db.version}); retry"
                )
            notify: list[tuple[ProbabilisticRelation, str]] = []
            for name, working in self._working.items():
                old = self._db[name]
                fresh = ProbabilisticRelation(old.schema)
                fresh._rows = dict(working._rows)
                fresh._hooks = list(old._hooks)
                self._db._relations[name] = fresh
                notify.append((fresh, name))
            # Hooks fire inside the lock: a snapshot captured concurrently
            # must never pair the new relations with the old version number
            # (hooks must not re-enter snapshot()/commit()).
            for fresh, name in notify:
                for hook in fresh._hooks:
                    hook(name)
        self._state = "committed"
        return [name for _, name in notify]

    def rollback(self) -> None:
        """Discard all buffered changes. No hook fires, no cache flushes.
        Idempotent on an already-finished transaction is an error."""
        self._check_active()
        self._working.clear()
        self._state = "rolled_back"

    def _check_active(self) -> None:
        if self._state != "active":
            raise TransactionError(f"transaction already {self._state}")

    # ---------------------------------------------------- context manager
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.active:
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

    def __repr__(self) -> str:
        return (
            f"<Transaction {self._state} ops={self._ops} "
            f"touched={self.touched()!r}>"
        )
