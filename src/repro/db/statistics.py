"""Instance statistics for plan selection.

The paper leaves open how to choose the plan that minimises the output
network (Section 8) and notes that offending tuples can be found with
standard SQL. This module computes the per-relation statistics that a plan
optimiser needs *without* evaluating any plan:

* per-attribute-set **fanout profiles** — how many tuples share each key
  value, split by certain/uncertain, which is exactly what Proposition 3.2's
  data-safety test consumes;
* **functional-dependency violation counts** — the paper's measure of how
  dirty an instance is (the ``FFD`` knob of Section 6.1);
* uncertainty summaries (the ``FDT`` knob).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.db.relation import ProbabilisticRelation
from repro.db.schema import Row


@dataclass(frozen=True)
class FanoutProfile:
    """Distribution of join fanout for one relation and key.

    ``groups`` maps each key value to the number of tuples carrying it;
    ``uncertain_multi`` counts *uncertain* tuples whose key is shared by at
    least one other tuple — an upper bound on this side's cSet for any join
    on this key (the partner side determines the actual fanout).
    """

    relation: str
    key: tuple[str, ...]
    groups: dict[Row, int]
    uncertain_multi: int

    @property
    def distinct_keys(self) -> int:
        """Number of distinct key values."""
        return len(self.groups)

    @property
    def max_fanout(self) -> int:
        """Largest group size (1 for a key constraint)."""
        return max(self.groups.values(), default=0)

    def is_key(self) -> bool:
        """True when the attribute set is a key on this instance."""
        return self.max_fanout <= 1

    def expected_partners(self, value: Row) -> int:
        """Group size for *value* (0 when absent)."""
        return self.groups.get(tuple(value), 0)


def fanout_profile(
    relation: ProbabilisticRelation, key: Sequence[str]
) -> FanoutProfile:
    """Compute the fanout profile of *relation* grouped by *key*.

    Examples
    --------
    >>> rel = ProbabilisticRelation.create(
    ...     "S", ("A", "B"), {(1, 1): 0.5, (1, 2): 0.5, (2, 1): 1.0})
    >>> prof = fanout_profile(rel, ("A",))
    >>> prof.max_fanout, prof.is_key(), prof.uncertain_multi
    (2, False, 2)
    """
    groups: dict[Row, int] = {}
    idx = relation.schema.indices_of(key)
    for row in relation:
        k = tuple(row[i] for i in idx)
        groups[k] = groups.get(k, 0) + 1
    uncertain_multi = 0
    for row, p in relation.items():
        k = tuple(row[i] for i in idx)
        if p < 1.0 and groups[k] > 1:
            uncertain_multi += 1
    return FanoutProfile(relation.name, tuple(key), groups, uncertain_multi)


def fd_violation_count(
    relation: ProbabilisticRelation, lhs: Sequence[str], rhs: Sequence[str]
) -> int:
    """Number of ``lhs`` values with more than one ``rhs`` value.

    This is the paper's offending-key count for the dependency
    ``lhs -> rhs`` — zero iff the FD holds on the instance.
    """
    lidx = relation.schema.indices_of(lhs)
    ridx = relation.schema.indices_of(rhs)
    values: dict[Row, set[Row]] = {}
    for row in relation:
        values.setdefault(
            tuple(row[i] for i in lidx), set()
        ).add(tuple(row[i] for i in ridx))
    return sum(1 for v in values.values() if len(v) > 1)


@dataclass(frozen=True)
class RelationStatistics:
    """Summary statistics used by the plan optimiser."""

    relation: str
    size: int
    uncertain: int

    @property
    def uncertain_fraction(self) -> float:
        """Fraction of tuples with probability below 1 (the FDT knob)."""
        return self.uncertain / self.size if self.size else 0.0


def relation_statistics(relation: ProbabilisticRelation) -> RelationStatistics:
    """Size and uncertainty summary of one relation."""
    return RelationStatistics(
        relation.name, len(relation), len(relation.uncertain_rows())
    )
