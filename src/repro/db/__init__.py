"""Tuple-independent probabilistic database substrate.

This subpackage provides the storage model the paper assumes in Section 2:
a probabilistic database is a product of *independent* probabilistic relations,
each given by a set of tuples with marginal probabilities (Eq. 1 of the paper).

Modules
-------
``schema``
    Relation schemas (name + attribute list) and schema validation.
``relation``
    :class:`ProbabilisticRelation` — a finite relation with a probability per
    tuple — plus deterministic instances used when enumerating worlds.
``database``
    :class:`ProbabilisticDatabase` — a named collection of independent
    probabilistic relations, with convenience constructors.
``worlds``
    Exhaustive possible-worlds enumeration. This is the semantic ground truth
    (Definition 2.1) against which every evaluator in the library is tested.
``txn``
    Buffered :class:`Transaction` objects with commit/rollback, copy-on-write
    relation replacement, and snapshot isolation for concurrent readers.
"""

from repro.db.database import ProbabilisticDatabase
from repro.db.relation import ProbabilisticRelation
from repro.db.schema import RelationSchema
from repro.db.txn import Transaction
from repro.db.statistics import (
    FanoutProfile,
    RelationStatistics,
    fanout_profile,
    fd_violation_count,
    relation_statistics,
)
from repro.db.worlds import (
    brute_force_probability,
    brute_force_answer_probabilities,
    enumerate_worlds,
)

__all__ = [
    "RelationSchema",
    "ProbabilisticRelation",
    "ProbabilisticDatabase",
    "Transaction",
    "enumerate_worlds",
    "brute_force_probability",
    "brute_force_answer_probabilities",
    "FanoutProfile",
    "RelationStatistics",
    "fanout_profile",
    "fd_violation_count",
    "relation_statistics",
]
