"""In-database inference for tree-factorable networks.

The paper's prototype materialises the And-Or network as a relational table
``L(v, w, p)`` and runs inference *outside* the database; Section 8 asks
whether that second stage could be pushed into the database, "particularly
advantageous when the scale of the data is huge and treewidth is very
small". For tree-factorable networks (see :mod:`repro.core.treeprop`) the
answer is a plain iterated aggregation:

* the network lives in two tables, ``_net_nodes(v, kind, p)`` and
  ``_net_edges(v, w, q)`` — the paper's ``L`` table, normalised;
* each round, one ``INSERT … SELECT`` with a custom aggregate computes the
  marginal of every gate whose parents are all computed: ``indep_or(q * pw)``
  for Or gates, ``prodagg(q * pw)`` for And gates;
* rounds repeat until a fixpoint — at most the network's depth.

No per-assignment tables, no exponential anything: the database does the
whole inference with aggregation, exactly the regime the paper's closing
remark is after.
"""

from __future__ import annotations

from repro.core.network import AndOrNetwork, EPSILON, NodeKind
from repro.core.treeprop import is_tree_factorable
from repro.errors import InferenceError
from repro.sqlbackend.storage import SQLiteStorage


class _Product:
    """SQLite aggregate: product of the group's values."""

    def __init__(self) -> None:
        self.value = 1.0

    def step(self, x: float) -> None:
        self.value *= x

    def finalize(self) -> float:
        return self.value


def store_network(storage: SQLiteStorage, net: AndOrNetwork) -> None:
    """Materialise the network relationally (the paper's ``L`` table)."""
    conn = storage.connection
    conn.create_aggregate("prodagg", 1, _Product)
    conn.execute("DROP TABLE IF EXISTS _net_nodes")
    conn.execute("DROP TABLE IF EXISTS _net_edges")
    conn.execute(
        "CREATE TABLE _net_nodes (v INTEGER PRIMARY KEY, kind TEXT NOT NULL, "
        "p REAL)"
    )
    conn.execute(
        "CREATE TABLE _net_edges (v INTEGER NOT NULL, w INTEGER NOT NULL, "
        "q REAL NOT NULL)"
    )
    node_rows = []
    edge_rows = []
    for v in net.nodes():
        kind = net.kind(v)
        if kind is NodeKind.LEAF:
            node_rows.append((v, "leaf", net.leaf_probability(v)))
        else:
            node_rows.append((v, kind.value, None))
            for w, q in net.parents(v):
                edge_rows.append((v, w, q))
    conn.executemany("INSERT INTO _net_nodes VALUES (?, ?, ?)", node_rows)
    conn.executemany("INSERT INTO _net_edges VALUES (?, ?, ?)", edge_rows)
    conn.commit()


def sqlite_tree_marginals(
    storage: SQLiteStorage, net: AndOrNetwork, check: bool = True
) -> dict[int, float]:
    """All marginals of a tree-factorable network, computed inside SQLite.

    Raises
    ------
    InferenceError
        If *check* is on and the network is not tree-factorable, or the
        fixpoint fails to cover every node (a cycle would mean a corrupt
        network).

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> net = AndOrNetwork()
    >>> u, v = net.add_leaf(0.3), net.add_leaf(0.8)
    >>> w = net.add_gate(NodeKind.OR, [(u, 0.5), (v, 0.5)])
    >>> store = SQLiteStorage()
    >>> round(sqlite_tree_marginals(store, net)[w], 6)
    0.49
    """
    if check and not is_tree_factorable(net):
        raise InferenceError(
            "network is not tree-factorable; in-database propagation would "
            "be wrong — use the Python engines instead"
        )
    store_network(storage, net)
    conn = storage.connection
    conn.execute("DROP TABLE IF EXISTS _net_prob")
    conn.execute(
        "CREATE TABLE _net_prob (v INTEGER PRIMARY KEY, pr REAL NOT NULL)"
    )
    conn.execute(
        "INSERT INTO _net_prob SELECT v, p FROM _net_nodes WHERE kind = 'leaf'"
    )
    total = conn.execute("SELECT COUNT(*) FROM _net_nodes").fetchone()[0]
    while True:
        done = conn.execute("SELECT COUNT(*) FROM _net_prob").fetchone()[0]
        if done == total:
            break
        # gates whose parents are all computed and who are not computed yet
        inserted = conn.execute(
            """
            INSERT INTO _net_prob
            SELECT n.v,
                   CASE n.kind
                        WHEN 'or' THEN indep_or(e.q * pw.pr)
                        ELSE prodagg(e.q * pw.pr)
                   END
            FROM _net_nodes n
            JOIN _net_edges e ON e.v = n.v
            JOIN _net_prob pw ON pw.v = e.w
            WHERE n.v NOT IN (SELECT v FROM _net_prob)
              AND NOT EXISTS (
                  SELECT 1 FROM _net_edges e2
                  WHERE e2.v = n.v
                    AND e2.w NOT IN (SELECT v FROM _net_prob)
              )
            GROUP BY n.v, n.kind
            """
        ).rowcount
        if inserted == 0:
            raise InferenceError(
                "in-database propagation reached a fixpoint before covering "
                "every node; the network table is corrupt"
            )
    out = dict(conn.execute("SELECT v, pr FROM _net_prob").fetchall())
    out[EPSILON] = 1.0
    return out
