"""SQLite-backed partial-lineage evaluation.

The paper's prototype is a Java frontend sending batches of SQL to SQL Server
2005, with the And-Or network materialised as a relational table ``L(v, w, p)``
read back for inference (Section 6.2). This subpackage reproduces that
architecture on stdlib ``sqlite3``:

* base relations and every intermediate pL-relation live in (temp) tables
  with the tuple columns plus ``l`` (lineage node id, 0 = ε) and ``p``;
* scans, selections, joins, cSet detection, and the independent-project
  aggregation are executed *inside the database*;
* only conditioning, gate allocation, and deduplication groups cross into
  Python, appending rows to the network table;
* final inference runs on the reconstructed And-Or network, outside the
  database — exactly the paper's split.

Results are bit-for-bit comparable with the in-memory engine (same operator
definitions), which the test suite checks.
"""

from repro.sqlbackend.storage import SQLiteStorage
from repro.sqlbackend.executor import SQLitePartialLineageEvaluator
from repro.sqlbackend.inference import sqlite_tree_marginals, store_network

__all__ = [
    "SQLiteStorage",
    "SQLitePartialLineageEvaluator",
    "sqlite_tree_marginals",
    "store_network",
]
