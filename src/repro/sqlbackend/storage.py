"""SQLite storage for probabilistic databases.

One table per relation, named after it, with the schema's attribute names as
columns plus a ``p`` column holding the tuple's marginal probability. A
custom aggregate ``indep_or`` implements the extensional projection
``1 - Π (1 - p)`` inside the database.
"""

from __future__ import annotations

import sqlite3
from repro.db.database import ProbabilisticDatabase
from repro.db.relation import ProbabilisticRelation
from repro.errors import SchemaError


class _IndepOr:
    """SQLite aggregate: ``1 - product(1 - p)`` over the group's ``p`` values."""

    def __init__(self) -> None:
        self.failure = 1.0

    def step(self, p: float) -> None:
        self.failure *= 1.0 - p

    def finalize(self) -> float:
        return 1.0 - self.failure


class SQLiteStorage:
    """An open SQLite database mirroring a :class:`ProbabilisticDatabase`.

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> store = SQLiteStorage.from_database(db)
    >>> store.connection.execute("SELECT A, p FROM R").fetchall()
    [(1, 0.5)]
    """

    def __init__(self, connection: sqlite3.Connection | None = None) -> None:
        self.connection = connection or sqlite3.connect(":memory:")
        self.connection.create_aggregate("indep_or", 1, _IndepOr)
        self._tables: set[str] = set()
        self._mathfuncs: bool | None = None

    def has_math_functions(self) -> bool:
        """True when SQLite was built with EXP/LN/POWER (3.35+ default).

        The probability folds prefer the native ``1 - EXP(SUM(LN(1-p)))``
        form (one pass, no Python per group); the ``indep_or`` aggregate is
        the fallback.
        """
        if self._mathfuncs is None:
            try:
                self.connection.execute("SELECT EXP(0.0), LN(1.0), POWER(2.0, 2.0)")
                self._mathfuncs = True
            except sqlite3.OperationalError:
                self._mathfuncs = False
        return self._mathfuncs

    @classmethod
    def from_database(cls, db: ProbabilisticDatabase) -> "SQLiteStorage":
        """Load every relation of *db* into a fresh in-memory SQLite database."""
        store = cls()
        for rel in db:
            store.load_relation(rel)
        return store

    def load_relation(self, relation: ProbabilisticRelation) -> None:
        """Create and populate the table for one relation."""
        name = relation.name
        if name in self._tables:
            raise SchemaError(f"table {name} already loaded")
        _check_identifier(name)
        cols = relation.schema.attributes
        for c in cols:
            _check_identifier(c)
        decl = ", ".join(f'"{c}"' for c in cols)
        self.connection.execute(f'CREATE TABLE "{name}" ({decl}, p REAL NOT NULL)')
        placeholders = ", ".join("?" for _ in range(len(cols) + 1))
        self.connection.executemany(
            f'INSERT INTO "{name}" VALUES ({placeholders})',
            (row + (p,) for row, p in relation.items()),
        )
        self.connection.commit()
        self._tables.add(name)

    def tables(self) -> list[str]:
        """Names of loaded relations."""
        return sorted(self._tables)

    def close(self) -> None:
        """Close the underlying connection."""
        self.connection.close()

    def __enter__(self) -> "SQLiteStorage":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _check_identifier(name: str) -> None:
    if not name.isidentifier():
        raise SchemaError(f"unsafe SQL identifier: {name!r}")
