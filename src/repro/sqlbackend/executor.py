"""Partial-lineage plan evaluation pushed into SQLite.

Mirrors :class:`repro.core.executor.PartialLineageEvaluator`, but every
intermediate pL-relation is a SQLite temp table ``(attrs..., l, p)`` and the
set-oriented work — scans, selections, joins, offending-tuple detection,
independent-project aggregation, duplicate-group detection — is SQL. Python
touches only the rows that need network surgery (conditioned tuples, And
gates of symbolic×symbolic join pairs, Or gates of duplicate groups), which
is exactly the paper's extensional/intensional split.
"""

from __future__ import annotations

import itertools
import sqlite3
import time
from typing import Sequence

from repro.core.executor import EvaluationResult, OffendingTuple, OperatorStat
from repro.core.network import EPSILON, AndOrNetwork, NodeKind
from repro.core.plan import (
    Filter,
    Join,
    Plan,
    Project,
    Scan,
    Select,
    left_deep_plan,
    plan_schema,
)
from repro.core.plrelation import PLRelation
from repro.db.database import ProbabilisticDatabase
from repro.dissociation.engine import DissociationBounds, DissociationResult
from repro.errors import InferenceError, PlanError
from repro.obs import telemetry
from repro.obs.trace import add as _add
from repro.obs.trace import span as _span
from repro.query.syntax import ConjunctiveQuery, Constant
from repro.sqlbackend.storage import SQLiteStorage, _check_identifier


def _q(name: str) -> str:
    _check_identifier(name)
    return f'"{name}"'


def _cols(attrs: Sequence[str], prefix: str = "") -> str:
    p = f"{prefix}." if prefix else ""
    return ", ".join(f"{p}{_q(a)}" for a in attrs)


#: Comparison operators as SQLite spells them (``==`` / ``!=`` normalised).
_SQL_OPS = {"==": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _comparison_clause(predicates, prefix: str = "") -> tuple[str, list]:
    """A ``WHERE`` conjunction + parameters for Comparison predicates."""
    p = f"{prefix}." if prefix else ""
    clauses, params = [], []
    for c in predicates:
        clauses.append(f"{p}{_q(c.attribute)} {_SQL_OPS[c.op]} ?")
        params.append(c.value)
    return " AND ".join(clauses), params


class SQLitePartialLineageEvaluator:
    """Evaluate plans with partial lineage, extensional work in SQLite.

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> _ = db.add_relation("S", ("A", "B"), {(1, 1): 0.5, (1, 2): 0.5})
    >>> _ = db.add_relation("T", ("B",), {(1,): 0.9, (2,): 0.9})
    >>> ev = SQLitePartialLineageEvaluator(db)
    >>> res = ev.evaluate_query(parse_query("q() :- R(x), S(x,y), T(y)"))
    >>> round(res.boolean_probability(), 6)
    0.34875
    """

    def __init__(self, db: ProbabilisticDatabase) -> None:
        self.db = db
        self.storage = SQLiteStorage.from_database(db)
        self._tmp = itertools.count()
        self._provenance: list[OffendingTuple] = []
        self._dissociated = 0

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self.storage.close()

    # ------------------------------------------------------------ entry points
    def evaluate(self, plan: Plan) -> EvaluationResult:
        """Evaluate an explicit plan and return the standard result object."""
        plan_schema(plan, self.db)
        start = time.perf_counter()
        network = AndOrNetwork()
        stats: list[OperatorStat] = []
        conditioned: list[OffendingTuple] = []
        self._provenance = conditioned
        with _span("sql.evaluate", plan=str(plan)) as sp:
            table, attrs = self._eval(plan, network, stats)
            rel = self._fetch(table, attrs, network)
            sp.add("rows", len(rel))
            sp.add("network_nodes", len(network))
        result = EvaluationResult(
            rel, network, stats, conditioned, engine="sqlite"
        )
        result.record_flight(
            "sql", seconds=time.perf_counter() - start,
            answers=len(rel), inference="",
        )
        return result

    def evaluate_query(
        self, query: ConjunctiveQuery, join_order: list[str] | None = None
    ) -> EvaluationResult:
        """Build the left-deep plan for *query* and evaluate it."""
        return self.evaluate(left_deep_plan(query, join_order))

    # ----------------------------------------------------------------- helpers
    @property
    def _conn(self) -> sqlite3.Connection:
        return self.storage.connection

    def _new_table(self) -> str:
        return f"_pl{next(self._tmp)}"

    def _fetch(
        self, table: str, attrs: tuple[str, ...], network: AndOrNetwork
    ) -> PLRelation:
        rel = PLRelation(attrs, network, name=table)
        sel = _cols(attrs) + ", l, p" if attrs else "l, p"
        for row in self._conn.execute(f"SELECT {sel} FROM {_q(table)}"):
            *values, l, p = row
            rel.add(tuple(values), int(l), float(p))
        return rel

    def _count(self, table: str) -> int:
        (n,) = self._conn.execute(f"SELECT COUNT(*) FROM {_q(table)}").fetchone()
        return n

    # --------------------------------------------------------------- operators
    def _eval(
        self, plan: Plan, net: AndOrNetwork, stats: list[OperatorStat]
    ) -> tuple[str, tuple[str, ...]]:
        # One OperatorStat per node with its own wall time (children
        # excluded, mirroring the row/columnar engines) plus a span, so the
        # SQL backend profiles and flight-records like the in-process ones.
        kind = type(plan).__name__.lower()
        start = time.perf_counter()
        before = len(stats)
        conditioned = 0
        with _span(f"sql.{kind}", op=str(plan)) as sp:
            if isinstance(plan, Scan):
                table, attrs = self._scan(plan)
            elif isinstance(plan, Select):
                table, attrs = self._select(plan, net, stats)
            elif isinstance(plan, Filter):
                table, attrs = self._filter(plan, net, stats)
            elif isinstance(plan, Project):
                table, attrs = self._project(plan, net, stats)
            elif isinstance(plan, Join):
                table, attrs, conditioned = self._join(plan, net, stats)
            else:
                raise PlanError(f"unknown plan node {plan!r}")
            output_size = self._count(table)
            sp.add("output_size", output_size)
            if conditioned:
                sp.add("conditioned", conditioned)
        child_seconds = sum(s.seconds for s in stats[before:])
        stats.append(OperatorStat(
            str(plan), output_size=output_size, conditioned=conditioned,
            seconds=max(time.perf_counter() - start - child_seconds, 0.0),
        ))
        return table, attrs

    def _scan(self, scan: Scan) -> tuple[str, tuple[str, ...]]:
        base = self.db[scan.relation]
        out = self._new_table()
        base_cols = base.schema.attributes
        if scan.terms is None:
            sel = _cols(base_cols)
            self._conn.execute(
                f"CREATE TEMP TABLE {_q(out)} AS "
                f"SELECT {sel}, 0 AS l, p FROM {_q(scan.relation)}"
            )
            return out, base_cols
        if len(scan.terms) != len(base_cols):
            raise PlanError(
                f"scan of {scan.relation}: {len(scan.terms)} terms for arity "
                f"{len(base_cols)}"
            )
        var_first: dict[str, int] = {}
        where: list[str] = []
        params: list[object] = []
        for i, t in enumerate(scan.terms):
            if isinstance(t, Constant):
                where.append(f"{_q(base_cols[i])} = ?")
                params.append(t.value)
            elif t.name in var_first:
                where.append(f"{_q(base_cols[i])} = {_q(base_cols[var_first[t.name]])}")
            else:
                var_first[t.name] = i
        sel = "".join(
            f"{_q(base_cols[i])} AS {_q(v)}, " for v, i in var_first.items()
        )
        clause = f" WHERE {' AND '.join(where)}" if where else ""
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(out)} AS "
            f"SELECT {sel}0 AS l, p FROM {_q(scan.relation)}{clause}",
            params,
        )
        return out, tuple(var_first)

    def _select(
        self, plan: Select, net: AndOrNetwork, stats: list[OperatorStat]
    ) -> tuple[str, tuple[str, ...]]:
        child, attrs = self._eval(plan.child, net, stats)
        out = self._new_table()
        where = " AND ".join(f"{_q(a)} = ?" for a, _ in plan.conditions)
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(out)} AS SELECT * FROM {_q(child)} "
            f"WHERE {where}",
            [v for _, v in plan.conditions],
        )
        return out, attrs

    def _filter(
        self, plan: Filter, net: AndOrNetwork, stats: list[OperatorStat]
    ) -> tuple[str, tuple[str, ...]]:
        child, attrs = self._eval(plan.child, net, stats)
        out = self._new_table()
        where, params = _comparison_clause(plan.predicates)
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(out)} AS SELECT * FROM {_q(child)} "
            f"WHERE {where}",
            params,
        )
        return out, attrs

    def _or_fold_sql(self, column: str = "p") -> str:
        """The group fold ``1 - Π(1 - p)`` as one SQL aggregate expression.

        Native math functions when available: ``LN(0)`` is NULL and ``SUM``
        skips NULLs, so certain rows (``p >= 1``) are guarded explicitly;
        singleton groups pass their value through bit-exactly. Falls back to
        the Python ``indep_or`` aggregate on math-less builds.
        """
        if not self.storage.has_math_functions():
            return f"indep_or({column})"
        return (
            f"CASE WHEN MAX({column} >= 1.0) = 1 THEN 1.0 "
            f"WHEN COUNT(*) = 1 THEN MAX({column}) "
            f"ELSE MIN(1.0, MAX(0.0, "
            f"1.0 - EXP(SUM(LN(1.0 - {column}))))) END"
        )

    def _project(
        self, plan: Project, net: AndOrNetwork, stats: list[OperatorStat]
    ) -> tuple[str, tuple[str, ...]]:
        child, _ = self._eval(plan.child, net, stats)
        attrs = tuple(plan.attributes)
        # Independent project: group by (attrs, l), OR-combine the p column.
        ip = self._new_table()
        group = (_cols(attrs) + ", l") if attrs else "l"
        sel = (_cols(attrs) + ", ") if attrs else ""
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(ip)} AS "
            f"SELECT {sel}l, {self._or_fold_sql()} AS p FROM {_q(child)} "
            f"GROUP BY {group}"
        )
        # Deduplication: single-member groups pass through in SQL; duplicate
        # groups get a SQL-side group id, so only (gid, l, p) integer/float
        # triples cross into Python for Or-gate allocation — the projected
        # values never round-trip.
        out = self._new_table()
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(out)} AS SELECT * FROM {_q(ip)} WHERE 0"
        )
        if attrs:
            keys = _cols(attrs)
            self._conn.execute(
                f"INSERT INTO {_q(out)} "
                f"SELECT i.* FROM {_q(ip)} i JOIN (SELECT {keys} FROM {_q(ip)} "
                f"GROUP BY {keys} HAVING COUNT(*) = 1) s USING ({keys})"
            )
            dup = self._new_table()
            self._conn.execute(
                f"CREATE TEMP TABLE {_q(dup)} AS SELECT {keys} FROM {_q(ip)} "
                f"GROUP BY {keys} HAVING COUNT(*) > 1 ORDER BY {keys}"
            )
            members = self._conn.execute(
                f"SELECT d.rowid, i.l, i.p FROM {_q(ip)} i "
                f"JOIN {_q(dup)} d USING ({keys}) ORDER BY d.rowid, i.rowid"
            ).fetchall()
            gates: list[tuple[int, int]] = []
            group_members: list[tuple[int, float]] = []
            current = None
            for gid, l, p in members:
                if gid != current and group_members:
                    gates.append(
                        (current, net.add_gate(NodeKind.OR, group_members))
                    )
                    group_members = []
                current = gid
                group_members.append((int(l), float(p)))
            if group_members:
                gates.append(
                    (current, net.add_gate(NodeKind.OR, group_members))
                )
            gmap = self._new_table()
            self._conn.execute(
                f"CREATE TEMP TABLE {_q(gmap)} "
                f"(gid INTEGER PRIMARY KEY, node INTEGER)"
            )
            self._conn.executemany(
                f"INSERT INTO {_q(gmap)} VALUES (?, ?)", gates
            )
            self._conn.execute(
                f"INSERT INTO {_q(out)} SELECT {_cols(attrs, 'd')}, g.node, "
                f"1.0 FROM {_q(dup)} d JOIN {_q(gmap)} g ON g.gid = d.rowid"
            )
        else:
            rows = self._conn.execute(f"SELECT l, p FROM {_q(ip)}").fetchall()
            if len(rows) == 1:
                self._conn.execute(
                    f"INSERT INTO {_q(out)} VALUES (?, ?)", rows[0]
                )
            elif len(rows) > 1:
                gate = net.add_gate(
                    NodeKind.OR, [(int(l), float(p)) for l, p in rows]
                )
                self._conn.execute(
                    f"INSERT INTO {_q(out)} VALUES (?, ?)", (gate, 1.0)
                )
        return out, attrs

    def _condition_in_place(
        self, table: str, attrs: tuple[str, ...], on: Sequence[str],
        other: str, net: AndOrNetwork, source: str,
    ) -> int:
        """Condition *table* on its cSet w.r.t. *other*; returns the count.

        The offending rows — uncertain, with more than one join partner — are
        found with one SQL join against the partner fan-out; each gets a fresh
        leaf (or a single-parent And gate if it already carries lineage) and
        becomes deterministic in place.
        """
        value_cols = (_cols(attrs, "t") + ", ") if attrs else ""
        if not on:
            # A cross product offends every uncertain tuple when the other
            # side has more than one row.
            (partners,) = self._conn.execute(
                f"SELECT COUNT(*) FROM {_q(other)}"
            ).fetchone()
            if partners <= 1:
                return 0
            rows = self._conn.execute(
                f"SELECT {value_cols}t.rowid, t.l, t.p FROM {_q(table)} t "
                f"WHERE t.p < 1.0"
            ).fetchall()
        else:
            keys = _cols(on)
            on_clause = " AND ".join(f"t.{_q(a)} = g.{_q(a)}" for a in on)
            rows = self._conn.execute(
                f"SELECT {value_cols}t.rowid, t.l, t.p FROM {_q(table)} t "
                f"JOIN (SELECT {keys}, COUNT(*) AS c FROM {_q(other)} "
                f"GROUP BY {keys}) g ON {on_clause} "
                f"WHERE t.p < 1.0 AND g.c > 1"
            ).fetchall()
        updates = []
        for *values, rowid, l, p in rows:
            l, p = int(l), float(p)
            node = net.add_leaf(p) if l == EPSILON else net.add_gate(
                NodeKind.AND, [(l, p)]
            )
            self._provenance.append(
                OffendingTuple(source, tuple(values), node)
            )
            updates.append((node, rowid))
        self._conn.executemany(
            f"UPDATE {_q(table)} SET l = ?, p = 1.0 WHERE rowid = ?", updates
        )
        return len(updates)

    def _join(
        self, plan: Join, net: AndOrNetwork, stats: list[OperatorStat]
    ) -> tuple[str, tuple[str, ...], int]:
        ltable, lattrs = self._eval(plan.left, net, stats)
        rtable, rattrs = self._eval(plan.right, net, stats)
        on = tuple(plan.on)
        with _span("sql.condition", side="left"):
            conditioned = self._condition_in_place(
                ltable, lattrs, on, rtable, net, str(plan.left)
            )
        with _span("sql.condition", side="right"):
            conditioned += self._condition_in_place(
                rtable, rattrs, on, ltable, net, str(plan.right)
            )
        keep = tuple(a for a in rattrs if a not in set(on))
        out_attrs = lattrs + keep
        out = self._new_table()
        lsel = _cols(lattrs, "L")
        ksel = (", " + _cols(keep, "R")) if keep else ""
        on_clause = (
            " AND ".join(f"L.{_q(a)} = R.{_q(a)}" for a in on) if on else "1 = 1"
        )
        # Rows with at most one symbolic side are pure SQL: lineage is the
        # symbolic side's node (l1 + l2 works because the other is 0) and the
        # probabilities multiply. Symbolic×symbolic pairs get And gates below.
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(out)} AS "
            f"SELECT {lsel}{ksel}, "
            f"CASE WHEN L.l = 0 OR R.l = 0 THEN L.l + R.l ELSE -1 END AS l, "
            f"CASE WHEN L.l = 0 OR R.l = 0 THEN L.p * R.p ELSE -1.0 END AS p, "
            f"L.l AS l1, L.p AS p1, R.l AS l2, R.p AS p2 "
            f"FROM {_q(ltable)} L JOIN {_q(rtable)} R ON {on_clause}"
        )
        hard = self._conn.execute(
            f"SELECT rowid, l1, p1, l2, p2 FROM {_q(out)} WHERE l = -1"
        ).fetchall()
        self._conn.executemany(
            f"UPDATE {_q(out)} SET l = ?, p = 1.0 WHERE rowid = ?",
            (
                (
                    net.add_gate(
                        NodeKind.AND,
                        [(int(l1), float(p1)), (int(l2), float(p2))],
                    ),
                    rowid,
                )
                for rowid, l1, p1, l2, p2 in hard
            ),
        )
        for col in ("l1", "p1", "l2", "p2"):
            self._conn.execute(f"ALTER TABLE {_q(out)} DROP COLUMN {col}")
        return out, out_attrs, conditioned

    # ------------------------------------------------------ dissociation bounds
    def dissociated_bounds(self, plan: Plan) -> DissociationResult:
        """Dissociation enclosures of every answer, evaluated in pure SQL.

        The same two rewritten plans as
        :class:`repro.dissociation.engine.DissociationEvaluator`, folded with
        SQL aggregation only: intermediate temp tables carry ``(attrs...,
        pup, plo)``, projections OR-combine both columns with the guarded
        ``1 - EXP(SUM(LN(1 - p)))`` fold, and joins apply the symmetric
        failure split ``1 - POWER(1 - plo, 1.0/c)`` against the partner
        fan-out. No And-Or network, no conditioning, no per-row Python.
        """
        if not self.storage.has_math_functions():
            raise InferenceError(
                "SQL dissociation bounds need SQLite built-in math functions "
                "(EXP/LN/POWER, SQLite 3.35+)"
            )
        plan_schema(plan, self.db)
        self._dissociated = 0
        start = time.perf_counter()
        with _span("dissociation", engine="sql"):
            table, attrs = self._bounds_eval(plan)
            sel = (_cols(attrs) + ", pup, plo") if attrs else "pup, plo"
            rows = self._conn.execute(f"SELECT {sel} FROM {_q(table)}").fetchall()
        bounds: dict[tuple, DissociationBounds] = {}
        for row in rows:
            *values, pup, plo = row
            up = min(max(float(pup), 0.0), 1.0)
            lo = min(max(float(plo), 0.0), up)
            bounds[tuple(values)] = DissociationBounds(lo, up)
        result = DissociationResult(
            attributes=attrs,
            bounds=bounds,
            seconds=time.perf_counter() - start,
            dissociated=self._dissociated,
        )
        telemetry.record(
            "sql",
            query_hash=telemetry.query_hash(str(plan)),
            engine="sqlite",
            inference="dissociation",
            plan=str(plan),
            seconds=result.seconds,
            answers=len(bounds),
            rungs={"dissociation": len(bounds)},
            operators=[],
            dissociated=self._dissociated,
        )
        return result

    def dissociated_bounds_query(
        self, query: ConjunctiveQuery, join_order: list[str] | None = None
    ) -> DissociationResult:
        """Dissociation enclosures for *query*'s left-deep plan."""
        return self.dissociated_bounds(left_deep_plan(query, join_order))

    def _bounds_eval(self, plan: Plan) -> tuple[str, tuple[str, ...]]:
        with _span(
            f"sql.bounds.{type(plan).__name__.lower()}", op=str(plan)
        ):
            return self._bounds_eval_node(plan)

    def _bounds_eval_node(self, plan: Plan) -> tuple[str, tuple[str, ...]]:
        if isinstance(plan, Scan):
            return self._bounds_scan(plan)
        if isinstance(plan, Select):
            child, attrs = self._bounds_eval(plan.child)
            out = self._new_table()
            where = " AND ".join(f"{_q(a)} = ?" for a, _ in plan.conditions)
            self._conn.execute(
                f"CREATE TEMP TABLE {_q(out)} AS SELECT * FROM {_q(child)} "
                f"WHERE {where}",
                [v for _, v in plan.conditions],
            )
            return out, attrs
        if isinstance(plan, Filter):
            child, attrs = self._bounds_eval(plan.child)
            out = self._new_table()
            where, params = _comparison_clause(plan.predicates)
            self._conn.execute(
                f"CREATE TEMP TABLE {_q(out)} AS SELECT * FROM {_q(child)} "
                f"WHERE {where}",
                params,
            )
            return out, attrs
        if isinstance(plan, Project):
            return self._bounds_project(plan)
        if isinstance(plan, Join):
            return self._bounds_join(plan)
        raise PlanError(f"unknown plan node {plan!r}")

    def _bounds_scan(self, scan: Scan) -> tuple[str, tuple[str, ...]]:
        base = self.db[scan.relation]
        out = self._new_table()
        base_cols = base.schema.attributes
        if scan.terms is None:
            self._conn.execute(
                f"CREATE TEMP TABLE {_q(out)} AS SELECT {_cols(base_cols)}, "
                f"p AS pup, p AS plo FROM {_q(scan.relation)}"
            )
            return out, base_cols
        if len(scan.terms) != len(base_cols):
            raise PlanError(
                f"scan of {scan.relation}: {len(scan.terms)} terms for arity "
                f"{len(base_cols)}"
            )
        var_first: dict[str, int] = {}
        where: list[str] = []
        params: list[object] = []
        for i, t in enumerate(scan.terms):
            if isinstance(t, Constant):
                where.append(f"{_q(base_cols[i])} = ?")
                params.append(t.value)
            elif t.name in var_first:
                where.append(
                    f"{_q(base_cols[i])} = {_q(base_cols[var_first[t.name]])}"
                )
            else:
                var_first[t.name] = i
        sel = "".join(
            f"{_q(base_cols[i])} AS {_q(v)}, " for v, i in var_first.items()
        )
        clause = f" WHERE {' AND '.join(where)}" if where else ""
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(out)} AS "
            f"SELECT {sel}p AS pup, p AS plo FROM {_q(scan.relation)}{clause}",
            params,
        )
        return out, tuple(var_first)

    def _bounds_project(self, plan: Project) -> tuple[str, tuple[str, ...]]:
        child, _ = self._bounds_eval(plan.child)
        attrs = tuple(plan.attributes)
        out = self._new_table()
        folds = (
            f"{self._or_fold_sql('pup')} AS pup, "
            f"{self._or_fold_sql('plo')} AS plo"
        )
        if attrs:
            keys = _cols(attrs)
            self._conn.execute(
                f"CREATE TEMP TABLE {_q(out)} AS SELECT {keys}, {folds} "
                f"FROM {_q(child)} GROUP BY {keys}"
            )
        else:
            # SELECT with aggregates and no GROUP BY always yields one row;
            # HAVING drops it when the child is empty (probability-0 answer).
            self._conn.execute(
                f"CREATE TEMP TABLE {_q(out)} AS SELECT {folds} "
                f"FROM {_q(child)} HAVING COUNT(*) > 0"
            )
        return out, attrs

    def _split_lower(
        self, table: str, attrs: tuple[str, ...], on: Sequence[str], other: str
    ) -> str:
        """A copy of *table* with ``plo`` symmetrically split by fan-out.

        Each tuple with ``c > 1`` join partners in *other* is about to be
        referenced ``c`` times; splitting its failure mass evenly
        (``plo' = 1 - (1 - plo)^(1/c)``) keeps the downstream extensional
        fold a sound lower bound.
        """
        vals = (_cols(attrs, "t") + ", ") if attrs else ""
        if not on:
            (partners,) = self._conn.execute(
                f"SELECT COUNT(*) FROM {_q(other)}"
            ).fetchone()
            if partners <= 1:
                return table
            (n,) = self._conn.execute(
                f"SELECT COUNT(*) FROM {_q(table)} WHERE plo < 1.0"
            ).fetchone()
            self._dissociated += n
            _add("dissociated", n)
            out = self._new_table()
            self._conn.execute(
                f"CREATE TEMP TABLE {_q(out)} AS SELECT {vals}t.pup AS pup, "
                f"CASE WHEN t.plo < 1.0 "
                f"THEN 1.0 - POWER(1.0 - t.plo, 1.0 / ?) ELSE t.plo END AS plo "
                f"FROM {_q(table)} t",
                (float(partners),),
            )
            return out
        keys = _cols(on)
        on_clause = " AND ".join(f"t.{_q(a)} = g.{_q(a)}" for a in on)
        fanout = (
            f"(SELECT {keys}, COUNT(*) AS c FROM {_q(other)} GROUP BY {keys})"
        )
        (n,) = self._conn.execute(
            f"SELECT COUNT(*) FROM {_q(table)} t JOIN {fanout} g "
            f"ON {on_clause} WHERE g.c > 1 AND t.plo < 1.0"
        ).fetchone()
        self._dissociated += n
        _add("dissociated", n)
        out = self._new_table()
        # LEFT JOIN: partnerless rows keep plo (NULL fan-out falls to ELSE)
        # and drop at the join anyway.
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(out)} AS SELECT {vals}t.pup AS pup, "
            f"CASE WHEN g.c > 1 AND t.plo < 1.0 "
            f"THEN 1.0 - POWER(1.0 - t.plo, 1.0 / g.c) ELSE t.plo END AS plo "
            f"FROM {_q(table)} t LEFT JOIN {fanout} g ON {on_clause}"
        )
        return out

    def _bounds_join(self, plan: Join) -> tuple[str, tuple[str, ...]]:
        ltable, lattrs = self._bounds_eval(plan.left)
        rtable, rattrs = self._bounds_eval(plan.right)
        on = tuple(plan.on)
        lsplit = self._split_lower(ltable, lattrs, on, rtable)
        rsplit = self._split_lower(rtable, rattrs, on, ltable)
        keep = tuple(a for a in rattrs if a not in set(on))
        out_attrs = lattrs + keep
        out = self._new_table()
        lsel = (_cols(lattrs, "L") + ", ") if lattrs else ""
        ksel = (_cols(keep, "R") + ", ") if keep else ""
        on_clause = (
            " AND ".join(f"L.{_q(a)} = R.{_q(a)}" for a in on) if on else "1 = 1"
        )
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(out)} AS SELECT {lsel}{ksel}"
            f"L.pup * R.pup AS pup, L.plo * R.plo AS plo "
            f"FROM {_q(lsplit)} L JOIN {_q(rsplit)} R ON {on_clause}"
        )
        return out, out_attrs
