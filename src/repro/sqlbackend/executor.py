"""Partial-lineage plan evaluation pushed into SQLite.

Mirrors :class:`repro.core.executor.PartialLineageEvaluator`, but every
intermediate pL-relation is a SQLite temp table ``(attrs..., l, p)`` and the
set-oriented work — scans, selections, joins, offending-tuple detection,
independent-project aggregation, duplicate-group detection — is SQL. Python
touches only the rows that need network surgery (conditioned tuples, And
gates of symbolic×symbolic join pairs, Or gates of duplicate groups), which
is exactly the paper's extensional/intensional split.
"""

from __future__ import annotations

import itertools
import sqlite3
from typing import Sequence

from repro.core.executor import EvaluationResult, OffendingTuple, OperatorStat
from repro.core.network import EPSILON, AndOrNetwork, NodeKind
from repro.core.plan import Join, Plan, Project, Scan, Select, left_deep_plan, plan_schema
from repro.core.plrelation import PLRelation
from repro.db.database import ProbabilisticDatabase
from repro.errors import PlanError
from repro.query.syntax import ConjunctiveQuery, Constant
from repro.sqlbackend.storage import SQLiteStorage, _check_identifier


def _q(name: str) -> str:
    _check_identifier(name)
    return f'"{name}"'


def _cols(attrs: Sequence[str], prefix: str = "") -> str:
    p = f"{prefix}." if prefix else ""
    return ", ".join(f"{p}{_q(a)}" for a in attrs)


class SQLitePartialLineageEvaluator:
    """Evaluate plans with partial lineage, extensional work in SQLite.

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> _ = db.add_relation("S", ("A", "B"), {(1, 1): 0.5, (1, 2): 0.5})
    >>> _ = db.add_relation("T", ("B",), {(1,): 0.9, (2,): 0.9})
    >>> ev = SQLitePartialLineageEvaluator(db)
    >>> res = ev.evaluate_query(parse_query("q() :- R(x), S(x,y), T(y)"))
    >>> round(res.boolean_probability(), 6)
    0.34875
    """

    def __init__(self, db: ProbabilisticDatabase) -> None:
        self.db = db
        self.storage = SQLiteStorage.from_database(db)
        self._tmp = itertools.count()
        self._provenance: list[OffendingTuple] = []

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self.storage.close()

    # ------------------------------------------------------------ entry points
    def evaluate(self, plan: Plan) -> EvaluationResult:
        """Evaluate an explicit plan and return the standard result object."""
        plan_schema(plan, self.db)
        network = AndOrNetwork()
        stats: list[OperatorStat] = []
        conditioned: list[OffendingTuple] = []
        self._provenance = conditioned
        table, attrs = self._eval(plan, network, stats)
        rel = self._fetch(table, attrs, network)
        return EvaluationResult(rel, network, stats, conditioned)

    def evaluate_query(
        self, query: ConjunctiveQuery, join_order: list[str] | None = None
    ) -> EvaluationResult:
        """Build the left-deep plan for *query* and evaluate it."""
        return self.evaluate(left_deep_plan(query, join_order))

    # ----------------------------------------------------------------- helpers
    @property
    def _conn(self) -> sqlite3.Connection:
        return self.storage.connection

    def _new_table(self) -> str:
        return f"_pl{next(self._tmp)}"

    def _fetch(
        self, table: str, attrs: tuple[str, ...], network: AndOrNetwork
    ) -> PLRelation:
        rel = PLRelation(attrs, network, name=table)
        sel = _cols(attrs) + ", l, p" if attrs else "l, p"
        for row in self._conn.execute(f"SELECT {sel} FROM {_q(table)}"):
            *values, l, p = row
            rel.add(tuple(values), int(l), float(p))
        return rel

    def _count(self, table: str) -> int:
        (n,) = self._conn.execute(f"SELECT COUNT(*) FROM {_q(table)}").fetchone()
        return n

    # --------------------------------------------------------------- operators
    def _eval(
        self, plan: Plan, net: AndOrNetwork, stats: list[OperatorStat]
    ) -> tuple[str, tuple[str, ...]]:
        if isinstance(plan, Scan):
            table, attrs = self._scan(plan)
        elif isinstance(plan, Select):
            table, attrs = self._select(plan, net, stats)
        elif isinstance(plan, Project):
            table, attrs = self._project(plan, net, stats)
        elif isinstance(plan, Join):
            return self._join(plan, net, stats)
        else:
            raise PlanError(f"unknown plan node {plan!r}")
        stats.append(OperatorStat(str(plan), output_size=self._count(table)))
        return table, attrs

    def _scan(self, scan: Scan) -> tuple[str, tuple[str, ...]]:
        base = self.db[scan.relation]
        out = self._new_table()
        base_cols = base.schema.attributes
        if scan.terms is None:
            sel = _cols(base_cols)
            self._conn.execute(
                f"CREATE TEMP TABLE {_q(out)} AS "
                f"SELECT {sel}, 0 AS l, p FROM {_q(scan.relation)}"
            )
            return out, base_cols
        if len(scan.terms) != len(base_cols):
            raise PlanError(
                f"scan of {scan.relation}: {len(scan.terms)} terms for arity "
                f"{len(base_cols)}"
            )
        var_first: dict[str, int] = {}
        where: list[str] = []
        params: list[object] = []
        for i, t in enumerate(scan.terms):
            if isinstance(t, Constant):
                where.append(f"{_q(base_cols[i])} = ?")
                params.append(t.value)
            elif t.name in var_first:
                where.append(f"{_q(base_cols[i])} = {_q(base_cols[var_first[t.name]])}")
            else:
                var_first[t.name] = i
        sel = ", ".join(
            f"{_q(base_cols[i])} AS {_q(v)}" for v, i in var_first.items()
        )
        clause = f" WHERE {' AND '.join(where)}" if where else ""
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(out)} AS "
            f"SELECT {sel}, 0 AS l, p FROM {_q(scan.relation)}{clause}",
            params,
        )
        return out, tuple(var_first)

    def _select(
        self, plan: Select, net: AndOrNetwork, stats: list[OperatorStat]
    ) -> tuple[str, tuple[str, ...]]:
        child, attrs = self._eval(plan.child, net, stats)
        out = self._new_table()
        where = " AND ".join(f"{_q(a)} = ?" for a, _ in plan.conditions)
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(out)} AS SELECT * FROM {_q(child)} "
            f"WHERE {where}",
            [v for _, v in plan.conditions],
        )
        return out, attrs

    def _project(
        self, plan: Project, net: AndOrNetwork, stats: list[OperatorStat]
    ) -> tuple[str, tuple[str, ...]]:
        child, _ = self._eval(plan.child, net, stats)
        attrs = tuple(plan.attributes)
        # Independent project: group by (attrs, l), OR-combine the p column.
        ip = self._new_table()
        group = (_cols(attrs) + ", l") if attrs else "l"
        sel = (_cols(attrs) + ", ") if attrs else ""
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(ip)} AS "
            f"SELECT {sel}l, indep_or(p) AS p FROM {_q(child)} GROUP BY {group}"
        )
        # Deduplication: single-member groups pass through in SQL; duplicate
        # groups come out to Python for Or-gate allocation.
        out = self._new_table()
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(out)} AS SELECT * FROM {_q(ip)} WHERE 0"
        )
        if attrs:
            keys = _cols(attrs)
            self._conn.execute(
                f"INSERT INTO {_q(out)} "
                f"SELECT i.* FROM {_q(ip)} i JOIN (SELECT {keys} FROM {_q(ip)} "
                f"GROUP BY {keys} HAVING COUNT(*) = 1) s USING ({keys})"
            )
            dup_rows = self._conn.execute(
                f"SELECT i.* FROM {_q(ip)} i JOIN (SELECT {keys} FROM {_q(ip)} "
                f"GROUP BY {keys} HAVING COUNT(*) > 1) s USING ({keys}) "
                f"ORDER BY {keys}"
            ).fetchall()
            groups: dict[tuple, list[tuple[int, float]]] = {}
            for row in dup_rows:
                *values, l, p = row
                groups.setdefault(tuple(values), []).append((int(l), float(p)))
            placeholders = ", ".join("?" for _ in range(len(attrs) + 2))
            self._conn.executemany(
                f"INSERT INTO {_q(out)} VALUES ({placeholders})",
                (
                    key + (net.add_gate(NodeKind.OR, members), 1.0)
                    for key, members in groups.items()
                ),
            )
        else:
            rows = self._conn.execute(f"SELECT l, p FROM {_q(ip)}").fetchall()
            if len(rows) == 1:
                self._conn.execute(
                    f"INSERT INTO {_q(out)} VALUES (?, ?)", rows[0]
                )
            elif len(rows) > 1:
                gate = net.add_gate(
                    NodeKind.OR, [(int(l), float(p)) for l, p in rows]
                )
                self._conn.execute(
                    f"INSERT INTO {_q(out)} VALUES (?, ?)", (gate, 1.0)
                )
        return out, attrs

    def _condition_in_place(
        self, table: str, attrs: tuple[str, ...], on: Sequence[str],
        other: str, net: AndOrNetwork, source: str,
    ) -> int:
        """Condition *table* on its cSet w.r.t. *other*; returns the count.

        The offending rows — uncertain, with more than one join partner — are
        found with one SQL join against the partner fan-out; each gets a fresh
        leaf (or a single-parent And gate if it already carries lineage) and
        becomes deterministic in place.
        """
        value_cols = (_cols(attrs, "t") + ", ") if attrs else ""
        if not on:
            # A cross product offends every uncertain tuple when the other
            # side has more than one row.
            (partners,) = self._conn.execute(
                f"SELECT COUNT(*) FROM {_q(other)}"
            ).fetchone()
            if partners <= 1:
                return 0
            rows = self._conn.execute(
                f"SELECT {value_cols}t.rowid, t.l, t.p FROM {_q(table)} t "
                f"WHERE t.p < 1.0"
            ).fetchall()
        else:
            keys = _cols(on)
            on_clause = " AND ".join(f"t.{_q(a)} = g.{_q(a)}" for a in on)
            rows = self._conn.execute(
                f"SELECT {value_cols}t.rowid, t.l, t.p FROM {_q(table)} t "
                f"JOIN (SELECT {keys}, COUNT(*) AS c FROM {_q(other)} "
                f"GROUP BY {keys}) g ON {on_clause} "
                f"WHERE t.p < 1.0 AND g.c > 1"
            ).fetchall()
        updates = []
        for *values, rowid, l, p in rows:
            l, p = int(l), float(p)
            node = net.add_leaf(p) if l == EPSILON else net.add_gate(
                NodeKind.AND, [(l, p)]
            )
            self._provenance.append(
                OffendingTuple(source, tuple(values), node)
            )
            updates.append((node, rowid))
        self._conn.executemany(
            f"UPDATE {_q(table)} SET l = ?, p = 1.0 WHERE rowid = ?", updates
        )
        return len(updates)

    def _join(
        self, plan: Join, net: AndOrNetwork, stats: list[OperatorStat]
    ) -> tuple[str, tuple[str, ...]]:
        ltable, lattrs = self._eval(plan.left, net, stats)
        rtable, rattrs = self._eval(plan.right, net, stats)
        on = tuple(plan.on)
        conditioned = self._condition_in_place(
            ltable, lattrs, on, rtable, net, str(plan.left)
        )
        conditioned += self._condition_in_place(
            rtable, rattrs, on, ltable, net, str(plan.right)
        )
        keep = tuple(a for a in rattrs if a not in set(on))
        out_attrs = lattrs + keep
        out = self._new_table()
        lsel = _cols(lattrs, "L")
        ksel = (", " + _cols(keep, "R")) if keep else ""
        on_clause = (
            " AND ".join(f"L.{_q(a)} = R.{_q(a)}" for a in on) if on else "1 = 1"
        )
        # Rows with at most one symbolic side are pure SQL: lineage is the
        # symbolic side's node (l1 + l2 works because the other is 0) and the
        # probabilities multiply. Symbolic×symbolic pairs get And gates below.
        self._conn.execute(
            f"CREATE TEMP TABLE {_q(out)} AS "
            f"SELECT {lsel}{ksel}, "
            f"CASE WHEN L.l = 0 OR R.l = 0 THEN L.l + R.l ELSE -1 END AS l, "
            f"CASE WHEN L.l = 0 OR R.l = 0 THEN L.p * R.p ELSE -1.0 END AS p, "
            f"L.l AS l1, L.p AS p1, R.l AS l2, R.p AS p2 "
            f"FROM {_q(ltable)} L JOIN {_q(rtable)} R ON {on_clause}"
        )
        hard = self._conn.execute(
            f"SELECT rowid, l1, p1, l2, p2 FROM {_q(out)} WHERE l = -1"
        ).fetchall()
        self._conn.executemany(
            f"UPDATE {_q(out)} SET l = ?, p = 1.0 WHERE rowid = ?",
            (
                (
                    net.add_gate(
                        NodeKind.AND,
                        [(int(l1), float(p1)), (int(l2), float(p2))],
                    ),
                    rowid,
                )
                for rowid, l1, p1, l2, p2 in hard
            ),
        )
        for col in ("l1", "p1", "l2", "p2"):
            self._conn.execute(f"ALTER TABLE {_q(out)} DROP COLUMN {col}")
        stats.append(
            OperatorStat(
                str(plan), output_size=self._count(out), conditioned=conditioned
            )
        )
        return out, out_attrs
