"""No-op tracer overhead guard (the CI smoke check).

The instrumentation sites stay in the hot paths permanently, so the design
contract of :mod:`repro.obs.trace` — *inactive spans cost one thread-local
read* — must hold measurably. Uninstrumented code no longer exists to
compare against, so the check bounds the overhead from first principles:

1. time the no-op :func:`repro.obs.trace.span` entry/exit in a tight loop
   (no tracer active), giving the per-call cost;
2. run the columnar bench's small workload config once under a real
   :class:`~repro.obs.trace.Tracer` and count the spans the evaluation
   opens;
3. time the same evaluation with the tracer off.

``span_count x per_call_cost / eval_wall`` is then the fraction of the
untraced run spent inside no-op instrumentation. The always-on flight
recorder (:mod:`repro.obs.telemetry`) is bounded the same way: its
per-record cost with the ring buffer active and no sink attached
(:func:`recorder_record_cost`), times the records one evaluation emits
(:func:`flight_records_per_eval`), joins the span budget. CI asserts the
combined fraction stays under 5% (``--threshold``); in practice it sits
orders of magnitude below — the recorder writes one record per
*evaluation*, not per tuple, so its cost does not grow with instance size.

Run ``PYTHONPATH=src python -m repro.obs.check``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.obs.trace import Tracer, current_tracer, span

__all__ = [
    "noop_span_cost",
    "recorder_record_cost",
    "flight_records_per_eval",
    "measure_workload",
    "main",
]


def noop_span_cost(iterations: int = 200_000) -> float:
    """Mean seconds per inactive ``with span(...)`` entry/exit pair."""
    if current_tracer() is not None:
        raise RuntimeError("noop_span_cost needs the tracer off")
    start = time.perf_counter()
    for _ in range(iterations):
        with span("noop"):
            pass
    return (time.perf_counter() - start) / iterations


def recorder_record_cost(iterations: int = 20_000) -> float:
    """Mean seconds per flight-recorder ``record()`` call, sink discarded.

    Measures the always-on configuration: ring buffer active, no JSONL sink
    attached — the cost every evaluation pays whether or not anyone is
    collecting the records.
    """
    from repro.obs.telemetry import FlightRecorder

    recorder = FlightRecorder(capacity=512)
    operators = [
        {"operator": f"op{i}", "output_size": 40, "conditioned": 1,
         "seconds": 1e-4}
        for i in range(8)
    ]
    start = time.perf_counter()
    for _ in range(iterations):
        recorder.record(
            "query", query_hash="deadbeef0000", engine="columnar",
            seconds=0.01, answers=2, offending=3, network_nodes=8,
            operators=operators, rungs={"exact": 2},
        )
    return (time.perf_counter() - start) / iterations


def _workload_runner(*, n: int, m: int, seed: int, query: str):
    """A zero-argument callable running one bench query end to end."""
    from repro.core.executor import PartialLineageEvaluator
    from repro.workload.generator import WorkloadParams, generate_database
    from repro.workload.queries import benchmark_query

    bench = benchmark_query(query)
    db = generate_database(
        WorkloadParams(N=n, m=m, fanout=4, r_f=0.01, r_d=1.0, seed=seed)
    )

    def run():
        evaluator = PartialLineageEvaluator(db)
        result = evaluator.evaluate_query(bench.query, list(bench.join_order))
        return result.answer_probabilities()

    return run


def flight_records_per_eval(
    *, n: int = 2, m: int = 40, seed: int = 7, query: str = "P1"
) -> int:
    """Flight records one evaluation emits (constant in instance size)."""
    from repro.obs.telemetry import flight_recorder

    run = _workload_runner(n=n, m=m, seed=seed, query=query)
    with flight_recorder() as recorder:
        run()
    return recorder.recorded


def measure_workload(
    *, n: int = 2, m: int = 200, seed: int = 7, query: str = "P1"
) -> tuple[int, float]:
    """``(span_count, untraced_eval_seconds)`` of one small bench query.

    The workload matches the columnar suite's smallest scaling point, so the
    bound certifies the configuration CI actually times.
    """
    run = _workload_runner(n=n, m=m, seed=seed, query=query)
    with Tracer() as tracer:
        run()  # warm caches and count the spans the evaluation opens
    spans = tracer.total_spans()

    start = time.perf_counter()
    run()
    wall = time.perf_counter() - start
    return spans, wall


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exit 0 iff the overhead bound holds."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.check",
        description="Bound the inactive-tracer overhead of the permanent "
                    "instrumentation sites.",
    )
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="maximum tolerated overhead fraction "
                             "(default: %(default)s)")
    parser.add_argument("--iterations", type=int, default=200_000,
                        help="no-op span timing loop length")
    parser.add_argument("--m", type=int, default=200,
                        help="workload size m (default: the columnar "
                             "suite's smallest point)")
    parser.add_argument("--query", default="P1",
                        help="Table 1 query to evaluate")
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    per_call = noop_span_cost(args.iterations)
    per_record = recorder_record_cost(max(1, args.iterations // 10))
    records = flight_records_per_eval(query=args.query)
    spans, wall = measure_workload(m=args.m, query=args.query)
    budget = spans * per_call + records * per_record
    fraction = budget / wall if wall > 0 else 0.0
    print(f"no-op span cost:        {per_call * 1e9:.0f} ns/call")
    print(f"recorder record cost:   {per_record * 1e9:.0f} ns/record "
          f"(ring only, sink discarded)")
    print(f"spans per evaluation:   {spans}")
    print(f"records per evaluation: {records}")
    print(f"untraced eval wall:     {wall * 1e3:.2f} ms")
    print(f"overhead bound:         {fraction:.4%} "
          f"(threshold {args.threshold:.0%})")
    if fraction >= args.threshold:
        print("FAIL: inactive instrumentation exceeds the overhead budget",
              file=sys.stderr)
        return 1
    print("OK: inactive instrumentation is within the overhead budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
