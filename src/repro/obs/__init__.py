"""repro.obs — unified tracing, metrics, and query-explain subsystem.

One instrumentation substrate for the whole pipeline:

* :mod:`repro.obs.trace` — a zero-dependency span tracer (nested spans with
  attrs, wall/CPU time, counters; thread-local stacks; picklable span trees
  that cross the :mod:`repro.perf.parallel` process boundary; a no-op fast
  path cheap enough to leave the instrumentation on permanently);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters, gauges,
  and histograms that absorbs the per-layer stats objects
  (``OperatorStat``, ``CacheStats``, ``DPLLStats``) through their common
  ``as_dict()``;
* :mod:`repro.obs.export` — the ``--profile`` text tree, Chrome
  trace-event JSON and its validator, and the OpenMetrics/Prometheus text
  exporter plus the promtool-style linter behind ``repro obs metrics``;
* :mod:`repro.obs.telemetry` — the always-on per-query flight recorder: a
  ring-buffered structured event log (optionally JSONL-sinked via
  ``--flight-log``) with one record per evaluation across every layer;
* :mod:`repro.obs.slo` — latency percentile / error-rate / degradation-rate
  objectives computed from the histograms, behind ``repro obs slo``;
* :mod:`repro.obs.report` — the per-query :class:`ExplainReport` behind
  ``repro explain``.
"""

from repro.obs.export import (
    chrome_events,
    format_trace,
    render_openmetrics,
    validate_chrome_trace,
    validate_openmetrics,
    write_chrome_trace,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLO_TARGETS,
    SERVE_SLO_TARGETS,
    SLOReport,
    SLOTarget,
    evaluate_slos,
    registry_from_records,
    slo_report_from_records,
)
from repro.obs.telemetry import (
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    current_recorder,
    flight_recorder,
    read_flight_log,
    validate_flight_records,
)
from repro.obs.trace import (
    Span,
    Tracer,
    add,
    annotate,
    current_tracer,
    span,
    traced,
)

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "span",
    "add",
    "annotate",
    "traced",
    "Histogram",
    "MetricsRegistry",
    "format_trace",
    "chrome_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "render_openmetrics",
    "validate_openmetrics",
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "current_recorder",
    "flight_recorder",
    "read_flight_log",
    "validate_flight_records",
    "SLOTarget",
    "SLOReport",
    "DEFAULT_SLO_TARGETS",
    "SERVE_SLO_TARGETS",
    "evaluate_slos",
    "registry_from_records",
    "slo_report_from_records",
    "ExplainReport",
    "build_explain_report",
]


def __getattr__(name: str):
    # Loaded lazily: repro.obs.report imports the evaluator stack, which is
    # itself instrumented with repro.obs.trace — an eager import here would
    # close that cycle during ``import repro.core.executor``.
    if name in ("ExplainReport", "build_explain_report"):
        from repro.obs import report

        return getattr(report, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
