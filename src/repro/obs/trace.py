"""Span-based tracer: the instrumentation substrate of the pipeline.

A :class:`Span` is one named, timed region of work — an operator
application, a per-component marginal solve, a Monte-Carlo batch — with
attributes, counters, wall/CPU durations, and nested children. A
:class:`Tracer` collects a forest of spans per thread; activating one
(``with Tracer() as t:``) makes the module-level :func:`span` /
:func:`add` / :func:`annotate` helpers record into it.

The design constraints, in order:

* **Cheap enough to leave on.** Instrumented code calls :func:`span`
  unconditionally; with no active tracer it returns a shared no-op handle
  after a single thread-local attribute read. The instrumentation sites
  therefore stay in the hot paths permanently (``repro.obs.check`` asserts
  the no-op cost stays below 5% of the columnar bench's small config).
* **Picklable.** Spans are plain dataclasses of primitives, so
  :mod:`repro.perf.parallel` workers trace locally and ship their span
  forests back in the task result; :meth:`Tracer.attach` grafts them under
  the dispatch span, producing one cross-process timeline (each span
  remembers its ``pid``/``tid``).
* **Thread-correct.** The current-span stack is thread-local; concurrent
  threads tracing into one tracer produce interleaved root spans, never
  corrupted nesting. The shared root forest itself is guarded by a lock,
  so concurrent sessions of the query service never lose a root span to a
  torn list append.

Examples
--------
>>> with Tracer() as t:
...     with span("outer", engine="columnar") as s:
...         with span("inner"):
...             add("tuples", 42)
>>> root = t.roots[0]
>>> root.name, root.attrs["engine"], root.children[0].counters["tuples"]
('outer', 'columnar', 42)
"""

from __future__ import annotations

import functools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "span",
    "add",
    "annotate",
    "traced",
]


@dataclass
class Span:
    """One named, timed region of work; a node of the trace tree.

    Plain primitives throughout, so span trees pickle and cross process
    boundaries (see :meth:`Tracer.attach`).
    """

    name: str
    attrs: dict = field(default_factory=dict)
    #: Wall-clock start as a Unix epoch (``time.time()``) — the cross-process
    #: timeline axis of the Chrome exporter.
    t0: float = 0.0
    #: Wall-clock duration in seconds (``time.perf_counter`` delta).
    wall: float = 0.0
    #: CPU time consumed by this process during the span.
    cpu: float = 0.0
    counters: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    pid: int = 0
    tid: int = 0

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All descendants (including self) named *name*."""
        return [s for s in self.walk() if s.name == name]

    def total_spans(self) -> int:
        """Number of spans in this subtree."""
        return sum(1 for _ in self.walk())


class _NoopHandle:
    """The shared do-nothing span handle returned when no tracer is active."""

    __slots__ = ()

    def __enter__(self) -> "_NoopHandle":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, name: str, value: float = 1.0) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass


_NOOP = _NoopHandle()

# Active tracer per thread. Worker processes start with none, so
# instrumentation in shipped code stays no-op unless the worker opts in.
_state = threading.local()


def current_tracer() -> "Tracer | None":
    """The tracer activated on this thread, or ``None``."""
    return getattr(_state, "tracer", None)


class _OpenHandle:
    """Context manager for one span being recorded."""

    __slots__ = ("_tracer", "span", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", s: Span) -> None:
        self._tracer = tracer
        self.span = s

    def __enter__(self) -> "_OpenHandle":
        s = self.span
        s.pid = os.getpid()
        s.tid = threading.get_ident()
        stack = self._tracer._stack()
        if stack:
            stack[-1].children.append(s)
        else:
            self._tracer._add_root(s)
        stack.append(s)
        s.t0 = time.time()
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.span.wall = time.perf_counter() - self._wall0
        self.span.cpu = time.process_time() - self._cpu0
        self._tracer._stack().pop()
        return False

    def add(self, name: str, value: float = 1.0) -> None:
        """Bump a counter on this span."""
        counters = self.span.counters
        counters[name] = counters.get(name, 0) + value

    def annotate(self, **attrs) -> None:
        """Set attributes on this span."""
        self.span.attrs.update(attrs)


class Tracer:
    """Collects a forest of spans; activate with ``with Tracer() as t:``.

    Activation is per thread and re-entrant-safe: the previously active
    tracer (if any) is restored on exit.
    """

    def __init__(self) -> None:
        #: Finished (or still open) top-level spans, in start order.
        self.roots: list[Span] = []
        self._tls = threading.local()
        self._roots_lock = threading.Lock()
        self._prev: "Tracer | None" = None

    # ------------------------------------------------------------ recording
    def _add_root(self, s: Span) -> None:
        with self._roots_lock:
            self.roots.append(s)

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(self, name: str, **attrs) -> _OpenHandle:
        """Open a span nested under the thread's current span."""
        return _OpenHandle(self, Span(name, attrs))

    def current(self) -> Span | None:
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def add(self, name: str, value: float = 1.0) -> None:
        """Bump a counter on the current span (no-op at top level)."""
        s = self.current()
        if s is not None:
            s.counters[name] = s.counters.get(name, 0) + value

    def annotate(self, **attrs) -> None:
        """Set attributes on the current span (no-op at top level)."""
        s = self.current()
        if s is not None:
            s.attrs.update(attrs)

    def attach(self, spans: Iterable[Span], under: Span | None = None) -> None:
        """Graft foreign span trees (e.g. unpickled from a worker process)
        under *under*, the current span, or the root forest."""
        spans = list(spans)
        if under is None:
            under = self.current()
        if under is None:
            with self._roots_lock:
                self.roots.extend(spans)
        else:
            under.children.extend(spans)

    def total_spans(self) -> int:
        """Number of spans recorded across the whole forest."""
        with self._roots_lock:
            roots = list(self.roots)
        return sum(root.total_spans() for root in roots)

    # ----------------------------------------------------------- activation
    def __enter__(self) -> "Tracer":
        self._prev = getattr(_state, "tracer", None)
        _state.tracer = self
        return self

    def __exit__(self, *exc) -> bool:
        _state.tracer = self._prev
        self._prev = None
        return False


def span(name: str, **attrs):
    """Open a span on the active tracer; a shared no-op without one.

    This is the instrumentation entry point left permanently in hot paths:
    the inactive cost is one thread-local read plus returning a singleton.
    """
    tracer = getattr(_state, "tracer", None)
    if tracer is None:
        return _NOOP
    return tracer.span(name, **attrs)


def add(name: str, value: float = 1.0) -> None:
    """Bump a counter on the active tracer's current span (no-op when off)."""
    tracer = getattr(_state, "tracer", None)
    if tracer is not None:
        tracer.add(name, value)


def annotate(**attrs) -> None:
    """Set attributes on the active tracer's current span (no-op when off)."""
    tracer = getattr(_state, "tracer", None)
    if tracer is not None:
        tracer.annotate(**attrs)


def traced(name: str | None = None, **span_attrs) -> Callable:
    """Decorator form of :func:`span`.

    With no active tracer the wrapped function is called directly — the
    only residual cost is the wrapper call itself.

    Examples
    --------
    >>> @traced("solve", engine="ve")
    ... def solve(x):
    ...     return x * 2
    >>> with Tracer() as t:
    ...     _ = solve(21)
    >>> t.roots[0].name, t.roots[0].attrs
    ('solve', {'engine': 've'})
    """

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = getattr(_state, "tracer", None)
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(label, **span_attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
