"""Metrics registry: counters, gauges, and histograms with one JSON shape.

The pipeline's work accounting used to live in bespoke objects —
:class:`~repro.core.executor.OperatorStat`,
:class:`~repro.perf.cache.CacheStats`,
:class:`~repro.lineage.exact.DPLLStats`, ad-hoc bench dicts. The
:class:`MetricsRegistry` is the common sink: every such object implements
``as_dict()`` and is absorbed under a name prefix, new instrumentation
records directly, and one :meth:`~MetricsRegistry.snapshot` emits the whole
state as plain JSON for ``BENCH_*.json`` files and explain reports.

Metric taxonomy (dotted names, lowercase):

* ``counter`` — monotone totals (``cache.hits``, ``parallel.chunks``);
* ``gauge`` — last-written values (``network.nodes``, ``pool.workers``);
* ``histogram`` — distributions (``component.size``, ``chunk.cost``),
  recorded as count/sum/min/max plus power-of-two bucket counts.

Examples
--------
>>> reg = MetricsRegistry()
>>> reg.inc("cache.hits", 3)
>>> reg.gauge("network.nodes", 17)
>>> for size in (1, 1, 5):
...     reg.observe("component.size", size)
>>> snap = reg.snapshot()
>>> snap["counters"]["cache.hits"], snap["gauges"]["network.nodes"]
(3, 17)
>>> snap["histograms"]["component.size"]["count"]
3
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

__all__ = ["Histogram", "MetricsRegistry"]


@dataclass
class Histogram:
    """Streaming distribution summary with power-of-two buckets.

    ``buckets[k]`` counts observations ``v`` with ``2**(k-1) < v <= 2**k``
    (``k = 0`` catches everything at or below 1). Enough resolution for
    component sizes, chunk costs, and operator timings without storing
    samples.
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        k = 0 if value <= 1.0 else math.ceil(math.log2(value))
        self.buckets[k] = self.buckets.get(k, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate from the power-of-two buckets.

        Walks the cumulative bucket counts to the bucket holding the
        nearest-rank observation and returns that bucket's upper edge,
        clamped into ``[min, max]``. The estimate therefore always lies in
        the same bucket as (and at or above) the exact nearest-rank value —
        the "within one bucket" accuracy the SLO layer advertises.

        Examples
        --------
        >>> h = Histogram()
        >>> for v in (1, 2, 3, 100):
        ...     h.observe(v)
        >>> h.percentile(0.5)
        2.0
        >>> h.percentile(1.0)
        100.0
        """
        if not self.count:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile fraction {q!r} not in [0, 1]")
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for k in sorted(self.buckets):
            cumulative += self.buckets[k]
            if cumulative >= rank:
                upper = 2.0 ** k
                return min(max(upper, self.min), self.max)
        return self.max

    def as_dict(self) -> dict:
        """JSON shape; bucket keys become ``"<=2^k"`` strings."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                f"<=2^{k}": n for k, n in sorted(self.buckets.items())
            },
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms; one snapshot, one JSON shape.

    All recording and reading methods are thread-safe: one registry can be
    shared by every concurrent session of the query service, and concurrent
    :meth:`inc`/:meth:`observe` calls never lose updates (the read-modify-
    write cycles run under an internal re-entrant lock).

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> from repro.perf.cache import CacheStats
    >>> reg.absorb("cache", CacheStats(hits=3, misses=1))
    >>> reg.snapshot()["counters"]["cache.hits"]
    3
    >>> reg.snapshot()["gauges"]["cache.hit_rate"]
    0.75
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, object] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------ recording
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add *value* to the counter *name* (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value) -> None:
        """Set the gauge *name* to *value* (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram *name*."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def histogram(self, name: str) -> Histogram:
        """The histogram *name*, created empty on first access.

        The returned object is shared; mutate it only from one thread or
        via :meth:`observe` (which locks)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            return hist

    def absorb(self, prefix: str, stats) -> None:
        """Unify a stats object under *prefix*.

        *stats* is anything with ``as_dict()`` (the shared convention of
        ``OperatorStat``, ``CacheStats``, ``DPLLStats``, …) or a plain
        mapping. Integer values land as counters; everything else (rates,
        strings, flags) as gauges.
        """
        items = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
        with self._lock:
            for key, value in items.items():
                name = f"{prefix}.{key}"
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    self._gauges[name] = value
                elif isinstance(value, int):
                    self.inc(name, value)
                else:
                    self._gauges[name] = value

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add; gauges take the incoming value; histograms add their
        summaries bucket-wise (the merge a worker pool needs).
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.inc(name, value)
            self._gauges.update(snapshot.get("gauges", {}))
            for name, summary in snapshot.get("histograms", {}).items():
                hist = self.histogram(name)
                if not summary.get("count"):
                    continue
                hist.count += summary["count"]
                hist.total += summary["sum"]
                hist.min = min(hist.min, summary["min"])
                hist.max = max(hist.max, summary["max"])
                for label, n in summary.get("buckets", {}).items():
                    k = int(label.split("^", 1)[1])
                    hist.buckets[k] = hist.buckets.get(k, 0) + n

    # ------------------------------------------------------------- reading
    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """The whole registry as sorted, JSON-serialisable dicts."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: hist.as_dict()
                    for name, hist in sorted(self._histograms.items())
                },
            }
