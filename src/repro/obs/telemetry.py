"""Per-query flight recorder: always-on, bounded-overhead telemetry.

Every evaluation the pipeline performs — a CLI query, a workload replay
method, a resilient ladder run, a fault-tolerant pool chunk, a SQL-backend
query — appends one structured record to the active
:class:`FlightRecorder`. The recorder is the workload-level counterpart of
the per-query :class:`~repro.obs.report.ExplainReport`: instead of one deep
report about one evaluation, it keeps a shallow record about *every*
evaluation, cheap enough to leave on permanently.

Design constraints, in order:

* **Always on, bounded overhead.** A process-global recorder with a ring
  buffer (``collections.deque(maxlen=...)``) is active from import time.
  Recording is one dict build plus a deque append per *evaluation* (not per
  operator or per tuple), so the cost is independent of instance size;
  :mod:`repro.obs.check` bounds it under the same <5% gate as the no-op
  tracer spans.
* **Structured and streamable.** With a sink attached (``--flight-log``),
  each record is also written as one JSON line — the JSONL log a serving
  daemon tails and the ``telemetry-smoke`` CI job schema-validates.
* **Self-describing.** Every record carries the schema version
  (:data:`FLIGHT_SCHEMA_VERSION`), a per-recorder sequence number, a wall
  timestamp, and the recording pid; query-level records always carry the
  ``engine`` / ``rungs`` / ``cache`` / ``budget`` fields even when empty,
  so consumers never branch on key presence.

Examples
--------
>>> with flight_recorder() as rec:
...     _ = record("query", query_hash="abc123def456", engine="columnar",
...                seconds=0.5, answers=3, offending=1, network_nodes=9)
...     len(rec.records)
1
>>> rec.records[0]["kind"], rec.records[0]["engine"]
('query', 'columnar')
>>> validate_flight_records(rec.records)
[]
"""

from __future__ import annotations

import collections
import contextlib
import hashlib
import json
import os
import pathlib
import threading
import time
from typing import Iterable

__all__ = [
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "current_recorder",
    "flight_recorder",
    "record",
    "query_hash",
    "read_flight_log",
    "validate_flight_records",
]

#: Version stamped into every record as ``"v"``; bump on breaking changes.
FLIGHT_SCHEMA_VERSION = 1

#: Fields the recorder itself stamps onto every record.
STAMPED_FIELDS = ("v", "seq", "ts", "pid", "kind")

#: Record kinds that describe one full evaluation and therefore must carry
#: the rung/engine/cache/budget telemetry block.
QUERY_KINDS = ("query", "sql", "ladder")

#: The telemetry block every query-level record carries (defaulted by
#: :meth:`FlightRecorder.record` so emitters only set what they know).
QUERY_FIELD_DEFAULTS: dict = {
    "query_hash": "",
    "engine": "",
    "plan": "",
    "seconds": 0.0,
    "answers": 0,
    "offending": 0,
    "network_nodes": 0,
    "operators": [],
    "rungs": {},
    "degraded": 0,
    "cache": {},
    "budget": {},
    "workers": None,
    "error": None,
}

#: Fields every ``serve`` record carries (defaulted by
#: :meth:`FlightRecorder.record`): the query service's request log line.
SERVE_FIELD_DEFAULTS: dict = {
    "op": "",
    "status": "ok",
    "code": "",
    "queue_depth": 0,
    "shed": 0,
    "seconds": 0.0,
    "session": "",
    "prepared": "",
    "error": None,
}

#: Known record kinds (anything else fails validation).
RECORD_KINDS = QUERY_KINDS + ("pool_chunk", "serve")


def query_hash(text: str) -> str:
    """Stable 12-hex-digit digest identifying a query/plan shape.

    Examples
    --------
    >>> query_hash("q() :- R(x), S(x,y)")
    'a5d8485dfc24'
    """
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


class FlightRecorder:
    """Ring-buffered structured event log with an optional JSONL sink.

    *capacity* bounds the in-memory ring; *sink* is a path (appended to as
    JSON lines) or an open text file object (useful for a discarded sink in
    the overhead guard). Thread-safe: one lock serialises sequence
    assignment, ring appends, and sink writes.
    """

    def __init__(self, capacity: int = 512, sink=None) -> None:
        self._ring: collections.deque = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._sink_path: pathlib.Path | None = None
        self._sink = None
        self._owns_sink = False
        if sink is not None:
            if hasattr(sink, "write"):
                self._sink = sink
            else:
                self._sink_path = pathlib.Path(sink)
                self._sink = self._sink_path.open("a")
                self._owns_sink = True

    # ------------------------------------------------------------ recording
    def record(self, kind: str, **fields) -> dict:
        """Append one record; returns the completed record dict.

        Query-level kinds get the full telemetry block defaulted (see
        :data:`QUERY_FIELD_DEFAULTS`), so the record schema is uniform no
        matter which layer emitted it.
        """
        rec: dict = {}
        if kind in QUERY_KINDS:
            rec.update(QUERY_FIELD_DEFAULTS)
        elif kind == "serve":
            rec.update(SERVE_FIELD_DEFAULTS)
        rec.update(fields)
        rec["v"] = FLIGHT_SCHEMA_VERSION
        rec["kind"] = kind
        rec["ts"] = time.time()
        rec["pid"] = os.getpid()
        with self._lock:
            self._seq += 1
            rec["seq"] = self._seq
            self._ring.append(rec)
            if self._sink is not None:
                self._sink.write(json.dumps(rec, sort_keys=True) + "\n")
        return rec

    # -------------------------------------------------------------- reading
    @property
    def records(self) -> list[dict]:
        """The ring's current contents, oldest first."""
        with self._lock:
            return list(self._ring)

    @property
    def recorded(self) -> int:
        """Total records ever recorded (ring evictions included)."""
        with self._lock:
            return self._seq

    def clear(self) -> None:
        """Drop the ring contents (the sequence counter keeps counting)."""
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        """Flush and close a sink the recorder opened itself."""
        with self._lock:
            if self._sink is not None:
                self._sink.flush()
                if self._owns_sink:
                    self._sink.close()
                self._sink = None


#: The process-global, always-on recorder (ring only, no sink).
_GLOBAL = FlightRecorder()
_active = _GLOBAL
_active_lock = threading.Lock()


def current_recorder() -> FlightRecorder:
    """The recorder receiving :func:`record` calls right now."""
    return _active


def record(kind: str, **fields) -> dict:
    """Append one record to the active recorder (never a no-op: the global
    ring is always on)."""
    return _active.record(kind, **fields)


@contextlib.contextmanager
def flight_recorder(path=None, *, capacity: int = 512, sink=None):
    """Activate a fresh recorder (optionally JSONL-sinking to *path*).

    The previous recorder — ultimately the process-global ring — is
    restored on exit and the sink is closed. Used by the CLI's
    ``--flight-log`` flag and by tests.
    """
    global _active
    rec = FlightRecorder(capacity=capacity, sink=sink if sink is not None else path)
    with _active_lock:
        prev = _active
        _active = rec
    try:
        yield rec
    finally:
        with _active_lock:
            _active = prev
        rec.close()


# ---------------------------------------------------------------- validation
def read_flight_log(path) -> list[dict]:
    """Parse a JSONL flight log into a list of record dicts."""
    records = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def _check_block(rec: dict, where: str, field: str, type_) -> str | None:
    value = rec.get(field)
    if not isinstance(value, type_):
        return (f"{where}: field {field!r} must be "
                f"{getattr(type_, '__name__', type_)}, got {type(value).__name__}")
    return None


def validate_flight_records(source) -> list[str]:
    """Schema-check flight records; returns a list of problems (empty = OK).

    *source* is a JSONL path, a list of record dicts, or a
    :class:`FlightRecorder`. Checks the shape the ``telemetry-smoke`` CI job
    relies on: every record carries the stamped fields with the current
    schema version, sequence numbers increase strictly, kinds are known, and
    query-level records carry the full rung/engine/cache/budget block.

    Examples
    --------
    >>> validate_flight_records([{"v": 1, "seq": 1, "ts": 0.0, "pid": 1,
    ...                           "kind": "nonsense"}])
    ["record 0: unknown kind 'nonsense'"]
    """
    if isinstance(source, FlightRecorder):
        records: Iterable[dict] = source.records
    elif isinstance(source, (str, pathlib.Path)):
        try:
            records = read_flight_log(source)
        except (OSError, json.JSONDecodeError) as exc:
            return [f"unreadable flight log: {exc}"]
    else:
        records = list(source)
    errors: list[str] = []
    last_seq = None
    for i, rec in enumerate(records):
        where = f"record {i}"
        if not isinstance(rec, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [f for f in STAMPED_FIELDS if f not in rec]
        if missing:
            errors.append(f"{where}: missing stamped fields {missing}")
            continue
        if rec["v"] != FLIGHT_SCHEMA_VERSION:
            errors.append(f"{where}: schema version {rec['v']!r}, "
                          f"expected {FLIGHT_SCHEMA_VERSION}")
        if rec["kind"] not in RECORD_KINDS:
            errors.append(f"{where}: unknown kind {rec['kind']!r}")
            continue
        if last_seq is not None and rec["seq"] <= last_seq:
            errors.append(f"{where}: seq {rec['seq']} not increasing "
                          f"(previous {last_seq})")
        last_seq = rec["seq"]
        if rec["kind"] in QUERY_KINDS:
            for field in QUERY_FIELD_DEFAULTS:
                if field not in rec:
                    errors.append(f"{where}: query-level record missing "
                                  f"{field!r}")
            for field, type_ in (
                ("query_hash", str), ("engine", str), ("seconds", (int, float)),
                ("answers", int), ("offending", int), ("network_nodes", int),
                ("operators", list), ("rungs", dict), ("degraded", int),
                ("cache", dict), ("budget", dict),
            ):
                if field in rec:
                    problem = _check_block(rec, where, field, type_)
                    if problem:
                        errors.append(problem)
        elif rec["kind"] == "pool_chunk":
            for field, type_ in (("chunk", int), ("attempts", int),
                                 ("requeued_serial", bool), ("events", list)):
                if field not in rec:
                    errors.append(f"{where}: pool_chunk record missing "
                                  f"{field!r}")
                else:
                    problem = _check_block(rec, where, field, type_)
                    if problem:
                        errors.append(problem)
        elif rec["kind"] == "serve":
            for field, type_ in (("op", str), ("status", str),
                                 ("queue_depth", int), ("shed", int),
                                 ("seconds", (int, float))):
                if field not in rec:
                    errors.append(f"{where}: serve record missing {field!r}")
                else:
                    problem = _check_block(rec, where, field, type_)
                    if problem:
                        errors.append(problem)
    return errors


# ------------------------------------------------------------ record builders
def budget_dict(budget) -> dict:
    """The ``budget`` block of a record from a
    :class:`~repro.resilience.QueryBudget` (``{}`` when unbudgeted)."""
    if budget is None:
        return {}
    block = {
        "deadline_seconds": budget.deadline_seconds,
        "max_network_nodes": budget.max_network_nodes,
        "max_samples": budget.max_samples,
    }
    remaining = budget.remaining()
    if remaining is not None:
        block["remaining_seconds"] = remaining
    return block


def cache_dict(cache) -> dict:
    """The ``cache`` block of a record from a
    :class:`~repro.perf.SubformulaCache`-style object (``{}`` when absent)."""
    if cache is None:
        return {}
    stats = getattr(cache, "stats", cache)
    if hasattr(stats, "as_dict"):
        return dict(stats.as_dict())
    return {}


def operator_dicts(stats) -> list[dict]:
    """The ``operators`` block from a list of
    :class:`~repro.core.executor.OperatorStat`."""
    return [s.as_dict() for s in stats]
