"""Per-query ExplainReport: the paper's hardness diagnostics in one object.

The quantities the paper uses to explain why a query was cheap or
expensive — offending-tuple counts (Sec. 3), the size and shape of the
partial lineage (Sec. 4.2), the component structure of the And-Or network —
are computed anyway during evaluation. :func:`build_explain_report` runs a
query once and assembles them, per relation and per component, together
with per-operator timings, the per-slice engine choices with estimated vs
actual cost, and the subformula-cache hit-rates of the final inference.

``repro explain`` is the CLI surface; :meth:`ExplainReport.as_dict` the
JSON one; the :class:`~repro.obs.metrics.MetricsRegistry` snapshot inside
the report is the unified-metric view of the same run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.executor import PartialLineageEvaluator
from repro.core.explain import explain as explain_plan
from repro.core.plan import left_deep_plan
from repro.core.treeprop import is_tree_factorable
from repro.db.database import ProbabilisticDatabase
from repro.db.schema import Row
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import add, annotate, span
from repro.perf.cache import SubformulaCache
from repro.perf.parallel import group_by_component, solve_slice
from repro.query.syntax import ConjunctiveQuery

__all__ = ["ExplainReport", "build_explain_report"]


@dataclass
class ExplainReport:
    """Everything an operator needs to understand one query's evaluation.

    Field → paper section: ``offending_by_source`` are the conditioned
    tuples of Definition 3.1 (zero everywhere ⇔ the plan was data safe and
    evaluation purely extensional, Sec. 4); ``component_sizes`` is the
    partial-lineage decomposition of Sec. 4.2 (many small components ⇔
    near-extensional, one giant component ⇔ intensional-hard);
    ``slices`` records, per component, the inference engine chosen and the
    scheduling cost estimate of :func:`repro.perf.parallel
    .estimate_component` against the measured solve time.
    """

    query: str
    plan: str
    join_order: list[str] | None
    engine: str
    workers: int | None
    answers: int
    network_nodes: int
    offending_total: int
    data_safe: bool
    eval_seconds: float
    inference_seconds: float
    #: Conditioned-tuple count per source (base relation or join output).
    offending_by_source: dict[str, int] = field(default_factory=dict)
    component_count: int = 0
    #: ``{component size -> number of components}`` histogram.
    component_sizes: dict[int, int] = field(default_factory=dict)
    #: Per-operator accounting (``OperatorStat.as_dict()`` rows).
    operators: list[dict] = field(default_factory=list)
    #: Per-component solve records: size, targets, engine, estimated cost,
    #: measured seconds (plus, under a budget, the winning ladder rung and
    #: the degraded-target count).
    slices: list[dict] = field(default_factory=list)
    #: Subformula-cache counters of the final inference (hit rates).
    cache: dict = field(default_factory=dict)
    #: Unified metrics snapshot of the run.
    metrics: dict = field(default_factory=dict)
    #: Answers that degraded to sound bounds (resilient runs only).
    degraded_answers: int = 0
    #: The budget the run executed under (``None`` = unlimited).
    budget: dict | None = None
    #: Per-answer what-if circuit records: circuit size, provenance
    #: (``cache`` hit vs cold ``obdd`` lowering), compile and re-score
    #: wall-clocks — the cold-path visibility of compile-once/re-score-many.
    circuits: list[dict] = field(default_factory=list)
    #: :class:`~repro.circuit.CircuitCache` counters of this run
    #: (hits/misses/recompiles).
    circuit_cache: dict = field(default_factory=dict)
    #: Dissociation-bounds section (``top_k`` runs only): fold wall-clock,
    #: split count, max/mean interval width, per-answer bounds (capped).
    dissociation: dict | None = None
    #: Bounds-first top-k certification: certified-out vs refined counts,
    #: the decision threshold, and the time saved against exact-all.
    top_k: dict | None = None

    def as_dict(self) -> dict:
        """JSON-serialisable view (the ``repro explain --json`` payload)."""
        return {
            "query": self.query,
            "plan": self.plan,
            "join_order": self.join_order,
            "engine": self.engine,
            "workers": self.workers,
            "answers": self.answers,
            "network_nodes": self.network_nodes,
            "offending_total": self.offending_total,
            "data_safe": self.data_safe,
            "eval_seconds": self.eval_seconds,
            "inference_seconds": self.inference_seconds,
            "offending_by_source": dict(self.offending_by_source),
            "component_count": self.component_count,
            "component_sizes": {
                str(k): v for k, v in sorted(self.component_sizes.items())
            },
            "operators": list(self.operators),
            "slices": list(self.slices),
            "cache": dict(self.cache),
            "metrics": self.metrics,
            "degraded_answers": self.degraded_answers,
            "budget": self.budget,
            "circuits": list(self.circuits),
            "circuit_cache": dict(self.circuit_cache),
            "dissociation": self.dissociation,
            "top_k": self.top_k,
        }

    def format(self) -> str:
        """Human-readable report (the default ``repro explain`` output)."""
        from repro.bench.reporting import format_table

        lines = [f"query: {self.query}"]
        lines.append(self.plan)
        lines.append("")
        mode = (
            "data safe — purely extensional evaluation"
            if self.data_safe
            else "mixed evaluation (partial lineage)"
        )
        lines.append(
            f"engine={self.engine}"
            + (f" workers={self.workers}" if self.workers else "")
            + f"; {mode}"
        )
        lines.append(
            f"{self.answers} answers; network of {self.network_nodes} nodes; "
            f"{self.offending_total} offending tuples; "
            f"eval {self.eval_seconds:.4f}s + "
            f"inference {self.inference_seconds:.4f}s"
        )
        if self.offending_by_source:
            lines.append("")
            lines.append(format_table(
                ("source", "offending"),
                sorted(self.offending_by_source.items()),
                title="offending tuples per relation",
            ))
        lines.append("")
        lines.append(format_table(
            ("operator", "out", "conditioned", "seconds"),
            [(o["operator"], o["output_size"], o["conditioned"],
              f"{o['seconds']:.5f}") for o in self.operators],
            title="per-operator timings",
        ))
        lines.append("")
        lines.append(format_table(
            ("component size", "count"),
            sorted(self.component_sizes.items()),
            title=f"network components ({self.component_count} total)",
        ))
        if self.slices:
            lines.append("")
            has_rung = any("rung" in s for s in self.slices)
            headers = ["component", "size", "targets", "engine", "est. cost",
                       "seconds"]
            rows = [
                [i, s["size"], s["targets"], s["engine"],
                 f"{s['estimated_cost']:.0f}", f"{s['seconds']:.5f}"]
                for i, s in enumerate(self.slices)
            ]
            if has_rung:
                headers.append("rung")
                for row, s in zip(rows, self.slices):
                    row.append(s.get("rung", "exact"))
            lines.append(format_table(
                tuple(headers), [tuple(r) for r in rows],
                title="per-component inference (estimated vs actual cost)",
            ))
        if self.budget is not None:
            lines.append("")
            caps = ", ".join(
                f"{k}={v}" for k, v in self.budget.items() if v is not None
            )
            lines.append(f"budget: {caps or 'unlimited'}")
            lines.append(
                f"{self.degraded_answers} answers degraded to sound bounds"
            )
        if self.cache:
            lines.append("")
            lines.append(
                f"subformula cache: {self.cache.get('hits', 0)} hits / "
                f"{self.cache.get('misses', 0)} misses "
                f"(hit rate {self.cache.get('hit_rate', 0.0):.2%})"
            )
        if self.circuits:
            lines.append("")
            lines.append(format_table(
                ("answer", "nodes", "source", "compile s", "rescore s"),
                [(c["answer"], c.get("nodes", "-"), c["source"],
                  _secs(c.get("compile_seconds")),
                  _secs(c.get("rescore_seconds")))
                 for c in self.circuits],
                title="what-if circuits (compile once vs re-score)",
            ))
        if self.circuit_cache:
            lines.append(
                f"circuit cache: {self.circuit_cache.get('hits', 0)} hits / "
                f"{self.circuit_cache.get('misses', 0)} misses, "
                f"{self.circuit_cache.get('recompiles', 0)} recompiles"
            )
        if self.dissociation is not None:
            d = self.dissociation
            lines.append("")
            lines.append(
                f"dissociation bounds: {d['answers']} answers, "
                f"{d['dissociated']} fan-out splits, "
                f"max width {d['max_width']:.6f}, "
                f"mean width {d['mean_width']:.6f}, "
                f"{d['seconds']:.4f}s"
                + (" (exact: instance is data safe)" if d["exact"] else "")
            )
            if d.get("bounds"):
                lines.append(format_table(
                    ("answer", "lower", "upper", "width"),
                    [(", ".join(map(str, b["row"])) or "()",
                      f"{b['lower']:.6f}", f"{b['upper']:.6f}",
                      f"{b['width']:.6f}")
                     for b in d["bounds"]],
                    title="widest enclosures first"
                    if not d["exact"] else "per-answer enclosures",
                ))
        if self.top_k is not None:
            t = self.top_k
            lines.append("")
            lines.append(format_table(
                ("rank", "answer", "probability", "bounds"),
                [(i + 1, ", ".join(map(str, a["row"])) or "()",
                  f"{a['probability']:.6f}",
                  f"[{a['lower']:.6f}, {a['upper']:.6f}]")
                 for i, a in enumerate(t["answers"])],
                title=f"certified top-{t['k']}",
            ))
            lines.append(
                f"{t['certified_out']} of {t['total_answers']} answers "
                f"certified out by dissociation bounds alone; "
                f"{t['refined']} refined exactly "
                f"(threshold {t['threshold']:.6f})"
            )
            lines.append(
                f"bounds {t['bounds_seconds']:.4f}s + refine "
                f"{t['refine_seconds']:.4f}s vs exact-all inference "
                f"{self.inference_seconds:.4f}s "
                f"(time saved {t['time_saved']:.4f}s)"
            )
        return "\n".join(lines)


def _secs(value) -> str:
    return "-" if value is None else f"{value:.5f}"


def build_explain_report(
    db: ProbabilisticDatabase,
    query: ConjunctiveQuery,
    *,
    join_order: list[str] | None = None,
    engine: str = "columnar",
    workers: int | None = None,
    dpll_max_calls: int = 5_000_000,
    registry: MetricsRegistry | None = None,
    budget=None,
    circuit_cache=None,
    top_k: int | None = None,
) -> tuple[ExplainReport, dict[Row, float]]:
    """Evaluate *query* and assemble its :class:`ExplainReport`.

    With *top_k* the report additionally runs the dissociation-bounds
    evaluator on the same plan and the bounds-first top-k certifier, and
    records per-answer bound widths, certified-out vs refined counts, and
    the wall-clock saved against the exact-all inference it just measured.

    Returns ``(report, answers)``. Inference runs component-sliced and
    in-process regardless of *workers* — per-slice wall-clocks are the
    point of the report, and a process pool would hide them; *workers* is
    recorded so the report reflects the configuration it explains.

    With a *budget* (a :class:`~repro.resilience.QueryBudget`) every slice
    solves through the degradation ladder instead: hard components degrade
    to sound bounds (reported at their interval midpoint in ``answers``),
    each slice record carries the winning ladder rung and its degraded
    count, and the report totals ``degraded_answers``.

    *circuit_cache* (a :class:`~repro.circuit.CircuitCache`, default a
    fresh one) backs the what-if circuit section: every answer with
    symbolic lineage is compiled through the cache and re-scored once, so
    the report shows per answer whether the circuit was a cache hit or a
    cold compile, and what compile vs re-score cost — pass a long-lived
    cache to see the warm-path numbers a serving deployment would get.

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> _ = db.add_relation("S", ("A", "B"), {(1, 1): 0.5, (1, 2): 0.5})
    >>> report, answers = build_explain_report(
    ...     db, parse_query("q(x) :- R(x), S(x,y)"))
    >>> report.answers, report.offending_total
    (1, 1)
    >>> round(answers[(1,)], 6)
    0.375
    """
    if registry is None:
        registry = MetricsRegistry()
    evaluator = PartialLineageEvaluator(db, engine=engine, workers=workers)
    plan = left_deep_plan(query, join_order)
    with span("explain", query=str(query), engine=engine):
        start = time.perf_counter()
        result = evaluator.evaluate(plan)
        eval_seconds = time.perf_counter() - start

        rows = list(result.relation.items())
        nodes = [l for _, l, _ in rows]
        cache = SubformulaCache()
        start = time.perf_counter()
        works = group_by_component(result.network, nodes)
        marginals = {0: 1.0}  # EPSILON
        slices: list[dict] = []
        degraded_answers = 0
        if budget is not None:
            from repro.resilience.execute import exact_fractions

            budget = budget.start()
            fractions = exact_fractions(works)
        for index, work in enumerate(works):
            tree = is_tree_factorable(work.slice.network)
            slice_engine = "tree" if tree else ("ve" if work.narrow else "dpll")
            t0 = time.perf_counter()
            record = {
                "size": len(work.slice.network) - 1,  # slice minus ε
                "targets": len(work.targets),
                "engine": slice_engine,
                "estimated_cost": work.cost,
            }
            with span("explain_slice", engine=slice_engine) as s:
                if budget is not None:
                    from repro.resilience.ladder import (
                        resilient_component_marginals,
                    )

                    outcomes = resilient_component_marginals(
                        work.slice.network,
                        work.targets,
                        budget=budget,
                        cache=cache,
                        registry=registry,
                        narrow=work.narrow,
                        exact_fraction=fractions[index],
                        est_cost=work.cost,
                    )
                    solved = {t: o.midpoint for t, o in outcomes.items()}
                    degraded = sum(
                        1 for o in outcomes.values() if o.degraded
                    )
                    degraded_answers += degraded
                    record["degraded"] = degraded
                    record["rung"] = next(
                        (o.method for o in outcomes.values() if o.degraded),
                        "exact",
                    )
                else:
                    solved = solve_slice(
                        work.slice.network,
                        work.targets,
                        "auto",
                        dpll_max_calls,
                        cache,
                        narrow=work.narrow,
                    )
                s.add("targets", len(work.targets))
            seconds = time.perf_counter() - t0
            for sub, prob in solved.items():
                marginals[work.slice.to_orig(sub)] = prob
            record["seconds"] = seconds
            slices.append(record)
            registry.observe("slice.estimated_cost", work.cost)
            registry.observe("slice.seconds", seconds)
        inference_seconds = time.perf_counter() - start
        answers = {row: p * marginals[l] for row, l, p in rows}
        annotate(answers=len(answers))
        add("offending", result.offending_count)

        # What-if circuit section: compile each symbolic answer through the
        # structural cache, re-score once, and record hit/miss + wall times
        # so cold and degraded paths are visible. Never fails the report:
        # hard lineages record their reason instead.
        from repro.circuit import CircuitCache, rescore
        from repro.core.network import EPSILON
        from repro.errors import ReproError

        if circuit_cache is None:
            circuit_cache = CircuitCache()
        circuits: list[dict] = []
        try:
            from repro.core.whatif import WhatIfAnalysis

            analysis = WhatIfAnalysis(
                result, circuit_cache=circuit_cache, budget=budget
            )
            for row, l, _ in rows:
                record: dict = {"answer": str(row)}
                if l == EPSILON:  # constant lineage, nothing to compile
                    record["source"] = "constant"
                    circuits.append(record)
                    continue
                try:
                    circuit = analysis.circuit_for(row)
                    t0 = time.perf_counter()
                    rescore(circuit, circuit.base_probs)
                    record["rescore_seconds"] = time.perf_counter() - t0
                    record["nodes"] = len(circuit)
                    record["source"] = analysis.circuit_sources[l]
                    record["compile_seconds"] = analysis.compile_seconds[l]
                except ReproError as exc:
                    record["source"] = f"uncompiled: {type(exc).__name__}"
                circuits.append(record)
        except ReproError as exc:
            circuits.append(
                {"answer": "*", "source": f"uncompiled: {type(exc).__name__}"}
            )
        registry.absorb("circuit.cache", circuit_cache)
        for c in circuits:
            if "compile_seconds" in c:
                registry.observe(
                    "circuit.compile_seconds", c["compile_seconds"]
                )
                registry.observe(
                    "circuit.rescore_seconds", c["rescore_seconds"]
                )

        # Bounds-first top-k section: dissociate the same plan, certify,
        # and charge the certifier against the exact-all inference above.
        dissociation_section = top_k_section = None
        if top_k is not None:
            from repro.dissociation import DissociationEvaluator, certified_top_k

            # No budget here: the certifier's refinement re-solves a subset
            # of what the (possibly budgeted) loop above already measured,
            # and the section exists to compare wall-clocks, not to race a
            # deadline that the first pass may have spent already.
            bounds = DissociationEvaluator(db, engine=engine).evaluate(plan)
            cert = certified_top_k(
                result, bounds, top_k, dpll_max_calls=dpll_max_calls,
            )
            widths = [b.width for b in bounds.bounds.values()]
            for w in widths:
                registry.observe("dissociation.width", w)
            registry.gauge("dissociation.seconds", bounds.seconds)
            registry.inc("topk.certified_out", cert.certified_out)
            registry.inc("topk.refined", cert.refined)
            dissociation_section = {
                "answers": len(bounds.bounds),
                "dissociated": bounds.dissociated,
                "exact": bounds.exact,
                "seconds": bounds.seconds,
                "max_width": bounds.max_width,
                "mean_width": (
                    sum(widths) / len(widths) if widths else 0.0
                ),
                "bounds": sorted(
                    (
                        {"row": list(row), **b.as_dict()}
                        for row, b in bounds.bounds.items()
                    ),
                    key=lambda r: (-r["width"], r["row"]),
                )[:10],
            }
            time_saved = inference_seconds - (
                bounds.seconds + cert.refine_seconds
            )
            registry.gauge("topk.time_saved_seconds", time_saved)
            top_k_section = {**cert.as_dict(), "time_saved": time_saved}

    offending_by_source: dict[str, int] = {}
    for off in result.conditioned_tuples:
        offending_by_source[off.source] = (
            offending_by_source.get(off.source, 0) + 1
        )

    components = result.network.components()
    component_sizes: dict[int, int] = {}
    for size in components.sizes().tolist():
        component_sizes[size] = component_sizes.get(size, 0) + 1
        registry.observe("component.size", size)

    for stat in result.stats:
        registry.absorb(f"operator.{stat.operator}", stat)
    registry.absorb("cache", cache.stats)
    registry.gauge("network.nodes", len(result.network))
    registry.gauge("engine", engine)
    registry.inc("offending", result.offending_count)
    registry.gauge("eval.seconds", eval_seconds)
    registry.gauge("inference.seconds", inference_seconds)

    report = ExplainReport(
        query=str(query),
        plan=explain_plan(plan, db),
        join_order=join_order,
        engine=engine,
        workers=workers,
        answers=len(answers),
        network_nodes=len(result.network),
        offending_total=result.offending_count,
        data_safe=result.is_data_safe,
        eval_seconds=eval_seconds,
        inference_seconds=inference_seconds,
        offending_by_source=offending_by_source,
        component_count=components.count,
        component_sizes=component_sizes,
        operators=[stat.as_dict() for stat in result.stats],
        slices=slices,
        cache=cache.stats.as_dict(),
        metrics=registry.snapshot(),
        degraded_answers=degraded_answers,
        budget=None if budget is None else {
            "deadline_seconds": budget.deadline_seconds,
            "max_network_nodes": budget.max_network_nodes,
            "max_width": budget.max_width,
            "dpll_max_calls": budget.dpll_max_calls,
            "obdd_max_nodes": budget.obdd_max_nodes,
            "max_samples": budget.max_samples,
        },
        circuits=circuits,
        circuit_cache=circuit_cache.as_dict(),
        dissociation=dissociation_section,
        top_k=top_k_section,
    )
    return report, answers
