"""SLO layer: latency percentiles, error rate, degradation rate, and gates.

The flight recorder (:mod:`repro.obs.telemetry`) gives a workload-level
stream of per-evaluation records; this module folds that stream into the
power-of-two histograms of a :class:`~repro.obs.metrics.MetricsRegistry`
(:func:`registry_from_records`) and checks declarative objectives against
them (:func:`evaluate_slos`):

* **latency** objectives bound a percentile of a latency histogram
  (p50/p95/p99 of ``flight.query.latency_ms``, estimated to within one
  power-of-two bucket by :meth:`~repro.obs.metrics.Histogram.percentile`);
* **ratio** objectives bound a counter ratio (``errors / count``,
  ``degraded / count``).

``repro obs slo`` replays a workload (or reads a ``--flight-log`` JSONL)
and prints the report; a failed objective makes it exit nonzero, so the
same command is a CI gate and, later, the serving daemon's health probe.

Examples
--------
>>> from repro.obs.metrics import MetricsRegistry
>>> reg = MetricsRegistry()
>>> for ms in (10, 12, 14, 300):
...     reg.observe("flight.query.latency_ms", ms)
>>> reg.inc("flight.query.count", 4)
>>> report = evaluate_slos(reg, [
...     SLOTarget("latency_p50", metric="flight.query.latency_ms",
...               percentile=0.50, threshold=100.0),
...     SLOTarget("error_rate", ratio=("flight.query.errors",
...                                    "flight.query.count"),
...               threshold=0.01),
... ])
>>> report.ok, [round(r.observed, 2) for r in report.results]
(True, [16.0, 0.0])
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SLOTarget",
    "SLOResult",
    "SLOReport",
    "DEFAULT_SLO_TARGETS",
    "SERVE_SLO_TARGETS",
    "registry_from_records",
    "evaluate_slos",
    "slo_report_from_records",
]


@dataclass(frozen=True)
class SLOTarget:
    """One declarative objective: a bounded percentile or counter ratio.

    Exactly one of *metric* (+ *percentile*) or *ratio* must be set.
    *threshold* is the maximum tolerated observed value (milliseconds for
    latency histograms recorded in ms; a fraction for ratios).
    """

    name: str
    threshold: float
    #: Histogram name for percentile objectives.
    metric: str | None = None
    #: Percentile fraction in [0, 1] (e.g. 0.95) for percentile objectives.
    percentile: float | None = None
    #: ``(numerator_counter, denominator_counter)`` for ratio objectives.
    ratio: tuple[str, str] | None = None

    def __post_init__(self) -> None:
        if (self.metric is None) == (self.ratio is None):
            raise ValueError(
                f"SLO {self.name!r}: exactly one of metric= or ratio= "
                f"must be given"
            )
        if self.metric is not None and self.percentile is None:
            raise ValueError(
                f"SLO {self.name!r}: percentile objectives need percentile="
            )

    def describe(self) -> str:
        if self.metric is not None:
            return (f"p{round(self.percentile * 100)} of {self.metric} "
                    f"<= {self.threshold:g}")
        return f"{self.ratio[0]} / {self.ratio[1]} <= {self.threshold:g}"


@dataclass
class SLOResult:
    """One objective's verdict."""

    target: SLOTarget
    observed: float
    passed: bool
    #: Number of observations the verdict rests on (0 = vacuous pass).
    samples: int = 0

    def as_dict(self) -> dict:
        return {
            "name": self.target.name,
            "objective": self.target.describe(),
            "threshold": self.target.threshold,
            "observed": self.observed,
            "samples": self.samples,
            "passed": self.passed,
        }


@dataclass
class SLOReport:
    """All objectives' verdicts; ``ok`` iff every one passed."""

    results: list[SLOResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.passed for r in self.results)

    def as_dict(self) -> dict:
        return {"ok": self.ok, "slos": [r.as_dict() for r in self.results]}

    def format(self) -> str:
        from repro.bench.reporting import format_table

        rows = [
            (
                r.target.name,
                r.target.describe(),
                f"{r.observed:g}",
                r.samples,
                "PASS" if r.passed else "FAIL",
            )
            for r in self.results
        ]
        table = format_table(
            ("slo", "objective", "observed", "samples", "verdict"),
            rows, title="SLO report",
        )
        verdict = "all objectives met" if self.ok else "OBJECTIVES VIOLATED"
        return f"{table}\n\n{verdict}"


#: Default serving objectives: generous enough for CI runners, tight enough
#: to catch a pathological regression. Override per deployment.
DEFAULT_SLO_TARGETS = (
    SLOTarget("latency_p50", metric="flight.query.latency_ms",
              percentile=0.50, threshold=1_000.0),
    SLOTarget("latency_p95", metric="flight.query.latency_ms",
              percentile=0.95, threshold=4_000.0),
    SLOTarget("latency_p99", metric="flight.query.latency_ms",
              percentile=0.99, threshold=16_000.0),
    SLOTarget("error_rate", ratio=("flight.query.errors",
                                   "flight.query.count"),
              threshold=0.01),
    SLOTarget("degradation_rate", ratio=("flight.query.degraded",
                                         "flight.query.count"),
              threshold=0.5),
)

#: Objectives for the query service's request log (``serve`` records).
#: Rejections are deliberate backpressure, not failures, so they get their
#: own (loose) budget separate from the internal-error rate.
SERVE_SLO_TARGETS = (
    SLOTarget("serve_latency_p50", metric="serve.request.latency_ms",
              percentile=0.50, threshold=2_000.0),
    SLOTarget("serve_latency_p99", metric="serve.request.latency_ms",
              percentile=0.99, threshold=30_000.0),
    SLOTarget("serve_error_rate", ratio=("serve.request.errors",
                                         "serve.request.count"),
              threshold=0.01),
    SLOTarget("serve_reject_rate", ratio=("serve.request.rejected",
                                          "serve.request.count"),
              threshold=0.75),
)


def registry_from_records(
    records, registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Fold flight records into the SLO metrics of a registry.

    Every query-level record (kinds ``query``/``sql``/``ladder``)
    contributes to both its per-kind series (``flight.<kind>.*``) and the
    aggregate ``flight.query.*`` series the default objectives read:
    a ``latency_ms`` histogram observation, a ``count`` counter, an
    ``errors`` counter when the record carries an error, a ``degraded``
    counter when any answer degraded, and per-rung counters
    (``flight.rung.<rung>``).
    """
    from repro.obs.telemetry import QUERY_KINDS

    reg = registry if registry is not None else MetricsRegistry()
    for rec in records:
        kind = rec.get("kind")
        if kind not in QUERY_KINDS:
            if kind == "pool_chunk":
                reg.inc("flight.pool_chunk.count")
                if rec.get("requeued_serial"):
                    reg.inc("flight.pool_chunk.requeued_serial")
                reg.observe("flight.pool_chunk.attempts",
                            rec.get("attempts", 0))
            elif kind == "serve":
                status = rec.get("status", "ok")
                reg.inc("serve.request.count")
                reg.observe("serve.request.latency_ms",
                            float(rec.get("seconds", 0.0) or 0.0) * 1e3)
                reg.observe("serve.queue.depth", rec.get("queue_depth", 0))
                if status.startswith("rejected") or status == "shutting_down":
                    reg.inc("serve.request.rejected")
                    reg.inc(f"serve.request.{status}")
                elif status != "ok":
                    reg.inc("serve.request.errors")
                    reg.inc(f"serve.request.{status}")
                if rec.get("shed"):
                    reg.inc("serve.request.shed")
                    reg.observe("serve.shed.level", rec.get("shed", 0))
            continue
        series = (f"flight.{kind}", "flight.query")
        seconds = float(rec.get("seconds", 0.0) or 0.0)
        for prefix in dict.fromkeys(series):
            reg.inc(f"{prefix}.count")
            reg.observe(f"{prefix}.latency_ms", seconds * 1e3)
            if rec.get("error"):
                reg.inc(f"{prefix}.errors")
            if rec.get("degraded"):
                reg.inc(f"{prefix}.degraded")
        for rung, n in (rec.get("rungs") or {}).items():
            reg.inc(f"flight.rung.{rung}", n)
    return reg


def evaluate_slos(
    registry: MetricsRegistry, targets=DEFAULT_SLO_TARGETS
) -> SLOReport:
    """Check each objective against the registry; see module docstring."""
    report = SLOReport()
    for target in targets:
        if target.metric is not None:
            hist = registry.histogram(target.metric)
            observed = hist.percentile(target.percentile) if hist.count else 0.0
            samples = hist.count
        else:
            numerator = registry.counter(target.ratio[0])
            denominator = registry.counter(target.ratio[1])
            observed = numerator / denominator if denominator else 0.0
            samples = int(denominator)
        report.results.append(
            SLOResult(target, observed, observed <= target.threshold, samples)
        )
    return report


def slo_report_from_records(records, targets=DEFAULT_SLO_TARGETS) -> SLOReport:
    """One-shot: fold *records* into a registry and evaluate *targets*."""
    return evaluate_slos(registry_from_records(records), targets)
