"""Trace and metrics exporters.

A package of three consumers of the observability substrate:

* :mod:`repro.obs.export.chrome` — the ``--profile`` text tree, Chrome
  trace-event JSON (``chrome://tracing`` / Perfetto), and the trace
  validator CI runs over ``trace.json``;
* :mod:`repro.obs.export.openmetrics` — the OpenMetrics/Prometheus text
  rendering of a :class:`~repro.obs.metrics.MetricsRegistry` snapshot
  (``repro obs metrics``) plus the promtool-style linter CI runs over it.

The chrome module's names are re-exported here so the historical
``from repro.obs.export import chrome_events`` import keeps working.
"""

from repro.obs.export.chrome import (
    chrome_events,
    format_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.export.openmetrics import (
    render_openmetrics,
    validate_openmetrics,
)

__all__ = [
    "format_trace",
    "chrome_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "render_openmetrics",
    "validate_openmetrics",
]
