"""OpenMetrics text rendering of a metrics snapshot, plus an in-repo linter.

:func:`render_openmetrics` turns a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` into the OpenMetrics
text exposition format (the Prometheus scrape format):

* counters become ``# TYPE <name> counter`` families with one
  ``<name>_total`` sample;
* numeric gauges (bools as 0/1) become gauge families; non-numeric gauges
  (engine names, git SHAs) are rendered as comments so no information is
  silently dropped but the payload stays parseable;
* histograms become real histogram families: the power-of-two buckets are
  emitted as *cumulative* ``_bucket{le="..."}`` samples (upper edge
  ``2**k``), closed by the mandatory ``le="+Inf"`` bucket plus ``_sum`` and
  ``_count``.

Metric names are sanitised to ``[a-zA-Z_][a-zA-Z0-9_]*`` (dots become
underscores) and prefixed (default ``repro_``), so the future ``repro
serve`` daemon exposes the entire registry to a Prometheus scraper with no
further mapping. The payload ends with the ``# EOF`` terminator the
OpenMetrics spec requires.

:func:`validate_openmetrics` is the promtool-style lint CI runs over the
rendered text: sample syntax, metadata-before-samples ordering, contiguous
families, counter ``_total`` suffixes, cumulative histogram buckets, and
the ``# EOF`` terminator.

Examples
--------
>>> from repro.obs.metrics import MetricsRegistry
>>> reg = MetricsRegistry()
>>> reg.inc("cache.hits", 3)
>>> text = render_openmetrics(reg.snapshot())
>>> print(text, end="")
# TYPE repro_cache_hits counter
repro_cache_hits_total 3
# EOF
>>> validate_openmetrics(text)
[]
"""

from __future__ import annotations

import re

__all__ = ["render_openmetrics", "validate_openmetrics"]

_NAME_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_SAMPLE = re.compile(
    r"(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>\S+))?\Z"
)
_LABEL = re.compile(r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"\Z')


def _sanitize(name: str, prefix: str) -> str:
    safe = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not re.match(r"[a-zA-Z_]", safe):
        safe = "_" + safe
    return f"{prefix}{safe}" if prefix else safe


def _fmt_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def render_openmetrics(snapshot: dict, *, prefix: str = "repro_") -> str:
    """Render a registry snapshot as OpenMetrics text (``# EOF``-terminated).

    *snapshot* is the dict shape of
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`; *prefix* is
    prepended to every sanitised metric name.
    """
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        family = _sanitize(name, prefix)
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family}_total {_fmt_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        family = _sanitize(name, prefix)
        if isinstance(value, bool):
            lines.append(f"# TYPE {family} gauge")
            lines.append(f"{family} {_fmt_value(value)}")
        elif isinstance(value, (int, float)):
            lines.append(f"# TYPE {family} gauge")
            lines.append(f"{family} {_fmt_value(value)}")
        else:
            # Non-numeric gauges (engine names, git SHAs) have no OpenMetrics
            # value type; keep them visible without breaking parsers.
            lines.append(f"# {family} (non-numeric gauge) = {value!r}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        family = _sanitize(name, prefix)
        lines.append(f"# TYPE {family} histogram")
        count = summary.get("count", 0)
        cumulative = 0
        if count:
            edges = sorted(
                int(label.split("^", 1)[1])
                for label in summary.get("buckets", {})
            )
            for k in edges:
                cumulative += summary["buckets"][f"<=2^{k}"]
                lines.append(
                    f'{family}_bucket{{le="{float(2.0 ** k)!r}"}} '
                    f"{cumulative}"
                )
        lines.append(f'{family}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{family}_sum {_fmt_value(summary.get('sum', 0.0))}")
        lines.append(f"{family}_count {count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _family_of(sample_name: str, types: dict[str, str]) -> str | None:
    """The declared family a sample name belongs to, if any."""
    if sample_name in types:
        return sample_name
    for suffix in ("_total", "_bucket", "_sum", "_count", "_created"):
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in types:
            return sample_name[: -len(suffix)]
    return None


def validate_openmetrics(text: str) -> list[str]:
    """Promtool-style lint of OpenMetrics text; returns problems (empty=OK).

    Checks: the ``# EOF`` terminator, sample-line syntax and label syntax,
    every sample preceded by its family's ``# TYPE``, families contiguous,
    counter samples suffixed ``_total``, histogram buckets cumulative with a
    ``le="+Inf"`` bucket equal to ``_count``.

    Examples
    --------
    >>> validate_openmetrics("cache_hits_total 3\\n")
    ['missing # EOF terminator', 'line 1: sample for undeclared family (no preceding # TYPE): cache_hits_total']
    """
    errors: list[str] = []
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        errors.append("missing # EOF terminator")
    types: dict[str, str] = {}
    current_family: str | None = None
    seen_families: set[str] = set()
    hist_buckets: dict[str, list[tuple[float, float]]] = {}
    hist_counts: dict[str, float] = {}
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            errors.append(f"line {i}: blank lines are not allowed")
            continue
        if line.strip() == "# EOF":
            if i != len(lines):
                errors.append(f"line {i}: # EOF before end of payload")
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {i}: malformed # TYPE line")
                continue
            _, _, family, mtype = parts
            if not _NAME_OK.match(family):
                errors.append(f"line {i}: invalid family name {family!r}")
            if mtype not in ("counter", "gauge", "histogram", "summary",
                            "info", "unknown"):
                errors.append(f"line {i}: unknown metric type {mtype!r}")
            if family in types:
                errors.append(f"line {i}: duplicate # TYPE for {family!r}")
            if family in seen_families:
                errors.append(f"line {i}: family {family!r} reopened "
                              f"(samples must be contiguous)")
            types[family] = mtype
            if current_family is not None:
                seen_families.add(current_family)
            current_family = family
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT/comments
        match = _SAMPLE.match(line)
        if not match:
            errors.append(f"line {i}: unparseable sample line: {line!r}")
            continue
        name = match.group("name")
        labels = match.group("labels")
        if labels:
            for part in labels.split(","):
                if not _LABEL.match(part.strip()):
                    errors.append(f"line {i}: malformed label {part!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            errors.append(f"line {i}: non-numeric value "
                          f"{match.group('value')!r}")
            continue
        family = _family_of(name, types)
        if family is None:
            errors.append(f"line {i}: sample for undeclared family "
                          f"(no preceding # TYPE): {name}")
            continue
        if family != current_family:
            errors.append(f"line {i}: sample of family {family!r} inside "
                          f"family {current_family!r} block")
        mtype = types[family]
        if mtype == "counter" and not (
            name.endswith("_total") or name.endswith("_created")
        ):
            errors.append(f"line {i}: counter sample must end in _total: "
                          f"{name}")
        if mtype == "histogram":
            if name.endswith("_bucket"):
                le = None
                for part in (labels or "").split(","):
                    part = part.strip()
                    if part.startswith("le="):
                        le = part[4:-1]
                if le is None:
                    errors.append(f"line {i}: histogram bucket without an "
                                  f"le label")
                else:
                    edge = float("inf") if le == "+Inf" else float(le)
                    hist_buckets.setdefault(family, []).append((edge, value))
            elif name.endswith("_count"):
                hist_counts[family] = value
    for family, buckets in hist_buckets.items():
        edges = [e for e, _ in buckets]
        counts = [c for _, c in buckets]
        if edges != sorted(edges):
            errors.append(f"family {family!r}: bucket edges not sorted")
        if counts != sorted(counts):
            errors.append(f"family {family!r}: bucket counts not cumulative")
        if not edges or edges[-1] != float("inf"):
            errors.append(f"family {family!r}: missing le=\"+Inf\" bucket")
        elif family in hist_counts and counts[-1] != hist_counts[family]:
            errors.append(
                f"family {family!r}: +Inf bucket {counts[-1]} != _count "
                f"{hist_counts[family]}"
            )
    return errors
