"""Trace exporters: profile text, Chrome trace-event JSON, and a validator.

Three consumers of one span forest:

* :func:`format_trace` — the ``--profile`` view: an indented tree with
  wall/CPU times, counters, and attributes, widest subtrees first-come;
* :func:`chrome_events` / :func:`write_chrome_trace` — the
  ``chrome://tracing`` / Perfetto event-list format (``B``/``E`` duration
  pairs, microsecond timestamps, one lane per ``(pid, tid)``), so a traced
  ``workers=2`` run renders as one cross-process timeline;
* :func:`validate_chrome_trace` — the schema check CI runs on
  ``trace.json``: timestamps sorted, every ``B`` matched by an ``E`` of the
  same name in stack order, no orphan events.

Child intervals are clamped into their parent's window at export time:
wall-clock starts are sampled per span, so float jitter could otherwise
push a child's end a microsecond past its parent's — which the B/E stack
discipline would reject.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Sequence

from repro.obs.trace import Span

__all__ = [
    "format_trace",
    "chrome_events",
    "write_chrome_trace",
    "validate_chrome_trace",
]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_trace(
    spans: Sequence[Span], *, min_wall: float = 0.0, max_depth: int | None = None
) -> str:
    """Indented tree rendering of a span forest (the ``--profile`` view).

    Spans faster than *min_wall* seconds are folded into a ``… (+n)``
    summary line per parent, so wide fan-outs stay readable.
    """
    lines: list[str] = []

    def walk(s: Span, depth: int) -> None:
        indent = "  " * depth
        parts = [f"{indent}{s.name}", f"{_fmt_seconds(s.wall)} wall"]
        if s.cpu > 0:
            parts.append(f"{_fmt_seconds(s.cpu)} cpu")
        detail = ", ".join(
            f"{k}={_fmt_value(v)}"
            for k, v in list(s.attrs.items()) + list(s.counters.items())
        )
        line = "  ".join(parts)
        if detail:
            line += f"  [{detail}]"
        lines.append(line)
        if max_depth is not None and depth + 1 > max_depth:
            return
        hidden = 0
        for child in s.children:
            if child.wall < min_wall:
                hidden += 1
            else:
                walk(child, depth + 1)
        if hidden:
            lines.append(f"{'  ' * (depth + 1)}… (+{hidden} spans "
                         f"under {_fmt_seconds(min_wall)})")

    for root in spans:
        walk(root, 0)
    return "\n".join(lines)


def chrome_events(spans: Iterable[Span]) -> list[dict]:
    """Flatten a span forest into Chrome trace ``B``/``E`` event pairs.

    Thread ids are compacted to small integers per process; timestamps are
    integer microseconds on the shared wall-clock axis, children clamped
    into their parents. The result is sorted by timestamp (stable, so the
    per-lane stack discipline of the DFS emission survives ties).
    """
    events: list[dict] = []
    tid_map: dict[tuple[int, int], int] = {}

    def lane(s: Span) -> int:
        key = (s.pid, s.tid)
        if key not in tid_map:
            tid_map[key] = len([k for k in tid_map if k[0] == s.pid])
        return tid_map[key]

    def emit(s: Span, lo: int | None, hi: int | None) -> None:
        begin = int(round(s.t0 * 1e6))
        end = int(round((s.t0 + s.wall) * 1e6))
        if lo is not None:
            begin = max(begin, lo)
        if hi is not None:
            end = min(end, hi)
        end = max(end, begin)
        args = {**s.attrs, **s.counters}
        if s.cpu:
            args["cpu_ms"] = round(s.cpu * 1e3, 3)
        tid = lane(s)
        events.append({
            "name": s.name, "cat": "repro", "ph": "B",
            "ts": begin, "pid": s.pid, "tid": tid, "args": args,
        })
        for child in s.children:
            emit(child, begin, end)
        events.append({
            "name": s.name, "cat": "repro", "ph": "E",
            "ts": end, "pid": s.pid, "tid": tid,
        })

    for root in spans:
        emit(root, None, None)
    events.sort(key=lambda e: e["ts"])
    return events


def write_chrome_trace(
    path: str | pathlib.Path, spans: Iterable[Span]
) -> pathlib.Path:
    """Write ``{"traceEvents": [...]}`` JSON loadable by ``chrome://tracing``
    (or https://ui.perfetto.dev)."""
    path = pathlib.Path(path)
    payload = {"traceEvents": chrome_events(spans), "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def validate_chrome_trace(source) -> list[str]:
    """Validate Chrome trace-event JSON; returns a list of problems.

    *source* is a path, a parsed payload dict, or an event list. Checks the
    shape CI relies on: every event carries ``name``/``ph``/``ts``/``pid``/
    ``tid``, timestamps are non-decreasing integers, and per ``(pid, tid)``
    lane the ``B``/``E`` events obey stack discipline with matching names —
    no orphans left open, no stray ``E``.

    Examples
    --------
    >>> validate_chrome_trace({"traceEvents": [
    ...     {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
    ...     {"name": "a", "ph": "E", "ts": 5, "pid": 1, "tid": 0},
    ... ]})
    []
    >>> validate_chrome_trace({"traceEvents": [
    ...     {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
    ... ]})
    ["lane (1, 0): 1 unmatched B event(s), innermost 'a'"]
    """
    if isinstance(source, (str, pathlib.Path)):
        data = json.loads(pathlib.Path(source).read_text())
    else:
        data = source
    events = data["traceEvents"] if isinstance(data, dict) else data
    errors: list[str] = []
    if not isinstance(events, list) or not events:
        return ["traceEvents must be a non-empty list"]
    last_ts = None
    stacks: dict[tuple, list[str]] = {}
    for i, event in enumerate(events):
        missing = [k for k in ("name", "ph", "ts", "pid", "tid")
                   if k not in event]
        if missing:
            errors.append(f"event {i} missing keys {missing}")
            continue
        ts = event["ts"]
        if not isinstance(ts, int):
            errors.append(f"event {i} ts {ts!r} is not an integer")
        if last_ts is not None and ts < last_ts:
            errors.append(
                f"event {i} ts {ts} precedes previous ts {last_ts}"
            )
        last_ts = ts
        lane = (event["pid"], event["tid"])
        stack = stacks.setdefault(lane, [])
        if event["ph"] == "B":
            stack.append(event["name"])
        elif event["ph"] == "E":
            if not stack:
                errors.append(
                    f"event {i}: E {event['name']!r} with no open B in "
                    f"lane {lane}"
                )
            elif stack[-1] != event["name"]:
                errors.append(
                    f"event {i}: E {event['name']!r} does not match open "
                    f"B {stack[-1]!r} in lane {lane}"
                )
                stack.pop()
            else:
                stack.pop()
        else:
            errors.append(f"event {i}: unsupported phase {event['ph']!r}")
    for lane, stack in stacks.items():
        if stack:
            errors.append(
                f"lane {lane}: {len(stack)} unmatched B event(s), "
                f"innermost {stack[-1]!r}"
            )
    return errors
