"""Vectorized batch re-scoring of compiled circuits.

The serving-side half of compile-once / re-score-many: given a compiled
:class:`~repro.circuit.ArithmeticCircuit` and a ``(batch, n_leaves)``
probability matrix, :func:`rescore` pushes the whole batch through one
levelised bottom-up NumPy sweep — the per-node Python cost is paid once for
the entire batch instead of once per scenario, which is where the orders of
magnitude over the scalar :meth:`OBDD.probability` walk come from.
:func:`rescore_with_gradients` adds the mirror top-down sweep, returning the
exact per-leaf derivative ``∂Pr/∂p_i`` (the what-if swing) for *every*
scenario at once.

Memory is bounded by row chunking: the sweep materialises a
``(rows, n_nodes)`` values matrix, so a large batch against a large circuit
is processed in slices of at most :data:`CHUNK_BYTES` (the results are
independent across rows; chunking is invisible to callers).

:class:`ScenarioBatch` is the zero-copy scenario representation: a base
circuit plus a small set of overridden columns. Building the probability
matrix once (tile + column assignment) replaces the per-scenario dict
construction and dict lookups of the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.circuit.ac import ArithmeticCircuit
from repro.errors import CircuitError
from repro.lineage.dnf import EventVar
from repro.obs.trace import span as _span

__all__ = ["rescore", "rescore_with_gradients", "ScenarioBatch", "CHUNK_BYTES"]

#: Soft cap on the per-chunk values matrix (bytes); batches whose
#: ``rows × nodes × 8`` footprint exceeds it are processed in row slices.
CHUNK_BYTES = 1 << 26  # 64 MiB


def _chunk_rows(circuit: ArithmeticCircuit, batch: int) -> int:
    per_row = max(1, len(circuit)) * 8
    rows = max(1, CHUNK_BYTES // per_row)
    return min(batch, rows)


def rescore(
    circuit: ArithmeticCircuit, P, *, chunk_rows: int | None = None
) -> np.ndarray:
    """Root probabilities for a batch of leaf-probability vectors.

    Parameters
    ----------
    circuit:
        A compiled circuit.
    P:
        ``(batch, n_leaves)`` matrix (or a single ``(n_leaves,)`` vector,
        promoted to a batch of one), or a :class:`ScenarioBatch`.
    chunk_rows:
        Rows per sweep; defaults to whatever keeps the intermediate values
        matrix under :data:`CHUNK_BYTES`.

    Returns
    -------
    numpy.ndarray
        ``(batch,)`` float64 probabilities, one per scenario.

    Examples
    --------
    >>> from repro.circuit.compile import compile_dnf
    >>> from repro.lineage.dnf import DNF, EventVar
    >>> x, y = EventVar("R", (1,)), EventVar("R", (2,))
    >>> c = compile_dnf(DNF([{x}, {y}]), {x: 0.5, y: 0.5})
    >>> rescore(c, [[0.5, 0.5], [1.0, 0.0]]).tolist()
    [0.75, 1.0]
    """
    if isinstance(P, ScenarioBatch):
        P = P.matrix_for(circuit)
    P = np.asarray(P, dtype=np.float64)
    if P.ndim == 1:
        P = P[np.newaxis, :]
    batch = P.shape[0]
    rows = chunk_rows or _chunk_rows(circuit, batch)
    out = np.empty(batch, dtype=np.float64)
    with _span(
        "rescore", batch=batch, nodes=len(circuit), leaves=circuit.n_leaves
    ):
        for start in range(0, batch, rows):
            stop = min(batch, start + rows)
            out[start:stop] = circuit.evaluate(P[start:stop])
    return out


def rescore_with_gradients(
    circuit: ArithmeticCircuit, P, *, chunk_rows: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Batch root probabilities plus exact per-leaf gradients.

    Returns ``(values, gradients)`` of shapes ``(batch,)`` and
    ``(batch, n_leaves)``. By multilinearity ``gradients[s, i]`` equals the
    what-if swing of leaf *i* under scenario *s*:
    ``Pr(leaf certain) - Pr(leaf absent)``, and
    ``Pr(leaf certain) = value + (1 - p_i) * gradient``,
    ``Pr(leaf absent) = value - p_i * gradient``, so one sweep yields every
    sensitivity of :class:`~repro.core.whatif.WhatIfAnalysis` at once.

    Examples
    --------
    >>> from repro.circuit.compile import compile_dnf
    >>> from repro.lineage.dnf import DNF, EventVar
    >>> x, y = EventVar("R", (1,)), EventVar("R", (2,))
    >>> c = compile_dnf(DNF([{x}, {y}]), {x: 0.5, y: 0.5})
    >>> values, grads = rescore_with_gradients(c, [[0.5, 0.5]])
    >>> grads[0].tolist()
    [0.5, 0.5]
    """
    if isinstance(P, ScenarioBatch):
        P = P.matrix_for(circuit)
    P = np.asarray(P, dtype=np.float64)
    if P.ndim == 1:
        P = P[np.newaxis, :]
    batch = P.shape[0]
    # the gradient pass holds values + grad + leaf_grad: budget a third
    rows = chunk_rows or max(1, _chunk_rows(circuit, batch) // 3)
    rows = min(batch, rows)
    values = np.empty(batch, dtype=np.float64)
    grads = np.empty((batch, circuit.n_leaves), dtype=np.float64)
    with _span(
        "rescore_with_gradients",
        batch=batch,
        nodes=len(circuit),
        leaves=circuit.n_leaves,
    ):
        for start in range(0, batch, rows):
            stop = min(batch, start + rows)
            v, g = circuit.evaluate_with_gradients(P[start:stop])
            values[start:stop] = v
            grads[start:stop] = g
    return values, grads


@dataclass
class ScenarioBatch:
    """A batch of what-if scenarios: per-variable override columns.

    Most scenarios perturb a handful of tuples against a fixed base vector,
    so the batch is stored as ``(variables, matrix)`` — one column of
    override values per perturbed variable — and expanded against a concrete
    circuit's :attr:`~repro.circuit.ArithmeticCircuit.base_probs` only when
    the probability matrix is needed. Variables the circuit does not contain
    are ignored (a tuple outside this answer's lineage cannot affect it).

    Examples
    --------
    >>> x, y = EventVar("R", (1,)), EventVar("R", (2,))
    >>> batch = ScenarioBatch((x,), [[0.0], [1.0]])
    >>> len(batch)
    2
    >>> ScenarioBatch.from_overrides([{x: 0.0}, {x: 1.0}]).matrix.tolist()
    [[0.0], [1.0]]
    """

    #: The perturbed variables, one matrix column each.
    variables: tuple[EventVar, ...]
    #: ``(batch, len(variables))`` override values.
    matrix: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))

    def __post_init__(self) -> None:
        self.variables = tuple(self.variables)
        self.matrix = np.asarray(self.matrix, dtype=np.float64)
        if self.matrix.ndim != 2 or self.matrix.shape[1] != len(self.variables):
            raise CircuitError(
                f"scenario matrix of shape {self.matrix.shape} does not "
                f"match {len(self.variables)} override variables"
            )

    def __len__(self) -> int:
        return self.matrix.shape[0]

    @classmethod
    def from_overrides(
        cls, overrides: Iterable[Mapping[EventVar, float]]
    ) -> "ScenarioBatch":
        """Build a batch from per-scenario ``{variable: probability}`` maps.

        Variables missing from a scenario keep the base probability; the
        column set is the union of all override keys.
        """
        overrides = list(overrides)
        variables = tuple(
            sorted({v for scenario in overrides for v in scenario})
        )
        column = {v: j for j, v in enumerate(variables)}
        matrix = np.full((len(overrides), len(variables)), np.nan)
        for i, scenario in enumerate(overrides):
            for v, p in scenario.items():
                matrix[i, column[v]] = float(p)
        return cls._with_nan_as_base(variables, matrix)

    @classmethod
    def _with_nan_as_base(cls, variables, matrix) -> "ScenarioBatch":
        batch = cls.__new__(cls)
        batch.variables = tuple(variables)
        batch.matrix = np.asarray(matrix, dtype=np.float64)
        return batch

    def matrix_for(self, circuit: ArithmeticCircuit) -> np.ndarray:
        """The full ``(batch, n_leaves)`` matrix against *circuit*'s base.

        Base probabilities are tiled once; override columns are assigned in
        one fancy-indexing statement (``NaN`` entries — "keep base" from
        :meth:`from_overrides` — are skipped).
        """
        P = np.tile(circuit.base_probs, (len(self), 1))
        cols = []
        src = []
        for j, v in enumerate(self.variables):
            i = circuit.index_of(v)
            if i is not None:
                cols.append(i)
                src.append(j)
        if cols:
            values = self.matrix[:, src]
            if np.isnan(values).any():
                base = P[:, cols]
                values = np.where(np.isnan(values), base, values)
            P[:, cols] = values
        return P
