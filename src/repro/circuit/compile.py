"""Compiling solved lineage artifacts into arithmetic circuits.

Three lowering paths, one per inference artifact the engine already produces:

* :func:`compile_obdd` — the exact path's OBDD [17] maps node-for-node onto a
  circuit: each decision node ``(v, low, high)`` becomes the Shannon sum
  ``(1-p_v)·low + p_v·high``, which is deterministic and decomposable by the
  ordering invariant (``low``/``high`` only test variables after ``v``).
* :func:`compile_network` — a *tree-shaped* And-Or network slice (the
  VE/treeprop regime) compiles directly without any DNF or OBDD in between:
  Or gates are independent unions ``1 - Π (1 - q_i·child_i)``, And gates are
  products, noisy edges contribute the paper's anonymous edge variables.
* :func:`compile_dnf` — the fallback replays the DPLL decomposition trace of
  :mod:`repro.lineage.exact` (independent components, common-variable
  factoring, Shannon expansion), but *records* the trace as circuit gates
  instead of collapsing it to one number. The circuit is the reusable form
  of the work the solver already did.

All three build probability-INDEPENDENT structure: no path folds constants
based on current leaf probabilities (contrast :func:`~repro.lineage.exact
.dnf_probability`, which simplifies ``p==1`` variables away up front). One
compiled structure therefore serves every future re-scoring, which is what
the :class:`~repro.circuit.CircuitCache` relies on.

:func:`compile_lineage` is the dispatcher used by
:class:`~repro.core.whatif.WhatIfAnalysis`: tree-direct when the slice is a
tree, else OBDD, else DPLL trace when the OBDD blows its node budget.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

from repro.circuit.ac import ArithmeticCircuit, CircuitBuilder
from repro.core.compile import partial_lineage_dnf
from repro.core.network import EPSILON, AndOrNetwork, NodeKind
from repro.errors import CapacityError
from repro.lineage.dnf import DNF, EventVar
from repro.lineage.exact import _split_components
from repro.lineage.obdd import FALSE, TRUE, OBDD, build_obdd
from repro.obs.trace import span as _span

__all__ = [
    "compile_obdd",
    "compile_dnf",
    "compile_network",
    "compile_lineage",
]


def compile_obdd(
    obdd: OBDD, probs: Mapping[EventVar, float]
) -> ArithmeticCircuit:
    """Lower a reduced OBDD into an arithmetic circuit.

    Every decision node becomes one deterministic SUM over two guarded
    products; terminals become constants. Long edges (skipped variables)
    need no smoothing gates: the pair ``(p, 1-p)`` marginalises to 1, so the
    circuit value equals the OBDD probability for *any* leaf vector.

    Examples
    --------
    >>> from repro.lineage.dnf import DNF, EventVar
    >>> x, y = EventVar("R", (1,)), EventVar("R", (2,))
    >>> c = compile_obdd(build_obdd(DNF([{x}, {y}])), {x: 0.5, y: 0.5})
    >>> float(c.evaluate(c.base_probs)[0])
    0.75
    """
    b = CircuitBuilder()
    mapped: dict[int, int] = {FALSE: b.const(0.0), TRUE: b.const(1.0)}
    for node_id in range(2, len(obdd.nodes) + 2):
        var_index, low, high = obdd.node(node_id)
        mapped[node_id] = b.sum(
            [
                b.prod([b.var(var_index), mapped[high]]),
                b.prod([b.nvar(var_index), mapped[low]]),
            ]
        )
    return b.build(
        mapped[obdd.root],
        leaf_vars=obdd.order,
        base_probs=[float(probs[v]) for v in obdd.order],
    )


def compile_dnf(
    dnf: DNF,
    probs: Mapping[EventVar, float],
    *,
    max_nodes: int = 1_000_000,
    budget=None,
    leaf_order: Sequence[EventVar] | None = None,
) -> ArithmeticCircuit:
    """Compile a monotone DNF by recording the DPLL decomposition trace.

    Mirrors the solver of :mod:`repro.lineage.exact` — independent
    components, common-variable factoring, Shannon expansion, memoisation on
    clause sets — but emits gates instead of numbers. Decisions depend only
    on the integer clause structure (deterministic tie-breaks, no
    probability-driven simplification), so two DNFs with the same shape over
    the same leaf order compile to the identical circuit: the property the
    structural cache's rename-invariant signatures rely on.

    Parameters
    ----------
    dnf, probs:
        The formula and the default probability of each of its variables
        (recorded as :attr:`~repro.circuit.ArithmeticCircuit.base_probs`;
        never baked into structure).
    max_nodes:
        Builder budget; :class:`~repro.errors.CapacityError` beyond it.
    budget:
        Optional :class:`~repro.resilience.QueryBudget`, checked
        cooperatively every few hundred compile steps.
    leaf_order:
        Leaf-column order of the circuit; defaults to sorted variables.
        The cache layer passes its canonical rank order here.

    Examples
    --------
    >>> from repro.lineage.dnf import DNF, EventVar
    >>> x, y = EventVar("R", (1,)), EventVar("R", (2,))
    >>> c = compile_dnf(DNF([{x}, {y}]), {x: 0.5, y: 0.5})
    >>> round(c.probability(), 6)
    0.75
    """
    if leaf_order is None:
        leaf_order = tuple(sorted(dnf.variables()))
    else:
        leaf_order = tuple(leaf_order)
        missing = dnf.variables() - set(leaf_order)
        if missing:
            raise ValueError(
                f"leaf_order misses variables: {sorted(map(str, missing))}"
            )
    index = {v: i for i, v in enumerate(leaf_order)}
    b = CircuitBuilder()
    memo: dict[frozenset[frozenset[int]], int] = {}
    steps = 0

    def check() -> None:
        nonlocal steps
        steps += 1
        if len(b) > max_nodes:
            raise CapacityError(
                f"circuit compilation exceeded {max_nodes} nodes"
            )
        if budget is not None and steps % 256 == 0:
            budget.checkpoint("circuit-compile")

    def compile_clauses(clauses: frozenset[frozenset[int]]) -> int:
        if not clauses:
            return b.const(0.0)
        if frozenset() in clauses:
            return b.const(1.0)
        hit = memo.get(clauses)
        if hit is not None:
            return hit
        check()
        groups = _split_components(clauses)
        if len(groups) > 1:
            # independent union: 1 - Π (1 - Pr(component))
            groups.sort(key=lambda g: min(v for c in g for v in c))
            node = b.cmpl(b.prod([b.cmpl(factor(g)) for g in groups]))
        else:
            node = factor(clauses)
        memo[clauses] = node
        return node

    def factor(clauses: frozenset[frozenset[int]]) -> int:
        common = frozenset.intersection(*clauses)
        if common:
            literals = [b.var(v) for v in sorted(common)]
            rest = frozenset(c - common for c in clauses)
            if frozenset() in rest:
                return b.prod(literals) if len(literals) > 1 else literals[0]
            return b.prod(literals + [compile_clauses(rest)])
        return shannon(clauses)

    def shannon(clauses: frozenset[frozenset[int]]) -> int:
        counts: Counter[int] = Counter()
        for c in clauses:
            counts.update(c)
        var = max(counts, key=lambda v: (counts[v], -v))
        positive = frozenset(c - {var} for c in clauses if var in c) | frozenset(
            c for c in clauses if var not in c
        )
        negative = frozenset(c for c in clauses if var not in c)
        pos = compile_clauses(positive)
        neg = compile_clauses(negative)
        return b.sum([b.prod([b.var(var), pos]), b.prod([b.nvar(var), neg])])

    int_clauses = frozenset(
        frozenset(index[v] for v in c) for c in dnf.clauses
    )
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000 + 6 * len(leaf_order)))
    with _span(
        "compile_dnf", variables=len(leaf_order), clauses=len(dnf.clauses)
    ) as sp:
        try:
            root = compile_clauses(int_clauses)
        finally:
            sys.setrecursionlimit(old_limit)
        sp.add("circuit_nodes", len(b))
    return b.build(
        root,
        leaf_vars=leaf_order,
        base_probs=[float(probs[v]) for v in leaf_order],
    )


def compile_network(
    net: AndOrNetwork, node: int
) -> ArithmeticCircuit | None:
    """Tree-direct compilation of the sub-network rooted at *node*.

    When the slice feeding *node* is a tree (no input — gate or leaf —
    reachable along two paths), every gate is an independent combination and
    lowers directly: And gates to products, Or gates to the complement trick
    ``1 - Π (1 - branch_i)``, each noisy edge (``q < 1``) to one anonymous
    edge variable. Variables carry the exact names
    :func:`~repro.core.compile.partial_lineage_dnf` would assign
    (``("leaf", (id,))`` / ``("edge", (child, index))``), so the circuit is
    interchangeable with the OBDD/DNF paths for what-if overrides.

    Returns ``None`` when the slice is not a tree (a shared input breaks
    decomposability of the direct product); callers fall back to the
    OBDD or DPLL-trace path.

    Examples
    --------
    >>> net = AndOrNetwork()
    >>> x = net.add_leaf(0.5)
    >>> g = net.add_gate(NodeKind.OR, [(x, 0.25), (EPSILON, 0.1)])
    >>> c = compile_network(net, g)
    >>> round(c.probability(), 6)                 # 1-(1-.5*.25)(1-.1)
    0.2125
    """
    if node == EPSILON:
        return None
    b = CircuitBuilder()
    leaf_vars: list[EventVar] = []
    base_probs: list[float] = []
    expanded: set[int] = set()

    def new_leaf(var: EventVar, probability: float) -> int:
        leaf_vars.append(var)
        base_probs.append(float(probability))
        return b.var(len(leaf_vars) - 1)

    def expand(v: int) -> int | None:
        if v == EPSILON:
            return b.const(1.0)
        if v in expanded:
            return None  # shared input: not a tree
        expanded.add(v)
        kind = net.kind(v)
        if kind is NodeKind.LEAF:
            return new_leaf(EventVar("leaf", (v,)), net.leaf_probability(v))
        branches: list[int] = []
        for i, (w, q) in enumerate(net.parents(v)):
            sub = expand(w)
            if sub is None:
                return None
            if q < 1.0:
                anon = new_leaf(EventVar("edge", (v, i)), q)
                sub = anon if sub == b.const(1.0) else b.prod([anon, sub])
            branches.append(sub)
        if kind is NodeKind.AND:
            return b.prod(branches) if len(branches) > 1 else branches[0]
        if len(branches) == 1:
            return branches[0]
        return b.cmpl(b.prod([b.cmpl(x) for x in branches]))

    root = expand(node)
    if root is None:
        return None
    return b.build(root, leaf_vars=tuple(leaf_vars), base_probs=base_probs)


def compile_lineage(
    net: AndOrNetwork,
    node: int,
    *,
    obdd_max_nodes: int = 200_000,
    max_clauses: int = 500_000,
    budget=None,
) -> tuple[ArithmeticCircuit, str]:
    """Compile the lineage of one network node, choosing the cheapest path.

    Returns ``(circuit, method)`` with ``method`` one of ``"tree"``,
    ``"obdd"``, ``"dnf"``: tree-direct when the slice is a tree, else the
    OBDD lowering, else the DPLL-trace compiler when OBDD construction blows
    its node budget (cf. Theorem 4.2 — some lineages have no small OBDD
    under any order but still decompose well).

    Raises
    ------
    CapacityError
        When even the DNF expansion or the trace compiler exceeds capacity.
    DeadlineExceededError
        From *budget* checkpoints inside OBDD construction or the trace
        compiler.
    """
    direct = compile_network(net, node)
    if direct is not None:
        return direct, "tree"
    dnf, probs = partial_lineage_dnf(net, node, max_clauses=max_clauses)
    try:
        obdd = build_obdd(dnf, max_nodes=obdd_max_nodes, budget=budget)
        return compile_obdd(obdd, probs), "obdd"
    except CapacityError:
        return (
            compile_dnf(dnf, probs, budget=budget),
            "dnf",
        )
