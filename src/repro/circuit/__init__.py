"""Compile-once, re-score-many: cached arithmetic circuits over lineage.

The intensional engine pays the #P-hard inference cost once per answer; this
package keeps that investment. Each answer's solved lineage artifact — OBDD,
tree-shaped And-Or slice, or DPLL decomposition trace — lowers into a flat,
topologically-ordered :class:`ArithmeticCircuit` (deterministic and
decomposable, hence multilinear-exact for *any* leaf probabilities), a
structural :class:`CircuitCache` shares one compilation across
rename-equivalent lineages, and the :func:`rescore` kernels push whole
``(batch, n_leaves)`` probability matrices through single bottom-up NumPy
sweeps — plus a mirror top-down sweep for exact per-leaf sensitivities.

Layout:

* :mod:`repro.circuit.ac` — the circuit representation, builder, levelised
  batch evaluation and gradient kernels, structural validation;
* :mod:`repro.circuit.compile` — the three lowering paths and the
  :func:`compile_lineage` dispatcher;
* :mod:`repro.circuit.cache` — rename-invariant structural caching with
  mutation invalidation;
* :mod:`repro.circuit.rescore` — batch re-scoring kernels and the
  :class:`ScenarioBatch` scenario representation.
"""

from repro.circuit.ac import (
    OP_CMPL,
    OP_CONST,
    OP_NVAR,
    OP_PROD,
    OP_SUM,
    OP_VAR,
    ArithmeticCircuit,
    CircuitBuilder,
)
from repro.circuit.cache import CircuitCache, circuit_signature
from repro.circuit.compile import (
    compile_dnf,
    compile_lineage,
    compile_network,
    compile_obdd,
)
from repro.circuit.rescore import (
    CHUNK_BYTES,
    ScenarioBatch,
    rescore,
    rescore_with_gradients,
)

__all__ = [
    "ArithmeticCircuit",
    "CircuitBuilder",
    "CircuitCache",
    "circuit_signature",
    "compile_dnf",
    "compile_lineage",
    "compile_network",
    "compile_obdd",
    "rescore",
    "rescore_with_gradients",
    "ScenarioBatch",
    "CHUNK_BYTES",
    "OP_CONST",
    "OP_VAR",
    "OP_NVAR",
    "OP_SUM",
    "OP_PROD",
    "OP_CMPL",
]
