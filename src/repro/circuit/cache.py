"""Structural caching of compiled arithmetic circuits.

Per-answer lineages of one query — and of repeats of the same query against
an unchanged instance — are overwhelmingly *rename-equivalent*: the same
clause shape over differently-named :class:`~repro.lineage.dnf.EventVar`
variables. Compilation cost (DPLL trace or OBDD construction, the residual
#P work) depends only on that shape, so the :class:`CircuitCache` keys on a
rename-invariant signature and a hit costs one :meth:`~repro.circuit
.ArithmeticCircuit.rebind` — the node table, CSR arrays, and levelised
schedule are shared; only the ``leaf → EventVar`` binding is fresh.

Soundness of the signature (:func:`circuit_signature`) follows the
:func:`repro.perf.cache.canonical_key` argument: variables are ranked in a
deterministic order and the key records the clause structure over ranks.
Because :func:`~repro.circuit.compile.compile_dnf`'s decisions are a pure
function of that integer structure (given the same rank-ordered leaf
layout), equal keys guarantee the *identical* circuit under rank
relabelling. Unlike ``canonical_key``, the signature drops the probability
weights — circuit structure is probability-independent, so instances that
differ only in tuple probabilities still share one compilation (the whole
point of compile-once / re-score-many).

Invalidation: compiled circuits bake in the lineage of a *specific*
instance, so any relation mutation must flush. :meth:`CircuitCache.watch`
subscribes to a :class:`~repro.db.ProbabilisticDatabase`'s mutation hooks
and clears on every insert.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.circuit.ac import ArithmeticCircuit
from repro.circuit.compile import compile_dnf
from repro.lineage.dnf import DNF, EventVar
from repro.perf.cache import CacheStats, SubformulaCache

__all__ = ["CircuitCache", "circuit_signature"]


def circuit_signature(
    dnf: DNF, probs: Mapping[EventVar, float]
) -> tuple[tuple, tuple[EventVar, ...]]:
    """Rename-invariant structural key of a lineage DNF.

    Returns ``(key, ranked_vars)``: variables ranked in ascending
    ``(probability, variable)`` order — the :func:`~repro.perf.cache
    .canonical_key` tie-break, so renamings that preserve probabilities are
    recognised — and the key is the sorted clause structure over ranks,
    *without* the probability weights (structure is probability-independent;
    equal shape suffices for sharing a compilation).

    Examples
    --------
    >>> x, y = EventVar("R", (1,)), EventVar("R", (2,))
    >>> z, w = EventVar("S", (8,)), EventVar("S", (9,))
    >>> key1, _ = circuit_signature(DNF([{x}, {y}]), {x: 0.2, y: 0.7})
    >>> key2, _ = circuit_signature(DNF([{z}, {w}]), {z: 0.3, w: 0.8})
    >>> key1 == key2                        # renamed, re-weighted: same shape
    True
    """
    ranked = sorted(dnf.variables(), key=lambda v: (float(probs[v]), v))
    relabel = {v: i for i, v in enumerate(ranked)}
    shape = tuple(
        sorted(tuple(sorted(relabel[v] for v in c)) for c in dnf.clauses)
    )
    return ("circuit", shape), tuple(ranked)


class CircuitCache:
    """Bounded LRU of compiled circuits keyed by structural signature.

    Thin policy layer over :class:`~repro.perf.SubformulaCache` (same LRU
    and :class:`~repro.perf.cache.CacheStats` counters, so
    :meth:`~repro.obs.MetricsRegistry.absorb` ingests it unchanged), plus a
    recompile counter: ``recompiles`` counts misses whose key had been
    compiled before but was evicted or invalidated — the warm-cache
    recompile rate the rescore benchmark gates on.

    Examples
    --------
    >>> cache = CircuitCache()
    >>> x, y = EventVar("R", (1,)), EventVar("R", (2,))
    >>> c1 = cache.circuit(DNF([{x}, {y}]), {x: 0.2, y: 0.7})
    >>> z, w = EventVar("S", (8,)), EventVar("S", (9,))
    >>> c2 = cache.circuit(DNF([{z}, {w}]), {z: 0.3, w: 0.8})
    >>> c2.ops is c1.ops                    # one compilation, rebound
    True
    >>> c2.probability({z: 0.5, w: 0.5})
    0.75
    >>> (cache.stats.hits, cache.stats.misses, cache.recompiles)
    (1, 1, 0)
    """

    __slots__ = ("_store", "recompiles", "_compiled_keys", "_watched")

    def __init__(self, max_entries: int = 10_000) -> None:
        self._store = SubformulaCache(max_entries=max_entries)
        self.recompiles = 0
        self._compiled_keys: set = set()
        self._watched: list = []

    # --------------------------------------------------------------- lookups
    def __len__(self) -> int:
        return len(self._store)

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters (shared shape with every repro cache)."""
        return self._store.stats

    def circuit(
        self,
        dnf: DNF,
        probs: Mapping[EventVar, float],
        *,
        budget=None,
        max_nodes: int = 1_000_000,
    ) -> ArithmeticCircuit:
        """The compiled circuit of *dnf*, cached structurally.

        On a hit the stored circuit is rebound to this lineage's variables
        and probabilities (array-sharing, no copy); on a miss the DNF is
        compiled via the trace compiler over the canonical rank order and
        stored.
        """
        key, ranked = circuit_signature(dnf, probs)
        hit = self._store.get(key)
        if hit is not None:
            return hit.rebind(ranked, [float(probs[v]) for v in ranked])
        if key in self._compiled_keys:
            self.recompiles += 1
        circuit = compile_dnf(
            dnf, probs, leaf_order=ranked, budget=budget, max_nodes=max_nodes
        )
        self._store.put(key, circuit)
        self._compiled_keys.add(key)
        return circuit

    def put(self, dnf: DNF, probs: Mapping[EventVar, float],
            circuit: ArithmeticCircuit) -> None:
        """Store an externally-compiled circuit (OBDD or tree-direct path).

        The circuit must be over exactly the variables of *dnf*; it is
        stored rebound to the canonical rank order so later hits can rebind
        it to any rename-equivalent lineage.
        """
        key, ranked = circuit_signature(dnf, probs)
        if set(circuit.leaf_vars) != set(ranked):
            raise ValueError(
                "circuit leaves do not match the lineage's variables"
            )
        # normalise to canonical rank layout so rename-hits can rebind
        # columns positionally, whatever layout the compiler chose.
        self._store.put(key, circuit.with_leaf_order(ranked))
        self._compiled_keys.add(key)

    def get(
        self, dnf: DNF, probs: Mapping[EventVar, float]
    ) -> ArithmeticCircuit | None:
        """Cached circuit rebound to this lineage, or ``None``."""
        key, ranked = circuit_signature(dnf, probs)
        hit = self._store.get(key)
        if hit is None:
            return None
        return hit.rebind(ranked, [float(probs[v]) for v in ranked])

    # ---------------------------------------------------------- invalidation
    def clear(self) -> None:
        """Drop every cached circuit (counters and recompile memory kept)."""
        self._store.clear()

    def invalidate(self, relation: str | None = None) -> None:
        """Flush on instance mutation.

        Compiled circuits embed offending-tuple lineage whose shape can
        change under any insert, so the whole store is flushed regardless of
        *relation* (kept as a parameter for hook signatures and future
        per-relation tracking).
        """
        self.clear()

    def watch(self, db) -> None:
        """Subscribe to *db*'s mutation hooks: any insert invalidates.

        Accepts a :class:`~repro.db.ProbabilisticDatabase` (or any object
        exposing ``subscribe(fn)``); the hook receives the mutated
        relation's name.
        """
        db.subscribe(self.invalidate)
        self._watched.append(db)

    def as_dict(self) -> dict:
        """Counters for reports: the LRU stats plus the recompile count."""
        out = self._store.stats.as_dict()
        out["entries"] = len(self._store)
        out["recompiles"] = self.recompiles
        return out
