"""Flat arithmetic circuits for compile-once / re-score-many evaluation.

The what-if workload re-evaluates one answer's lineage under thousands of
changed leaf-probability vectors. Walking an OBDD per scenario in Python pays
the interpreter cost per node *per scenario*; an :class:`ArithmeticCircuit`
pays it per node only, pushing the whole scenario batch through each node as
one NumPy operation ("Towards Deterministic Decomposable Circuits for Safe
Queries", Monet & Olteanu — our circuits are the arithmetic view of a d-D
circuit over the lineage variables).

A circuit is a topologically-ordered node table stored as flat NumPy arrays
(op codes, a CSR child list, a leaf index per literal node) plus the
``leaf index -> EventVar`` binding for one concrete lineage. Node kinds:

* ``CONST c`` — a constant (the OBDD terminals);
* ``VAR i`` / ``NVAR i`` — the probability ``p_i`` of leaf *i*, or ``1-p_i``;
* ``SUM`` — a *deterministic* sum: always the two guarded branches of a
  Shannon expansion ``p·F|x + (1-p)·F|¬x``;
* ``PROD`` — a *decomposable* product: children over pairwise-disjoint leaf
  supports (independent factors multiply);
* ``CMPL`` — the single-child complement ``1 - c`` (the independent-union
  rule ``1 - Π(1-Pr(F_i))`` needs it; complements of multilinear functions
  stay multilinear).

Under these invariants — checked by :meth:`ArithmeticCircuit.validate` —
the circuit computes exactly the multilinear lineage polynomial
``Pr(F)(p_1..p_k)``, for *any* leaf probability vector, so re-scoring is a
single bottom-up sweep and every partial derivative ``∂Pr/∂p_i`` (the exact
what-if swing of leaf *i*) falls out of one mirror top-down sweep.

Explicit smoothing gates are unnecessary: every literal contributes the
normalised pair ``(p, 1-p)``, so a variable skipped along a branch (an OBDD
long edge) marginalises to 1 automatically; values *and* backpropagated
derivatives of the computed expression equal those of the smoothed circuit.

Evaluation is levelised at construction time: nodes are grouped by depth and
op code, so one batch sweep over a circuit of ``L`` levels costs ``O(L)``
NumPy calls regardless of batch size — the compile-once artifact the
:mod:`repro.circuit.rescore` kernels and :class:`repro.circuit.CircuitCache`
amortise over millions of re-scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import CircuitError
from repro.lineage.dnf import EventVar

__all__ = [
    "OP_CONST",
    "OP_VAR",
    "OP_NVAR",
    "OP_SUM",
    "OP_PROD",
    "OP_CMPL",
    "ArithmeticCircuit",
    "CircuitBuilder",
]

#: Op codes of the node table (``ops`` array values).
OP_CONST, OP_VAR, OP_NVAR, OP_SUM, OP_PROD, OP_CMPL = range(6)

_OP_NAMES = ("const", "var", "nvar", "sum", "prod", "cmpl")


@dataclass(frozen=True)
class _Group:
    """One levelised evaluation step: same-depth nodes of one op code.

    Index arrays are precomputed once so a batch sweep is pure NumPy:
    ``nodes`` are the node ids written by this step; for SUM/PROD,
    ``children`` is their concatenated child list and ``starts`` the
    segment boundaries (``np.add.reduceat`` / ``np.multiply.reduceat``
    offsets); for VAR/NVAR, ``args`` are the leaf columns; for CMPL,
    ``children`` holds the single child per node.
    """

    op: int
    nodes: np.ndarray
    children: np.ndarray | None = None
    starts: np.ndarray | None = None
    args: np.ndarray | None = None
    consts: np.ndarray | None = None
    #: Child repetition counts (SUM/PROD), for the gradient scatter.
    counts: np.ndarray | None = None
    #: Uniform child count when every gate of the step has the same arity
    #: (0 otherwise) — the reshape fast path of the batch sweep. OBDD-lowered
    #: circuits are almost entirely arity-2 sums and products.
    arity: int = 0


class ArithmeticCircuit:
    """A validated, levelised arithmetic circuit over ``n_leaves`` variables.

    Construct through :class:`CircuitBuilder` (or the compilers of
    :mod:`repro.circuit.compile`); the constructor validates structure and
    precomputes the level schedule.

    Examples
    --------
    ``x ∨ y`` as the Shannon circuit ``p_x·1 + (1-p_x)·p_y``:

    >>> b = CircuitBuilder()
    >>> x1 = b.prod([b.var(0), b.const(1.0)])
    >>> x0 = b.prod([b.nvar(0), b.var(1)])
    >>> c = b.build(b.sum([x1, x0]),
    ...             leaf_vars=(EventVar("R", (1,)), EventVar("R", (2,))),
    ...             base_probs=[0.5, 0.5])
    >>> float(c.evaluate([[0.5, 0.5]])[0])
    0.75
    >>> values, grads = c.evaluate_with_gradients([[0.5, 0.5]])
    >>> grads[0].tolist()                    # ∂/∂p_x = 0.5, ∂/∂p_y = 0.5
    [0.5, 0.5]
    """

    __slots__ = (
        "ops",
        "args",
        "consts",
        "child_offsets",
        "children",
        "root",
        "n_leaves",
        "leaf_vars",
        "base_probs",
        "_groups",
        "_index_of_var",
    )

    def __init__(
        self,
        ops: np.ndarray,
        args: np.ndarray,
        consts: np.ndarray,
        child_offsets: np.ndarray,
        children: np.ndarray,
        root: int,
        leaf_vars: tuple[EventVar, ...],
        base_probs: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        self.ops = np.asarray(ops, dtype=np.int8)
        self.args = np.asarray(args, dtype=np.int64)
        self.consts = np.asarray(consts, dtype=np.float64)
        self.child_offsets = np.asarray(child_offsets, dtype=np.int64)
        self.children = np.asarray(children, dtype=np.int64)
        self.root = int(root)
        self.leaf_vars = tuple(leaf_vars)
        self.n_leaves = len(self.leaf_vars)
        self.base_probs = np.asarray(base_probs, dtype=np.float64)
        self._index_of_var = {v: i for i, v in enumerate(self.leaf_vars)}
        if validate:
            self.validate()
        self._groups = self._levelise()

    # -------------------------------------------------------------- structure
    def __len__(self) -> int:
        """Number of circuit nodes (constants and literals included)."""
        return len(self.ops)

    @property
    def n_edges(self) -> int:
        """Total child references across all gates."""
        return len(self.children)

    @property
    def depth(self) -> int:
        """Number of levelised evaluation steps of one batch sweep."""
        return len(self._groups)

    def node_children(self, node: int) -> np.ndarray:
        """Child node ids of *node* (empty for literals and constants)."""
        return self.children[
            self.child_offsets[node]: self.child_offsets[node + 1]
        ]

    def index_of(self, var: EventVar) -> int | None:
        """Leaf column of *var*, or ``None`` when the circuit ignores it."""
        return self._index_of_var.get(var)

    def rebind(
        self, leaf_vars: Sequence[EventVar], base_probs
    ) -> "ArithmeticCircuit":
        """The same circuit structure over a renamed set of leaf variables.

        The cache's hit path: a structurally-identical lineage from another
        answer (or another instance) reuses the node table and the level
        schedule — only the ``leaf index -> EventVar`` binding and the
        default probabilities change. Arrays are shared, not copied.
        """
        if len(leaf_vars) != self.n_leaves:
            raise CircuitError(
                f"rebind expects {self.n_leaves} leaf variables, "
                f"got {len(leaf_vars)}"
            )
        clone = ArithmeticCircuit.__new__(ArithmeticCircuit)
        clone.ops = self.ops
        clone.args = self.args
        clone.consts = self.consts
        clone.child_offsets = self.child_offsets
        clone.children = self.children
        clone.root = self.root
        clone.leaf_vars = tuple(leaf_vars)
        clone.n_leaves = self.n_leaves
        clone.base_probs = np.asarray(base_probs, dtype=np.float64)
        clone._index_of_var = {v: i for i, v in enumerate(clone.leaf_vars)}
        clone._groups = self._groups
        if clone.base_probs.shape != (clone.n_leaves,):
            raise CircuitError(
                f"rebind expects {clone.n_leaves} base probabilities, "
                f"got shape {clone.base_probs.shape}"
            )
        return clone

    def with_leaf_order(self, order: Sequence[EventVar]) -> "ArithmeticCircuit":
        """The same circuit with leaf columns permuted to *order*.

        *order* must be a permutation of :attr:`leaf_vars`. Literal nodes
        are re-pointed at the new columns; structure and semantics are
        unchanged. The cache uses this to normalise externally-compiled
        circuits (OBDD or tree layout) into canonical rank layout before
        storing, so rename-hits can rebind columns positionally.
        """
        order = tuple(order)
        if len(order) != self.n_leaves or set(order) != set(self.leaf_vars):
            raise CircuitError(
                "with_leaf_order needs a permutation of the circuit's leaves"
            )
        if order == self.leaf_vars:
            return self
        pos = {v: i for i, v in enumerate(order)}
        perm = np.array(
            [pos[v] for v in self.leaf_vars], dtype=np.int64
        )
        mask = (self.ops == OP_VAR) | (self.ops == OP_NVAR)
        new_args = self.args.copy()
        new_args[mask] = perm[self.args[mask]]
        new_base = np.empty(self.n_leaves, dtype=np.float64)
        new_base[perm] = self.base_probs
        return ArithmeticCircuit(
            self.ops,
            new_args,
            self.consts,
            self.child_offsets,
            self.children,
            self.root,
            order,
            new_base,
            validate=False,
        )

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Check the multilinearity invariants; raise :class:`CircuitError`.

        * array shapes are consistent and children precede their gate
          (topological order);
        * every PROD is decomposable: children's leaf supports are pairwise
          disjoint;
        * every SUM is a guarded Shannon split: exactly two PROD children
          whose supports share a decision leaf appearing as ``VAR`` under
          one branch and ``NVAR`` under the other (determinism);
        * every CMPL has exactly one child; literals index real leaves.
        """
        n = len(self.ops)
        if not (
            self.args.shape == (n,)
            and self.consts.shape == (n,)
            and self.child_offsets.shape == (n + 1,)
        ):
            raise CircuitError("inconsistent circuit array shapes")
        if not 0 <= self.root < n:
            raise CircuitError(f"root {self.root} outside 0..{n - 1}")
        if self.base_probs.shape != (self.n_leaves,):
            raise CircuitError(
                f"{self.n_leaves} leaves but base probabilities of shape "
                f"{self.base_probs.shape}"
            )
        supports: list[frozenset[int]] = []
        # literal guard of a node: (leaf, positive?) for VAR/NVAR, threaded
        # through single-literal products so SUM determinism is checkable.
        for v in range(n):
            op = self.ops[v]
            kids = self.node_children(v)
            if (kids >= v).any():
                raise CircuitError(f"gate {v} has a non-preceding child")
            if op in (OP_VAR, OP_NVAR):
                leaf = int(self.args[v])
                if not 0 <= leaf < self.n_leaves:
                    raise CircuitError(f"literal {v} indexes unknown leaf {leaf}")
                supports.append(frozenset((leaf,)))
            elif op == OP_CONST:
                supports.append(frozenset())
            elif op == OP_CMPL:
                if len(kids) != 1:
                    raise CircuitError(f"CMPL node {v} needs exactly one child")
                supports.append(supports[int(kids[0])])
            elif op == OP_PROD:
                if len(kids) == 0:
                    raise CircuitError(f"PROD node {v} has no children")
                union: set[int] = set()
                for c in kids.tolist():
                    sub = supports[c]
                    if union & sub:
                        raise CircuitError(
                            f"PROD node {v} is not decomposable: leaf "
                            f"{sorted(union & sub)[0]} appears under two "
                            f"children"
                        )
                    union |= sub
                supports.append(frozenset(union))
            elif op == OP_SUM:
                if len(kids) != 2:
                    raise CircuitError(
                        f"SUM node {v} must be a binary Shannon split, has "
                        f"{len(kids)} children"
                    )
                g0 = self._guards(int(kids[0]))
                g1 = self._guards(int(kids[1]))
                deterministic = any(
                    (leaf, not positive) in g1 for leaf, positive in g0
                )
                if not deterministic:
                    raise CircuitError(
                        f"SUM node {v} is not deterministic: children are "
                        f"not guarded by complementary literals of one leaf"
                    )
                supports.append(supports[int(kids[0])] | supports[int(kids[1])])
            else:
                raise CircuitError(f"node {v} has unknown op code {op}")

    def _guards(self, node: int) -> set[tuple[int, bool]]:
        """The ``(leaf, positive)`` literals syntactically guarding *node*:
        the node itself if it is a literal, or the direct literal children
        when it is a PROD. Used only by the determinism check."""
        op = self.ops[node]
        if op == OP_VAR:
            return {(int(self.args[node]), True)}
        if op == OP_NVAR:
            return {(int(self.args[node]), False)}
        if op == OP_PROD:
            out: set[tuple[int, bool]] = set()
            for c in self.node_children(node).tolist():
                if self.ops[c] == OP_VAR:
                    out.add((int(self.args[c]), True))
                elif self.ops[c] == OP_NVAR:
                    out.add((int(self.args[c]), False))
            return out
        return set()

    # ------------------------------------------------------------ levelising
    def _levelise(self) -> list[_Group]:
        n = len(self.ops)
        level = np.zeros(n, dtype=np.int64)
        offsets = self.child_offsets
        children = self.children
        ops = self.ops
        for v in range(n):
            kids = children[offsets[v]: offsets[v + 1]]
            if kids.size:
                level[v] = int(level[kids].max()) + 1
        groups: list[_Group] = []
        order = np.lexsort((np.arange(n), ops, level))
        # split the sorted node list at every (level, op) change
        sorted_levels = level[order]
        sorted_ops = ops[order]
        boundaries = np.flatnonzero(
            np.diff(sorted_levels) | np.diff(sorted_ops.astype(np.int64))
        ) + 1
        for chunk in np.split(order, boundaries):
            if chunk.size == 0:
                continue
            op = int(ops[chunk[0]])
            if op == OP_CONST:
                groups.append(
                    _Group(op, chunk, consts=self.consts[chunk])
                )
            elif op in (OP_VAR, OP_NVAR):
                groups.append(_Group(op, chunk, args=self.args[chunk]))
            elif op == OP_CMPL:
                kids = children[offsets[chunk]]
                groups.append(_Group(op, chunk, children=kids))
            else:  # SUM / PROD
                counts = (offsets[chunk + 1] - offsets[chunk])
                kid_list = [
                    children[offsets[v]: offsets[v + 1]] for v in chunk.tolist()
                ]
                flat = (
                    np.concatenate(kid_list)
                    if kid_list
                    else np.empty(0, dtype=np.int64)
                )
                starts = np.concatenate(
                    [np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]]
                )
                arity = (
                    int(counts[0])
                    if counts.size and (counts == counts[0]).all()
                    else 0
                )
                groups.append(
                    _Group(op, chunk, children=flat, starts=starts,
                           counts=counts, arity=arity)
                )
        return groups

    # ------------------------------------------------------------- evaluation
    def _probability_matrix(self, P) -> np.ndarray:
        P = np.asarray(P, dtype=np.float64)
        if P.ndim == 1:
            P = P[np.newaxis, :]
        if P.ndim != 2 or P.shape[1] != self.n_leaves:
            raise CircuitError(
                f"probability matrix of shape {P.shape} does not match "
                f"{self.n_leaves} circuit leaves"
            )
        return P

    def evaluate(self, P) -> np.ndarray:
        """One bottom-up sweep: root values for a ``(batch, n_leaves)``
        probability matrix (a 1-D vector is promoted to a batch of one).

        Returns a ``(batch,)`` float64 array. Each levelised step is one
        NumPy call over the whole batch, so the per-node interpreter cost is
        paid once regardless of how many scenarios ride along.
        """
        P = self._probability_matrix(P)
        values = self._forward(P)
        return values[self.root].copy()

    def _forward(self, P: np.ndarray) -> np.ndarray:
        """The full node table, *node-major*: a ``(n_nodes, batch)`` array.

        Node-major layout makes every gather/scatter of a levelised step a
        contiguous row copy (batch scenarios are adjacent in memory), and
        uniform-arity steps — the whole table, for OBDD-lowered circuits —
        take a reshape-and-reduce fast path instead of ``reduceat``.
        """
        batch = P.shape[0]
        PT = np.ascontiguousarray(P.T)
        values = np.empty((len(self.ops), batch), dtype=np.float64)
        for g in self._groups:
            if g.op == OP_CONST:
                values[g.nodes] = g.consts[:, np.newaxis]
            elif g.op == OP_VAR:
                values[g.nodes] = PT[g.args]
            elif g.op == OP_NVAR:
                values[g.nodes] = 1.0 - PT[g.args]
            elif g.op == OP_CMPL:
                values[g.nodes] = 1.0 - values[g.children]
            elif g.op == OP_SUM:
                if g.arity == 2:
                    values[g.nodes] = (
                        values[g.children[0::2]] + values[g.children[1::2]]
                    )
                else:
                    values[g.nodes] = np.add.reduceat(
                        values[g.children], g.starts, axis=0
                    )
            else:  # PROD
                if g.arity == 2:
                    values[g.nodes] = (
                        values[g.children[0::2]] * values[g.children[1::2]]
                    )
                elif g.arity:
                    values[g.nodes] = values[g.children].reshape(
                        len(g.nodes), g.arity, batch
                    ).prod(axis=1)
                else:
                    values[g.nodes] = np.multiply.reduceat(
                        values[g.children], g.starts, axis=0
                    )
        return values

    def evaluate_with_gradients(self, P) -> tuple[np.ndarray, np.ndarray]:
        """The bottom-up sweep plus its mirror top-down gradient sweep.

        Returns ``(values, gradients)`` with shapes ``(batch,)`` and
        ``(batch, n_leaves)``; ``gradients[s, i]`` is the exact partial
        derivative ``∂ Pr / ∂ p_i`` at scenario *s* — by multilinearity,
        precisely the what-if swing ``Pr(leaf i certain) - Pr(leaf i
        absent)`` under that scenario.
        """
        P = self._probability_matrix(P)
        values = self._forward(P)
        batch = P.shape[0]
        grad = np.zeros((len(self.ops), batch), dtype=np.float64)
        grad[self.root] = 1.0
        leaf_grad = np.zeros((self.n_leaves, batch), dtype=np.float64)
        for g in reversed(self._groups):
            if g.op == OP_CONST:
                continue
            if g.op == OP_VAR:
                np.add.at(leaf_grad, g.args, grad[g.nodes])
            elif g.op == OP_NVAR:
                np.add.at(leaf_grad, g.args, -grad[g.nodes])
            elif g.op == OP_CMPL:
                np.add.at(grad, g.children, -grad[g.nodes])
            elif g.op == OP_SUM:
                spread = np.repeat(grad[g.nodes], g.counts, axis=0)
                np.add.at(grad, g.children, spread)
            elif g.arity == 2:
                # binary PROD: each child's "product of the others" is just
                # its sibling's value — exact, zeros included.
                gn = grad[g.nodes]
                first, second = g.children[0::2], g.children[1::2]
                np.add.at(grad, first, gn * values[second])
                np.add.at(grad, second, gn * values[first])
            else:  # PROD: each child gets grad(node) * Π(other children)
                C = values[g.children]
                nonzero = np.where(C != 0.0, C, 1.0)
                nz_prod = np.multiply.reduceat(nonzero, g.starts, axis=0)
                zeros = np.add.reduceat(
                    (C == 0.0).astype(np.float64), g.starts, axis=0
                )
                nz_exp = np.repeat(nz_prod, g.counts, axis=0)
                z_exp = np.repeat(zeros, g.counts, axis=0)
                others = np.where(
                    z_exp == 0.0,
                    nz_exp / nonzero,
                    np.where((z_exp == 1.0) & (C == 0.0), nz_exp, 0.0),
                )
                # A subnormal product has lost relative precision, and the
                # division below amplifies that absolute rounding error by
                # 1/child — up to O(1) when the child itself is denormal
                # (e.g. 0.75 * 5e-324 rounds to 5e-324; dividing back yields
                # 1.0 instead of 0.75). Children are probabilities, so
                # partial products are nonincreasing and a segment whose
                # full product is normal never passed through the subnormal
                # range. Recompute the rare subnormal segments without
                # division via exclusive prefix/suffix products, whose error
                # stays at the (tiny) absolute scale of the product.
                under = (zeros == 0.0) & (
                    nz_prod < np.finfo(np.float64).tiny
                )
                if under.any():
                    for s_i, b_i in zip(*np.nonzero(under)):
                        lo = g.starts[s_i]
                        hi = lo + g.counts[s_i]
                        seg = C[lo:hi, b_i]
                        pre = np.concatenate(([1.0], np.cumprod(seg[:-1])))
                        suf = np.concatenate(
                            (np.cumprod(seg[:0:-1])[::-1], [1.0])
                        )
                        others[lo:hi, b_i] = pre * suf
                spread = np.repeat(grad[g.nodes], g.counts, axis=0)
                np.add.at(grad, g.children, spread * others)
        return values[self.root].copy(), np.ascontiguousarray(leaf_grad.T)

    # ---------------------------------------------------------- conveniences
    def probability(self, probs: Mapping[EventVar, float] | None = None) -> float:
        """Scalar evaluation under a variable-keyed probability map.

        Missing variables fall back to :attr:`base_probs`; ``None``
        evaluates the base vector. Mirror of :meth:`OBDD.probability` for
        drop-in use.
        """
        p = self.base_probs.copy()
        if probs:
            for var, value in probs.items():
                i = self._index_of_var.get(var)
                if i is not None:
                    p[i] = float(value)
        return float(self.evaluate(p[np.newaxis, :])[0])

    def op_counts(self) -> dict[str, int]:
        """``{op name: node count}`` summary, for reports and tests."""
        out: dict[str, int] = {}
        for op, count in zip(*np.unique(self.ops, return_counts=True)):
            out[_OP_NAMES[int(op)]] = int(count)
        return out

    def __repr__(self) -> str:
        return (
            f"<ArithmeticCircuit {len(self)} nodes / {self.n_edges} edges, "
            f"{self.n_leaves} leaves, depth {self.depth}>"
        )


class CircuitBuilder:
    """Incremental, hash-consing builder of :class:`ArithmeticCircuit`.

    Structurally identical sub-circuits collapse to one node (the unique
    table of OBDD construction, carried over), so compilers can emit
    redundantly and still produce compact tables. Node ids are dense ints in
    creation order; children always precede parents by construction.

    Examples
    --------
    >>> b = CircuitBuilder()
    >>> a, c = b.var(0), b.var(0)
    >>> a == c                                   # hash-consed
    True
    >>> len(b)
    1
    """

    __slots__ = ("_ops", "_args", "_consts", "_children", "_memo")

    def __init__(self) -> None:
        self._ops: list[int] = []
        self._args: list[int] = []
        self._consts: list[float] = []
        self._children: list[tuple[int, ...]] = []
        self._memo: dict[tuple, int] = {}

    def __len__(self) -> int:
        return len(self._ops)

    def _node(self, key: tuple, op: int, arg: int, const: float,
              children: tuple[int, ...]) -> int:
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        self._ops.append(op)
        self._args.append(arg)
        self._consts.append(const)
        self._children.append(children)
        node = len(self._ops) - 1
        self._memo[key] = node
        return node

    def const(self, value: float) -> int:
        """A constant node (OBDD terminals are ``const(0)`` / ``const(1)``)."""
        return self._node(("c", float(value)), OP_CONST, -1, float(value), ())

    def var(self, leaf: int) -> int:
        """The literal ``p_leaf``."""
        return self._node(("v", leaf), OP_VAR, int(leaf), 0.0, ())

    def nvar(self, leaf: int) -> int:
        """The literal ``1 - p_leaf``."""
        return self._node(("n", leaf), OP_NVAR, int(leaf), 0.0, ())

    def sum(self, children: Sequence[int]) -> int:
        """A deterministic (Shannon) sum of exactly two guarded branches."""
        kids = tuple(int(c) for c in children)
        return self._node(("s",) + kids, OP_SUM, -1, 0.0, kids)

    def prod(self, children: Sequence[int]) -> int:
        """A decomposable product; order is canonicalised for consing."""
        kids = tuple(sorted(int(c) for c in children))
        if len(kids) == 1:
            return kids[0]
        return self._node(("p",) + kids, OP_PROD, -1, 0.0, kids)

    def cmpl(self, child: int) -> int:
        """The complement ``1 - child``; ``cmpl(cmpl(x))`` folds to ``x``."""
        child = int(child)
        if self._ops[child] == OP_CMPL:
            return self._children[child][0]
        return self._node(("m", child), OP_CMPL, -1, 0.0, (child,))

    def build(
        self,
        root: int,
        leaf_vars: Sequence[EventVar],
        base_probs,
        *,
        validate: bool = True,
    ) -> ArithmeticCircuit:
        """Freeze the table into a validated :class:`ArithmeticCircuit`."""
        offsets = np.zeros(len(self._ops) + 1, dtype=np.int64)
        np.cumsum([len(c) for c in self._children], out=offsets[1:])
        flat = (
            np.concatenate([np.asarray(c, dtype=np.int64)
                            for c in self._children if c])
            if any(self._children)
            else np.empty(0, dtype=np.int64)
        )
        return ArithmeticCircuit(
            np.asarray(self._ops, dtype=np.int8),
            np.asarray(self._args, dtype=np.int64),
            np.asarray(self._consts, dtype=np.float64),
            offsets,
            flat,
            root,
            tuple(leaf_vars),
            np.asarray(base_probs, dtype=np.float64),
            validate=validate,
        )
