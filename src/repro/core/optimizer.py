"""Plan selection: Section 8's open problem, made executable.

The paper evaluates fixed left-deep plans and leaves open "how to choose a
query plan that minimizes the size or the treewidth of the output network",
noting the algorithm is very sensitive to it. This module provides a
practical optimiser:

* enumerate left-deep join orders, preferring orders whose every prefix stays
  connected (cross products make *every* uncertain tuple offending — the
  join-order ablation bench shows a 10-100x network blow-up);
* cost each order by actually running the — extensional-dominated, hence
  cheap — plan evaluation *without final inference*, recording the offending
  count, network size, and a treewidth estimate of the resulting network;
* return the best order under the lexicographic cost
  ``(offending, width estimate, network size, intermediate tuples)``.

Evaluation-based costing is exact where estimation formulas would guess: the
offending set of a later join depends on earlier operators' output, which is
precisely the data-dependence that makes the problem open.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.executor import EvaluationResult, PartialLineageEvaluator
from repro.core.inference import induced_width, network_factors
from repro.core.plan import Plan, left_deep_plan
from repro.db.database import ProbabilisticDatabase
from repro.errors import PlanError
from repro.query.syntax import ConjunctiveQuery


@dataclass(frozen=True)
class PlanChoice:
    """One costed join order."""

    order: tuple[str, ...]
    offending: int
    width_estimate: int
    network_nodes: int
    intermediate_tuples: int

    @property
    def cost(self) -> tuple[int, int, int, int]:
        """Lexicographic cost: offending first (the paper's safety distance)."""
        return (
            self.offending,
            self.width_estimate,
            self.network_nodes,
            self.intermediate_tuples,
        )


def connected_prefix_orders(query: ConjunctiveQuery):
    """Left-deep orders whose every prefix is variable-connected.

    Head variables do not connect atoms (they are fixed per evaluation), so
    e.g. ``R1, R2`` is *not* a connected prefix of P1 even though both atoms
    mention ``h``. Falls back to all permutations for disconnected queries.
    """
    head = {v.name for v in query.head}
    vars_of = {
        a.relation: {v.name for v in a.variables()} - head for a in query.atoms
    }
    names = [a.relation for a in query.atoms]

    def extend(prefix: tuple[str, ...], seen: set[str]):
        if len(prefix) == len(names):
            yield prefix
            return
        for name in names:
            if name in prefix:
                continue
            if seen and not (vars_of[name] & seen):
                continue
            yield from extend(prefix + (name,), seen | vars_of[name])

    produced = False
    for order in extend((), set()):
        produced = True
        yield order
    if not produced:
        yield from itertools.permutations(names)


def cost_order(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    order: tuple[str, ...],
    *,
    engine: str = "columnar",
    evaluator: PartialLineageEvaluator | None = None,
) -> PlanChoice:
    """Evaluate the order's plan (no inference) and extract its cost.

    *engine* selects the operator backend; pass a shared *evaluator* when
    costing many orders so the columnar engine reuses its base-relation
    encodings across evaluations.
    """
    if evaluator is None:
        evaluator = PartialLineageEvaluator(db, engine=engine)
    result = evaluator.evaluate(left_deep_plan(query, list(order)))
    return _choice_from_result(order, result)


def _choice_from_result(
    order: tuple[str, ...], result: EvaluationResult
) -> PlanChoice:
    net = result.network
    if len(net) > 1:
        width = induced_width(network_factors(net))
    else:
        width = 0
    return PlanChoice(
        order=tuple(order),
        offending=result.offending_count,
        width_estimate=width,
        network_nodes=len(net),
        intermediate_tuples=sum(s.output_size for s in result.stats),
    )


def estimate_order(
    query: ConjunctiveQuery, db: ProbabilisticDatabase, order: tuple[str, ...]
) -> PlanChoice:
    """Statistics-only costing: no evaluation, no network.

    Uses fanout profiles (Proposition 3.2's predicate on base relations) to
    count the *first* join's offending tuples exactly, and charges later
    joins optimistically by their base-side uncertain-multi statistics. The
    width/size fields are left at 0 — this mode ranks orders by predicted
    conditioning only, trading the exactness of :func:`cost_order` for
    constant-time costing on large instances.
    """
    from repro.db.statistics import fanout_profile

    atom_by_name = {a.relation: a for a in query.atoms}

    def join_vars(done, name: str) -> tuple[str, ...]:
        # exactly the attributes left_deep_plan joins on: shared variables
        # between the prefix and the fresh atom (head variables included)
        prior = {v.name for d in done for v in atom_by_name[d].variables()}
        mine = {v.name for v in atom_by_name[name].variables()}
        return tuple(sorted(prior & mine))

    def base_key(name: str, names: tuple[str, ...]) -> tuple[str, ...]:
        atom = atom_by_name[name]
        rel = db[name]
        cols = []
        for var in names:
            for i, t in enumerate(atom.terms):
                if getattr(t, "name", None) == var:
                    cols.append(rel.schema.attributes[i])
                    break
        return tuple(cols)

    offending = 0
    done: list[str] = []
    for i, name in enumerate(order):
        if i > 0:
            shared = join_vars(done, name)
            if shared:
                # the fresh (base) side's exact worst case against any left
                profile = fanout_profile(db[name], base_key(name, shared))
                offending += profile.uncertain_multi if i > 1 else 0
                if i == 1:
                    left = done[0]
                    lprof = fanout_profile(db[name], base_key(name, shared))
                    lidx = db[left].schema.indices_of(
                        base_key(left, join_vars([name], left))
                    )
                    offending += sum(
                        1
                        for row, p in db[left].items()
                        if p < 1.0
                        and lprof.expected_partners(
                            tuple(row[j] for j in lidx)
                        )
                        > 1
                    )
                    rprof = fanout_profile(
                        db[left], base_key(left, join_vars([name], left))
                    )
                    ridx = db[name].schema.indices_of(base_key(name, shared))
                    offending += sum(
                        1
                        for row, p in db[name].items()
                        if p < 1.0
                        and rprof.expected_partners(
                            tuple(row[j] for j in ridx)
                        )
                        > 1
                    )
            else:
                # cross product: every uncertain tuple of the smaller side
                offending += min(
                    len(db[name].uncertain_rows()),
                    sum(len(db[d].uncertain_rows()) for d in done),
                )
        done.append(name)
    return PlanChoice(
        order=tuple(order),
        offending=offending,
        width_estimate=0,
        network_nodes=0,
        intermediate_tuples=0,
    )


def choose_join_order(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    *,
    max_orders: int = 120,
    mode: str = "evaluate",
    engine: str = "columnar",
) -> PlanChoice:
    """Pick the cheapest left-deep join order for *query* on *db*.

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> _ = db.add_relation("S", ("A", "B"), {(1, 1): 0.5, (1, 2): 0.5})
    >>> _ = db.add_relation("T", ("B",), {(1,): 1.0, (2,): 1.0})
    >>> choice = choose_join_order(parse_query("R(x), S(x,y), T(y)"), db)
    >>> choice.order[0] in ("T", "S")   # conditioning R first is avoidable
    True

    ``mode="estimate"`` ranks orders from base-relation statistics only
    (constant cost per order, approximate); the default ``"evaluate"`` runs
    the cheap extensional evaluation per order (exact offending counts).
    *engine* picks the operator backend for ``"evaluate"`` costing; one
    evaluator is shared across all candidate orders, so the columnar engine
    encodes each base relation only once for the whole search.
    """
    if mode not in ("evaluate", "estimate"):
        raise PlanError(f"unknown optimiser mode {mode!r}")
    if mode == "evaluate":
        shared = PartialLineageEvaluator(db, engine=engine)

        def cost(q, d, order):
            return cost_order(q, d, order, evaluator=shared)
    else:
        cost = estimate_order
    best: PlanChoice | None = None
    for i, order in enumerate(connected_prefix_orders(query)):
        if i >= max_orders:
            break
        choice = cost(query, db, tuple(order))
        if best is None or choice.cost < best.cost:
            best = choice
    if best is None:
        raise PlanError(f"no left-deep order found for {query}")
    return best


def optimized_plan(
    query: ConjunctiveQuery,
    db: ProbabilisticDatabase,
    *,
    max_orders: int = 120,
    engine: str = "columnar",
) -> Plan:
    """The left-deep plan for the order chosen by :func:`choose_join_order`."""
    return left_deep_plan(
        query,
        list(
            choose_join_order(
                query, db, max_orders=max_orders, engine=engine
            ).order
        ),
    )
