"""Exact inference on And-Or networks.

Theorem 5.17 of the paper computes marginals in ``O(|G| · 16^tw(Ḡ))`` given a
tree decomposition of the network's undirected graph. We implement the
standard, practically equivalent pipeline:

1. **Decompose** every noisy gate into a chain of at-most-ternary factors
   (the ``D(G)`` construction of Section 4.3.2, exploiting decomposability
   [22]): an Or node ``v`` with parents ``w1..wk`` becomes auxiliary variables
   ``a1 = noisy(w1)``, ``ai = ai-1 ∨ noisy(wi)``, with ``v = ak`` — and
   symmetrically for And. Every factor then touches at most 3 variables.
2. **Prune barren nodes**: a marginal over targets depends only on the
   targets' ancestors in the DAG (descendants integrate to 1).
3. **Eliminate** variables greedily in min-fill order, multiplying and
   summing out factor tables (numpy arrays over {0,1} axes).

The running time is exponential only in the treewidth of the decomposed,
moralised graph — within a small constant of the paper's bound — and linear
in everything else.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.network import EPSILON, AndOrNetwork, NodeKind
from repro.errors import CapacityError, InferenceError
from repro.obs.trace import span as _span

#: Hard cap on intermediate factor arity: 2**22 floats ≈ 32 MB.
MAX_FACTOR_VARS = 22


@dataclass
class Factor:
    """A table over Boolean variables: ``table.shape == (2,) * len(vars)``."""

    vars: tuple[int, ...]
    table: np.ndarray

    def __post_init__(self) -> None:
        if self.table.shape != (2,) * len(self.vars):
            raise InferenceError(
                f"factor table shape {self.table.shape} does not match "
                f"{len(self.vars)} variables"
            )


def _expand(factor: Factor, out_vars: tuple[int, ...]) -> np.ndarray:
    """View the factor's table over *out_vars* (a superset), via broadcasting."""
    order = {v: i for i, v in enumerate(out_vars)}
    perm = sorted(range(len(factor.vars)), key=lambda i: order[factor.vars[i]])
    t = np.transpose(factor.table, perm)
    shape = tuple(2 if v in set(factor.vars) else 1 for v in out_vars)
    return t.reshape(shape)


def multiply(f1: Factor, f2: Factor) -> Factor:
    """Pointwise product of two factors over the union of their variables."""
    out_vars = tuple(dict.fromkeys(f1.vars + f2.vars))
    if len(out_vars) > MAX_FACTOR_VARS:
        raise InferenceError(
            f"intermediate factor over {len(out_vars)} variables exceeds the "
            f"budget of {MAX_FACTOR_VARS}; the network's treewidth is too high "
            f"for exact inference (the paper's Fig. 6 phase transition)"
        )
    return Factor(out_vars, _expand(f1, out_vars) * _expand(f2, out_vars))


def sum_out(factor: Factor, var: int) -> Factor:
    """Marginalise *var* away."""
    axis = factor.vars.index(var)
    return Factor(
        factor.vars[:axis] + factor.vars[axis + 1 :],
        factor.table.sum(axis=axis),
    )


def reduce_evidence(factor: Factor, evidence: Mapping[int, int]) -> Factor:
    """Slice the factor at the observed values of any of its variables."""
    f = factor
    for var, value in evidence.items():
        if var in f.vars:
            axis = f.vars.index(var)
            f = Factor(
                f.vars[:axis] + f.vars[axis + 1 :],
                np.take(f.table, value, axis=axis),
            )
    return f


# ----------------------------------------------------------- decomposition
def _leaf_factor(var: int, p: float) -> Factor:
    return Factor((var,), np.array([1.0 - p, p]))


def _noisy_unary(parent: int, out: int, q: float) -> Factor:
    """``Pr(out=1 | parent) = q * parent`` (single-parent And and Or agree)."""
    t = np.empty((2, 2))
    for w in (0, 1):
        p1 = q * w
        t[w, 0], t[w, 1] = 1.0 - p1, p1
    return Factor((parent, out), t)


def _noisy_step(kind: NodeKind, prev: int, parent: int, out: int, q: float) -> Factor:
    """Chain step: ``out = prev ∘ noisy(parent)`` for ``∘`` ∈ {∨, ∧}."""
    t = np.empty((2, 2, 2))
    for a in (0, 1):
        for w in (0, 1):
            nz = q * w
            p1 = a * nz if kind is NodeKind.AND else 1.0 - (1.0 - a) * (1.0 - nz)
            t[a, w, 0], t[a, w, 1] = 1.0 - p1, p1
    return Factor((prev, parent, out), t)


def network_factors(
    net: AndOrNetwork, relevant: Iterable[int] | None = None
) -> list[Factor]:
    """Ternary-decomposed factors for (a relevant subset of) the network.

    Auxiliary chain variables get ids beyond ``len(net)``. When *relevant* is
    given, only those nodes (which must be ancestor-closed) are encoded.
    """
    nodes = sorted(relevant) if relevant is not None else list(net.nodes())
    aux = itertools.count(len(net))
    factors: list[Factor] = []
    for v in nodes:
        kind = net.kind(v)
        if kind is NodeKind.LEAF:
            factors.append(_leaf_factor(v, net.leaf_probability(v)))
            continue
        parents = net.parents(v)
        if len(parents) == 1:
            w, q = parents[0]
            factors.append(_noisy_unary(w, v, q))
            continue
        prev = None
        for i, (w, q) in enumerate(parents):
            last = i == len(parents) - 1
            if i == 0:
                prev = next(aux)
                factors.append(_noisy_unary(w, prev, q))
            else:
                out = v if last else next(aux)
                factors.append(_noisy_step(kind, prev, w, out, q))
                prev = out
    return factors


# -------------------------------------------------------------- elimination
def min_fill_order(
    factors: Sequence[Factor], keep: Iterable[int] = ()
) -> list[int]:
    """Greedy min-fill elimination order over the factors' interaction graph.

    Variables in *keep* are not eliminated. Ties break toward smaller degree,
    then smaller id (determinism).
    """
    keep_set = set(keep)
    adj: dict[int, set[int]] = {}
    for f in factors:
        for v in f.vars:
            adj.setdefault(v, set()).update(w for w in f.vars if w != v)
    order: list[int] = []
    candidates = set(adj) - keep_set
    while candidates:
        def fill_cost(v: int) -> tuple[int, int, int]:
            nbrs = [w for w in adj[v] if w in adj]
            missing = 0
            for i, a in enumerate(nbrs):
                for b in nbrs[i + 1 :]:
                    if b not in adj[a]:
                        missing += 1
            return (missing, len(nbrs), v)

        v = min(candidates, key=fill_cost)
        nbrs = [w for w in adj[v] if w in adj]
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1 :]:
                adj[a].add(b)
                adj[b].add(a)
        for w in nbrs:
            adj[w].discard(v)
        del adj[v]
        candidates.discard(v)
        order.append(v)
    return order


def eliminate(
    factors: Sequence[Factor],
    keep: Iterable[int] = (),
    order: Sequence[int] | None = None,
    budget=None,
) -> Factor:
    """Variable elimination: sum out everything not in *keep*.

    Returns a single factor over (a subset of) *keep*; with an empty *keep*
    the result is a scalar factor holding the requested probability mass.
    An optional :class:`~repro.resilience.QueryBudget` is checkpointed once
    per eliminated variable, so a deadline interrupts the pass between
    factor products rather than after the whole elimination.
    """
    keep_set = set(keep)
    if order is None:
        order = min_fill_order(factors, keep_set)
    buckets: list[Factor] = list(factors)
    for var in order:
        if budget is not None:
            budget.checkpoint("eliminate")
        involved = [f for f in buckets if var in f.vars]
        if not involved:
            continue
        rest = [f for f in buckets if var not in f.vars]
        prod = involved[0]
        for f in involved[1:]:
            prod = multiply(prod, f)
        buckets = rest + [sum_out(prod, var)]
    result = Factor((), np.array(1.0))
    for f in buckets:
        result = multiply(result, f)
    return result


def induced_width(factors: Sequence[Factor], keep: Iterable[int] = ()) -> int:
    """Width of the greedy min-fill order (treewidth upper bound minus 1).

    A cheap proxy for the paper's treewidth measurements: the largest factor
    created during elimination has ``width + 1`` variables.
    """
    keep_set = set(keep)
    adj: dict[int, set[int]] = {}
    for f in factors:
        for v in f.vars:
            adj.setdefault(v, set()).update(w for w in f.vars if w != v)
    width = 0
    candidates = set(adj) - keep_set
    while candidates:
        v = min(candidates, key=lambda u: (len(adj[u]), u))
        nbrs = list(adj[v])
        width = max(width, len(nbrs))
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1 :]:
                adj[a].add(b)
                adj[b].add(a)
        for w in nbrs:
            adj[w].discard(v)
        del adj[v]
        candidates.discard(v)
    return width


# ------------------------------------------------------------------ queries
#: ``auto`` uses variable elimination when the estimated elimination width is
#: at most this; wider networks go to the DPLL path, whose context-specific
#: decompositions beat pure treewidth methods on the benchmark workloads.
VE_WIDTH_LIMIT = 6

#: Hard ceiling for the VE fallback when DNF compilation is infeasible.
VE_WIDTH_HARD_LIMIT = 18


def assignment_probability(
    net: AndOrNetwork, assignment: Mapping[int, int]
) -> float:
    """``N^0(y)``: the marginal probability of a partial assignment (Sec 5.1)."""
    if assignment.get(EPSILON, 1) == 0:
        return 0.0
    relevant = net.ancestors(assignment)
    relevant.add(EPSILON)
    factors = [reduce_evidence(f, assignment) for f in network_factors(net, relevant)]
    return float(eliminate(factors).table)


def _dpll_marginal(
    net: AndOrNetwork,
    node: int,
    max_calls: int = 5_000_000,
    cache=None,
    budget=None,
) -> float:
    """``Pr(node=1)`` by compiling the partial-lineage DNF and running the
    exact DPLL solver — the structure-exploiting path for high-treewidth
    networks (the paper: "on this we run any general purpose probabilistic
    inference algorithm")."""
    from repro.core.compile import partial_lineage_dnf
    from repro.lineage.exact import dnf_probability

    dnf, probs = partial_lineage_dnf(net, node)
    return dnf_probability(
        dnf, probs, max_calls=max_calls, cache=cache, budget=budget
    )


def compute_marginal(
    net: AndOrNetwork,
    node: int,
    engine: str = "auto",
    dpll_max_calls: int = 5_000_000,
    cache=None,
    budget=None,
) -> float:
    """``Pr(node = 1)`` exactly.

    ``engine`` selects the inference path:

    * ``"ve"`` — variable elimination on the decomposed factors, exponential
      in the network treewidth (Theorem 5.17's counterpart);
    * ``"dpll"`` — compile the partial-lineage DNF and run exact DPLL, which
      exploits context-specific decompositions treewidth cannot see;
    * ``"auto"`` (default) — variable elimination on narrow networks (width
      at most :data:`VE_WIDTH_LIMIT`, e.g. hash-collapsed tree networks),
      DPLL beyond; if DNF compilation itself is infeasible, fall back to
      variable elimination up to :data:`VE_WIDTH_HARD_LIMIT`.

    *cache* is an optional shared :class:`~repro.perf.SubformulaCache` for
    the DPLL path, letting repeated marginal computations (e.g. one per
    answer tuple) reuse subformula probabilities across nodes. *budget* is
    an optional :class:`~repro.resilience.QueryBudget` checkpointed
    cooperatively by both paths (its ``max_width`` also overrides
    :data:`VE_WIDTH_LIMIT` for the auto engine choice).
    """
    if node == EPSILON:
        return 1.0
    with _span("compute_marginal", engine=engine) as sp:
        if engine == "dpll":
            sp.annotate(path="dpll")
            return _dpll_marginal(net, node, dpll_max_calls, cache, budget)
        if engine not in ("auto", "ve"):
            raise ValueError(f"unknown inference engine {engine!r}")
        if budget is not None:
            budget.checkpoint("compute_marginal")
        relevant = net.ancestors([node])
        relevant.add(EPSILON)
        factors = network_factors(net, relevant)
        width_limit = (
            VE_WIDTH_LIMIT if budget is None else budget.width_limit(VE_WIDTH_LIMIT)
        )
        if (
            engine == "auto"
            and induced_width(factors, keep={node}) > width_limit
        ):
            try:
                sp.annotate(path="dpll")
                return _dpll_marginal(net, node, dpll_max_calls, cache, budget)
            except CapacityError:
                pass  # DNF blow-up: retry below with variable elimination
        sp.annotate(path="ve")
        sp.add("factors", len(factors))
        reduced = [reduce_evidence(f, {node: 1}) for f in factors]
        return float(eliminate(reduced, budget=budget).table)


def compute_marginals(
    net: AndOrNetwork,
    nodes: Iterable[int],
    engine: str = "auto",
    dpll_max_calls: int = 5_000_000,
    cache=None,
) -> dict[int, float]:
    """Marginals ``Pr(v=1)`` for several nodes, sharing ancestor pruning.

    Each node's computation touches only its own ancestors, so disconnected
    parts of the network (e.g. per-head-value components) never meet. A
    shared *cache* (see :func:`compute_marginal`) lets the per-node DPLL
    solves reuse each other's subformula results.
    """
    out: dict[int, float] = {}
    for v in dict.fromkeys(nodes):
        out[v] = compute_marginal(net, v, engine, dpll_max_calls, cache)
    return out
