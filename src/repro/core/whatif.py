"""What-if (sensitivity) analysis over offending tuples.

A pay-off of partial lineage the paper's framing makes natural: after one
evaluation, the answer probability is a *function of the offending tuples
only* — every other tuple has been folded into constants. Compiling each
answer's partial-lineage DNF into an OBDD (reusable under changed variable
probabilities, [17]) makes "what if this dirty tuple's probability were p?"
an O(OBDD) lookup instead of a re-evaluation:

* :class:`WhatIfAnalysis` compiles the answers once;
* :meth:`WhatIfAnalysis.probability` re-evaluates an answer under overridden
  offending-tuple probabilities;
* :meth:`WhatIfAnalysis.sensitivities` ranks the offending tuples by the
  swing ``Pr(answer | tuple certain) - Pr(answer | tuple absent)`` — which,
  by linearity of the multilinear lineage polynomial in each variable, is the
  answer's exact derivative in that tuple's probability.

Only *offending* tuples can be overridden: non-offending tuples were folded
into numeric constants during evaluation (that folding is the method's whole
point), so changing them requires re-evaluating the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.compile import partial_lineage_dnf
from repro.core.executor import EvaluationResult, OffendingTuple
from repro.core.network import EPSILON
from repro.db.schema import Row
from repro.errors import ReproError
from repro.lineage.dnf import EventVar
from repro.lineage.obdd import OBDD, build_obdd


@dataclass(frozen=True)
class Sensitivity:
    """Effect of one offending tuple on one answer."""

    tuple: OffendingTuple
    base_probability: float
    when_absent: float
    when_certain: float

    @property
    def swing(self) -> float:
        """``Pr(answer | present) - Pr(answer | absent)``: the exact partial
        derivative of the answer in this tuple's probability."""
        return self.when_certain - self.when_absent


class WhatIfAnalysis:
    """Compiled what-if evaluation for one result's answers.

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> from repro.core.executor import PartialLineageEvaluator
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> _ = db.add_relation("S", ("A", "B"), {(1, 1): 0.5, (1, 2): 0.5})
    >>> _ = db.add_relation("T", ("B",), {(1,): 1.0, (2,): 1.0})
    >>> result = PartialLineageEvaluator(db).evaluate_query(
    ...     parse_query("q() :- R(x), S(x,y), T(y)"), ["R", "S", "T"])
    >>> analysis = WhatIfAnalysis(result)
    >>> round(analysis.probability(()), 6)                    # base: 0.375
    0.375
    >>> off = result.conditioned_tuples[0]                    # R's tuple (1,)
    >>> round(analysis.probability((), {off: 1.0}), 6)        # R(1) certain
    0.75
    """

    def __init__(self, result: EvaluationResult) -> None:
        self.result = result
        self._node_of: dict[OffendingTuple, int] = {
            off: off.node for off in result.conditioned_tuples
        }
        self._var_of_node: dict[int, EventVar] = {}
        self._obdds: dict[int, tuple[OBDD, dict[EventVar, float]]] = {}
        self._rows: dict[Row, tuple[int, float]] = {}
        for row, l, p in result.relation.items():
            self._rows[row] = (l, p)
            if l != EPSILON and l not in self._obdds:
                dnf, probs = partial_lineage_dnf(result.network, l)
                self._obdds[l] = (build_obdd(dnf), probs)

    # ------------------------------------------------------------ resolution
    def _resolve(self, key) -> int:
        """Resolve an override key (OffendingTuple, node id, or (source, row))
        to a network node id."""
        if isinstance(key, OffendingTuple):
            return key.node
        if isinstance(key, int):
            return key
        if isinstance(key, tuple) and len(key) == 2:
            matches = [
                off.node
                for off in self.result.conditioned_tuples
                if off.source == key[0] and off.row == tuple(key[1])
            ]
            if len(matches) == 1:
                return matches[0]
            if not matches:
                raise ReproError(
                    f"{key!r} is not an offending tuple of this evaluation; "
                    f"only offending tuples can be overridden (others were "
                    f"folded into constants)"
                )
            raise ReproError(f"{key!r} matches several conditioned tuples")
        raise ReproError(f"cannot resolve override key {key!r}")

    def _variable_for(self, node: int) -> EventVar:
        """The compiled-DNF variable carrying the tuple's probability.

        Conditioning an ε-row creates a leaf; conditioning a symbolic row
        creates a single-parent noisy And gate whose *edge* holds the
        probability (see ``operators.condition``).
        """
        from repro.core.network import NodeKind

        if self.result.network.kind(node) is NodeKind.LEAF:
            return EventVar("leaf", (node,))
        return EventVar("edge", (node, 0))

    # ------------------------------------------------------------- evaluation
    def probability(self, row: Row, overrides: Mapping | None = None) -> float:
        """Probability of answer *row* with offending-tuple overrides applied.

        Override keys may be :class:`OffendingTuple` instances (from
        ``result.conditioned_tuples``), raw node ids, or ``(source, row)``
        pairs; values are the hypothetical probabilities.
        """
        row = tuple(row)
        if row not in self._rows:
            raise ReproError(f"{row!r} is not an answer of this evaluation")
        l, p = self._rows[row]
        if l == EPSILON:
            return p
        obdd, base_probs = self._obdds[l]
        if not overrides:
            return p * obdd.probability(base_probs)
        probs = dict(base_probs)
        for key, value in overrides.items():
            node = self._resolve(key)
            var = self._variable_for(node)
            if var not in probs:
                # the tuple offends elsewhere; this answer does not depend on it
                continue
            if not 0.0 <= float(value) <= 1.0:
                raise ReproError(f"override probability {value} outside [0, 1]")
            probs[var] = float(value)
        return p * obdd.probability(probs)

    def sensitivities(self, row: Row) -> list[Sensitivity]:
        """Offending tuples ranked by their swing on answer *row*."""
        base = self.probability(row)
        out = []
        for off in self.result.conditioned_tuples:
            absent = self.probability(row, {off: 0.0})
            certain = self.probability(row, {off: 1.0})
            if absent != certain:
                out.append(Sensitivity(off, base, absent, certain))
        out.sort(key=lambda s: -abs(s.swing))
        return out
