"""What-if (sensitivity) analysis over offending tuples.

A pay-off of partial lineage the paper's framing makes natural: after one
evaluation, the answer probability is a *function of the offending tuples
only* — every other tuple has been folded into constants. Compiling each
answer's partial-lineage DNF into an OBDD (reusable under changed variable
probabilities, [17]) makes "what if this dirty tuple's probability were p?"
an O(OBDD) lookup instead of a re-evaluation:

* :class:`WhatIfAnalysis` compiles the answers once;
* :meth:`WhatIfAnalysis.probability` re-evaluates an answer under overridden
  offending-tuple probabilities;
* :meth:`WhatIfAnalysis.sensitivities` ranks the offending tuples by the
  swing ``Pr(answer | tuple certain) - Pr(answer | tuple absent)`` — which,
  by linearity of the multilinear lineage polynomial in each variable, is the
  answer's exact derivative in that tuple's probability.

The scalar OBDD walk is the *oracle*; the served path is the
:mod:`repro.circuit` engine. Each answer's OBDD lowers once into an
arithmetic circuit (cached structurally when a
:class:`~repro.circuit.CircuitCache` is attached), and then

* :meth:`WhatIfAnalysis.probability_batch` re-scores a whole batch of
  scenarios in one vectorized bottom-up sweep, and
* :meth:`WhatIfAnalysis.sensitivities` reads every tuple's exact swing off
  one gradient sweep (``method="circuit"``, the default when available)
  instead of 2·k scalar OBDD walks (``method="obdd"``, kept as the oracle).

Only *offending* tuples can be overridden: non-offending tuples were folded
into numeric constants during evaluation (that folding is the method's whole
point), so changing them requires re-evaluating the plan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.circuit.ac import ArithmeticCircuit
from repro.circuit.compile import compile_obdd
from repro.circuit.rescore import ScenarioBatch, rescore, rescore_with_gradients
from repro.core.compile import partial_lineage_dnf
from repro.core.executor import EvaluationResult, OffendingTuple
from repro.core.network import EPSILON
from repro.db.schema import Row
from repro.errors import ReproError
from repro.lineage.dnf import DNF, EventVar
from repro.lineage.obdd import OBDD, build_obdd


@dataclass(frozen=True)
class Sensitivity:
    """Effect of one offending tuple on one answer."""

    tuple: OffendingTuple
    base_probability: float
    when_absent: float
    when_certain: float

    @property
    def swing(self) -> float:
        """``Pr(answer | present) - Pr(answer | absent)``: the exact partial
        derivative of the answer in this tuple's probability."""
        return self.when_certain - self.when_absent


class WhatIfAnalysis:
    """Compiled what-if evaluation for one result's answers.

    Parameters
    ----------
    result:
        The evaluation to analyse.
    circuit_cache:
        Optional :class:`~repro.circuit.CircuitCache`; compiled circuits of
        rename-equivalent lineages are shared through it across analyses.
    budget:
        Optional :class:`~repro.resilience.QueryBudget`, checkpointed during
        circuit compilation.

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> from repro.core.executor import PartialLineageEvaluator
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> _ = db.add_relation("S", ("A", "B"), {(1, 1): 0.5, (1, 2): 0.5})
    >>> _ = db.add_relation("T", ("B",), {(1,): 1.0, (2,): 1.0})
    >>> result = PartialLineageEvaluator(db).evaluate_query(
    ...     parse_query("q() :- R(x), S(x,y), T(y)"), ["R", "S", "T"])
    >>> analysis = WhatIfAnalysis(result)
    >>> round(analysis.probability(()), 6)                    # base: 0.375
    0.375
    >>> off = result.conditioned_tuples[0]                    # R's tuple (1,)
    >>> round(analysis.probability((), {off: 1.0}), 6)        # R(1) certain
    0.75
    >>> analysis.probability_batch((), [{off: 0.0}, {off: 1.0}]).tolist()
    [0.0, 0.75]
    """

    def __init__(
        self,
        result: EvaluationResult,
        *,
        circuit_cache=None,
        budget=None,
    ) -> None:
        self.result = result
        self._circuit_cache = circuit_cache
        self._budget = budget
        self._node_of: dict[OffendingTuple, int] = {
            off: off.node for off in result.conditioned_tuples
        }
        self._var_of_node: dict[int, EventVar] = {}
        self._obdds: dict[int, tuple[OBDD, dict[EventVar, float]]] = {}
        self._dnfs: dict[int, DNF] = {}
        self._circuits: dict[int, ArithmeticCircuit] = {}
        #: per-lineage-node wall-clock compile seconds (OBDD + lowering);
        #: read by ``repro explain`` to expose cold-path cost
        self.compile_seconds: dict[int, float] = {}
        #: per-lineage-node compile provenance: ``"cache"`` when the circuit
        #: came out of the structural cache, ``"obdd"`` when lowered here
        self.circuit_sources: dict[int, str] = {}
        self._rows: dict[Row, tuple[int, float]] = {}
        for row, l, p in result.relation.items():
            self._rows[row] = (l, p)
            if l != EPSILON and l not in self._obdds:
                dnf, probs = partial_lineage_dnf(result.network, l)
                self._dnfs[l] = dnf
                self._obdds[l] = (build_obdd(dnf), probs)

    # ------------------------------------------------------------ resolution
    def _resolve(self, key) -> int:
        """Resolve an override key (OffendingTuple, node id, or (source, row))
        to a network node id."""
        if isinstance(key, OffendingTuple):
            return key.node
        if isinstance(key, int):
            return key
        if isinstance(key, tuple) and len(key) == 2:
            matches = [
                off.node
                for off in self.result.conditioned_tuples
                if off.source == key[0] and off.row == tuple(key[1])
            ]
            if len(matches) == 1:
                return matches[0]
            if not matches:
                raise ReproError(
                    f"{key!r} is not an offending tuple of this evaluation; "
                    f"only offending tuples can be overridden (others were "
                    f"folded into constants)"
                )
            raise ReproError(f"{key!r} matches several conditioned tuples")
        raise ReproError(f"cannot resolve override key {key!r}")

    def variable_for(self, key) -> EventVar:
        """The lineage variable of an override key.

        Public resolution for callers that build
        :class:`~repro.circuit.ScenarioBatch` matrices directly (the CLI's
        ``whatif --batch``, the rescore benchmark) instead of going through
        per-scenario override mappings.
        """
        return self._variable_for(self._resolve(key))

    def _variable_for(self, node: int) -> EventVar:
        """The compiled-DNF variable carrying the tuple's probability.

        Conditioning an ε-row creates a leaf; conditioning a symbolic row
        creates a single-parent noisy And gate whose *edge* holds the
        probability (see ``operators.condition``).
        """
        from repro.core.network import NodeKind

        if self.result.network.kind(node) is NodeKind.LEAF:
            return EventVar("leaf", (node,))
        return EventVar("edge", (node, 0))

    def _lineage_of(self, row: Row) -> tuple[int, float]:
        row = tuple(row)
        if row not in self._rows:
            raise ReproError(f"{row!r} is not an answer of this evaluation")
        return self._rows[row]

    def _checked(self, value) -> float:
        value = float(value)
        if not 0.0 <= value <= 1.0:
            raise ReproError(f"override probability {value} outside [0, 1]")
        return value

    def _override_vars(self, overrides: Mapping) -> dict[EventVar, float]:
        """Translate override keys to lineage variables, validating values."""
        out: dict[EventVar, float] = {}
        for key, value in overrides.items():
            node = self._resolve(key)
            out[self._variable_for(node)] = self._checked(value)
        return out

    # --------------------------------------------------------------- circuits
    def circuit_for(self, row: Row) -> ArithmeticCircuit | None:
        """The compiled arithmetic circuit of answer *row*'s lineage.

        ``None`` for answers with constant lineage (nothing to re-score).
        The OBDD built at construction lowers once per lineage node; with a
        :class:`~repro.circuit.CircuitCache` attached, rename-equivalent
        lineages (other answers, other instances) skip even that.
        """
        l, _ = self._lineage_of(row)
        if l == EPSILON:
            return None
        circuit = self._circuits.get(l)
        if circuit is not None:
            return circuit
        obdd, probs = self._obdds[l]
        dnf = self._dnfs[l]
        started = time.perf_counter()
        source = "obdd"
        if self._circuit_cache is not None:
            circuit = self._circuit_cache.get(dnf, probs)
            if circuit is not None:
                source = "cache"
        if circuit is None:
            circuit = compile_obdd(obdd, probs)
            if self._circuit_cache is not None:
                self._circuit_cache.put(dnf, probs, circuit)
        self.compile_seconds[l] = time.perf_counter() - started
        self.circuit_sources[l] = source
        self._circuits[l] = circuit
        return circuit

    # ------------------------------------------------------------- evaluation
    def probability(self, row: Row, overrides: Mapping | None = None) -> float:
        """Probability of answer *row* with offending-tuple overrides applied.

        Override keys may be :class:`OffendingTuple` instances (from
        ``result.conditioned_tuples``), raw node ids, or ``(source, row)``
        pairs; values are the hypothetical probabilities. This is the scalar
        OBDD oracle; batches should go through :meth:`probability_batch`.
        """
        l, p = self._lineage_of(row)
        if l == EPSILON:
            return p
        obdd, base_probs = self._obdds[l]
        if not overrides:
            return p * obdd.probability(base_probs)
        probs = dict(base_probs)
        for var, value in self._override_vars(overrides).items():
            if var not in probs:
                # the tuple offends elsewhere; this answer does not depend on it
                continue
            probs[var] = value
        return p * obdd.probability(probs)

    def probability_batch(
        self,
        row: Row,
        scenarios: ScenarioBatch | Iterable[Mapping],
    ) -> np.ndarray:
        """Answer probabilities under a whole batch of scenarios at once.

        *scenarios* is a :class:`~repro.circuit.ScenarioBatch` over lineage
        variables, or an iterable of override mappings (same keys as
        :meth:`probability`). One vectorized circuit sweep replaces one
        scalar OBDD walk per scenario; results are bit-for-bit the same
        multilinear polynomial, so they agree with the oracle to rounding.

        Returns a ``(batch,)`` float64 array.
        """
        l, p = self._lineage_of(row)
        if not isinstance(scenarios, ScenarioBatch):
            scenarios = ScenarioBatch.from_overrides(
                [self._override_vars(s) for s in scenarios]
            )
        if l == EPSILON:
            return np.full(len(scenarios), p)
        circuit = self.circuit_for(row)
        return p * rescore(circuit, scenarios)

    def sensitivities(self, row: Row, method: str = "auto") -> list[Sensitivity]:
        """Offending tuples ranked by their swing on answer *row*.

        *method* selects the engine: ``"circuit"`` (one batched gradient
        sweep for all tuples — the served path), ``"obdd"`` (2·k scalar OBDD
        walks — the oracle), or ``"auto"`` (circuit when the answer has
        symbolic lineage, the scalar path otherwise).
        """
        if method not in ("auto", "circuit", "obdd"):
            raise ReproError(
                f"unknown sensitivity method {method!r}; "
                f"choose auto, circuit, or obdd"
            )
        l, p = self._lineage_of(row)
        if method == "obdd" or l == EPSILON:
            return self._sensitivities_obdd(row)
        return self._sensitivities_circuit(row, l, p)

    def _sensitivities_obdd(self, row: Row) -> list[Sensitivity]:
        base = self.probability(row)
        out = []
        for off in self.result.conditioned_tuples:
            absent = self.probability(row, {off: 0.0})
            certain = self.probability(row, {off: 1.0})
            if absent != certain:
                out.append(Sensitivity(off, base, absent, certain))
        out.sort(key=lambda s: -abs(s.swing))
        return out

    def _sensitivities_circuit(
        self, row: Row, l: int, p: float
    ) -> list[Sensitivity]:
        """All swings from one gradient sweep.

        The lineage polynomial is multilinear, so for leaf *i* with current
        probability ``p_i`` and gradient ``g_i``:
        ``Pr(certain) = value + (1 - p_i)·g_i`` and
        ``Pr(absent) = value - p_i·g_i`` — both read off the same sweep.
        """
        circuit = self.circuit_for(row)
        values, grads = rescore_with_gradients(
            circuit, circuit.base_probs[np.newaxis, :]
        )
        value, grad = float(values[0]), grads[0]
        base = p * value
        out = []
        for off in self.result.conditioned_tuples:
            var = self._variable_for(off.node)
            i = circuit.index_of(var)
            if i is None or grad[i] == 0.0:
                continue
            p_i = float(circuit.base_probs[i])
            certain = p * (value + (1.0 - p_i) * grad[i])
            absent = p * (value - p_i * grad[i])
            out.append(Sensitivity(off, base, absent, certain))
        out.sort(key=lambda s: -abs(s.swing))
        return out
