"""Approximate inference on And-Or networks.

Section 7 of the paper: "these approximation strategies can be used on the
And-Or Networks as well. Our method basically reduces the original problem
into an inference problem of smaller scale. This means it takes less time to
sample the data and more samples mean better approximation." This module
provides that reduction's payoff:

* :func:`forward_sample_marginal` — direct Monte-Carlo on the network:
  sample every leaf by its prior and every noisy edge by its probability,
  propagate through the gates, count. Unbiased; cost linear in the relevant
  sub-network per sample.
* :func:`karp_luby_marginal` — compile the node's partial-lineage DNF
  (strictly smaller than the full lineage) and run the Karp-Luby FPRAS,
  giving relative-error guarantees even for tiny probabilities.
* :func:`hoeffding_samples` / :func:`karp_luby_samples` — sample-size
  calculators for (ε, δ) guarantees.

Everything takes an explicit ``random.Random`` so runs are reproducible.
"""

from __future__ import annotations

import math
import random

from repro.core.compile import partial_lineage_dnf
from repro.core.network import EPSILON, AndOrNetwork, NodeKind
from repro.lineage.sampling import karp_luby


def forward_sample_once(
    net: AndOrNetwork, nodes: list[int], rng: random.Random
) -> dict[int, int]:
    """Sample one joint assignment of *nodes* (must be ancestor-closed,
    topologically sorted ascending — node ids are topological by construction)."""
    values: dict[int, int] = {}
    for v in nodes:
        kind = net.kind(v)
        if kind is NodeKind.LEAF:
            p = 1.0 if v == EPSILON else net.leaf_probability(v)
            values[v] = 1 if rng.random() < p else 0
            continue
        if kind is NodeKind.OR:
            fired = 0
            for w, q in net.parents(v):
                if values[w] and rng.random() < q:
                    fired = 1
                    break
            values[v] = fired
        else:  # AND
            fired = 1
            for w, q in net.parents(v):
                if not values[w] or rng.random() >= q:
                    fired = 0
                    break
            values[v] = fired
    return values


def forward_sample_marginal(
    net: AndOrNetwork,
    node: int,
    samples: int,
    rng: random.Random | None = None,
) -> float:
    """Estimate ``Pr(node = 1)`` by forward sampling.

    Examples
    --------
    >>> net = AndOrNetwork()
    >>> u = net.add_leaf(0.3)
    >>> v = net.add_leaf(0.8)
    >>> w = net.add_gate(NodeKind.OR, [(u, 0.5), (v, 0.5)])
    >>> est = forward_sample_marginal(net, w, 50000, random.Random(0))
    >>> abs(est - 0.49) < 0.01
    True
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    if node == EPSILON:
        return 1.0
    rng = rng or random.Random()
    relevant = sorted(net.ancestors([node]))
    hits = 0
    for _ in range(samples):
        if forward_sample_once(net, relevant, rng)[node]:
            hits += 1
    return hits / samples


def forward_sample_marginals(
    net: AndOrNetwork,
    nodes: list[int],
    samples: int,
    rng: random.Random | None = None,
) -> dict[int, float]:
    """Joint forward sampling: one pass estimates every requested marginal."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    rng = rng or random.Random()
    targets = [v for v in dict.fromkeys(nodes) if v != EPSILON]
    relevant = sorted(net.ancestors(targets))
    hits = {v: 0 for v in targets}
    for _ in range(samples):
        values = forward_sample_once(net, relevant, rng)
        for v in targets:
            hits[v] += values[v]
    out = {v: hits[v] / samples for v in targets}
    for v in nodes:
        if v == EPSILON:
            out[EPSILON] = 1.0
    return out


def karp_luby_marginal(
    net: AndOrNetwork,
    node: int,
    samples: int,
    rng: random.Random | None = None,
) -> float:
    """Karp-Luby estimation on the node's partial-lineage DNF.

    Inherits the FPRAS relative-error behaviour; preferable to forward
    sampling when ``Pr(node=1)`` may be small.
    """
    if node == EPSILON:
        return 1.0
    dnf, probs = partial_lineage_dnf(net, node)
    return karp_luby(dnf, probs, samples, rng)


def hoeffding_samples(epsilon: float, delta: float) -> int:
    """Samples for additive error ``epsilon`` with confidence ``1 - delta``.

    By Hoeffding's inequality: ``n ≥ ln(2/δ) / (2 ε²)``.

    Examples
    --------
    >>> hoeffding_samples(0.01, 0.05)
    18445
    """
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ValueError("epsilon and delta must lie in (0, 1)")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def karp_luby_samples(epsilon: float, delta: float, clauses: int) -> int:
    """Samples for relative error ``epsilon`` with confidence ``1 - delta``.

    The classical Karp-Luby-Madras bound ``n ≥ 4 m ln(2/δ) / ε²`` for a DNF
    of ``m`` clauses (the estimator's value is within a factor ``m`` of the
    answer, bounding its variance).
    """
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ValueError("epsilon and delta must lie in (0, 1)")
    if clauses <= 0:
        raise ValueError("clauses must be positive")
    return math.ceil(4.0 * clauses * math.log(2.0 / delta) / (epsilon * epsilon))
