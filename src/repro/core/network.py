"""And-Or networks (Section 5.1 of the paper).

An And-Or network is a directed acyclic graph whose nodes are Boolean random
variables labelled ``Leaf``, ``And``, or ``Or``, with a probability on every
leaf and on every edge. The conditional distribution of a gate given its
parents is a *noisy* gate::

    Or:   Pr(v=1 | parents) = 1 - prod_w (1 - x_w * P(w, v))
    And:  Pr(v=1 | parents) = prod_w (x_w * P(w, v))
    Leaf: Pr(v=1)           = P(v)

This is a special case of a Bayesian network. Or nodes encode the dependency
introduced by duplicate elimination, And nodes the one introduced by joins,
and leaves are the *conditioned* (offending) tuples.

Node reuse by hashing
---------------------
The paper builds gate nodes by hashing the set of ``(parent, probability)``
pairs, so that structurally identical gates collapse to one node — Section 5.4
shows this can shrink treewidth from ``n`` to a tree. The merge is sound
exactly when the gate is a *deterministic* function of its parents, i.e. when
every edge probability is 1: then two gates with the same parent set denote
the same Boolean event. With an edge probability below 1 the gate involves a
fresh anonymous event per tuple, and merging two such gates would wrongly
identify independent events (this is checkable against brute-force worlds;
see ``tests/core/test_network.py``). We therefore memoise deterministic gates
only — fresh nodes are allocated for noisy gates.

The distinguished node :data:`EPSILON` (id 0) is a leaf with probability 1.
It plays the role of the paper's ``ε``: the trivial lineage of tuples that
carry no symbolic part.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.errors import CapacityError, ProbabilityError


class NodeKind(enum.Enum):
    """Label of an And-Or network node."""

    LEAF = "leaf"
    AND = "and"
    OR = "or"


#: The trivial lineage node: a leaf that is true with probability 1.
EPSILON = 0

#: Refuse brute-force enumeration beyond this many non-epsilon nodes.
_MAX_BRUTE_FORCE = 22


@dataclass(frozen=True)
class _Node:
    kind: NodeKind
    #: For leaves: the prior probability. For gates: unused (0.0).
    prob: float
    #: For gates: ``(parent id, edge probability)`` pairs. Empty for leaves.
    parents: tuple[tuple[int, float], ...]


@dataclass(frozen=True)
class Components:
    """Connected components of a network's undirected graph, ε excluded.

    ε (node 0) is a constant: it correlates nothing, so edges incident to it
    are ignored and it belongs to no component (label ``-1``). Every other
    node carries a component label in ``0..count-1``, numbered in
    first-occurrence (node id) order. Two nodes share a label iff their joint
    distribution does not factor between them — the unit of work for
    component-sliced inference.
    """

    #: Component label per node id; ``-1`` for ε.
    labels: np.ndarray
    #: Number of components.
    count: int
    _members: dict = field(default_factory=dict, compare=False, repr=False)

    def of(self, node: int) -> int:
        """Component label of *node* (``-1`` for ε)."""
        return int(self.labels[node])

    def members(self, label: int) -> np.ndarray:
        """Ascending node ids of one component."""
        hit = self._members.get(label)
        if hit is None:
            hit = np.flatnonzero(self.labels == label)
            self._members[label] = hit
        return hit

    def sizes(self) -> np.ndarray:
        """Component sizes, indexed by label."""
        return np.bincount(self.labels[self.labels >= 0], minlength=self.count)


@dataclass(frozen=True)
class ComponentSlice:
    """One extracted component as a standalone, picklable network.

    ``network`` contains ε (id 0) plus the component's nodes, renumbered
    ``1..k`` in their original ascending id order — so the topological
    invariant (parents precede gates) carries over and every marginal in the
    slice equals the same node's marginal in the source network. ``orig_ids``
    maps slice ids back (``orig_ids[0] == 0`` for ε); :meth:`to_sub` maps
    forward.
    """

    network: "AndOrNetwork"
    #: Original node id per slice id (position 0 is ε).
    orig_ids: np.ndarray
    _sub_of: dict = field(compare=False, repr=False)

    def to_sub(self, node: int) -> int:
        """Slice id of an original node id."""
        try:
            return self._sub_of[node]
        except KeyError:
            raise KeyError(
                f"node {node} is not part of this component slice"
            ) from None

    def to_orig(self, sub: int) -> int:
        """Original node id of a slice id."""
        return int(self.orig_ids[sub])

    def __len__(self) -> int:
        return len(self.network)


class AndOrNetwork:
    """A growable And-Or network.

    The network starts with the single :data:`EPSILON` leaf. Operators augment
    it (the paper's ``∪̊`` operation) through :meth:`add_leaf` and
    :meth:`add_gate`; nodes are immutable once created, so the DAG invariant
    holds by construction (a gate's parents must already exist).

    Examples
    --------
    Example 5.1 of the paper — ``N(x) = 0.28`` for ``x = {u:0, v:1, w:0}``:

    >>> net = AndOrNetwork()
    >>> u = net.add_leaf(0.3)
    >>> v = net.add_leaf(0.8)
    >>> w = net.add_gate(NodeKind.OR, [(u, 0.5), (v, 0.5)])
    >>> round(net.joint_probability({u: 0, v: 1, w: 0}), 10)
    0.28
    """

    def __init__(self, hashing: bool = True) -> None:
        #: When False, deterministic gates are not memoised — the ablation of
        #: the Section 5.4 hashing optimisation (always sound, possibly much
        #: larger networks).
        self.hashing = hashing
        self._nodes: list[_Node] = [_Node(NodeKind.LEAF, 1.0, ())]
        self._gate_memo: dict[tuple, int] = {}
        self._components: Components | None = None

    # ------------------------------------------------------------- growth
    def add_leaf(self, probability: float) -> int:
        """Add a fresh leaf with the given prior probability and return its id.

        Leaves are never memoised: every conditioning step introduces a new
        independent event even if probabilities coincide.
        """
        p = float(probability)
        if not 0.0 <= p <= 1.0:
            raise ProbabilityError(f"leaf probability {p} outside [0, 1]")
        self._nodes.append(_Node(NodeKind.LEAF, p, ()))
        return len(self._nodes) - 1

    def add_gate(
        self, kind: NodeKind, parents: Iterable[tuple[int, float]]
    ) -> int:
        """Add an And/Or gate over ``(parent, edge probability)`` pairs.

        Deterministic gates (all edge probabilities equal to 1) are memoised by
        their parent set — the paper's hashing trick — so repeated requests
        return the same node id. A single-parent deterministic gate is the
        parent itself and no node is created.

        Raises
        ------
        ProbabilityError
            If an edge probability is outside ``[0, 1]``.
        ValueError
            If the parent list is empty or mentions an unknown node.
        """
        if kind not in (NodeKind.AND, NodeKind.OR):
            raise ValueError(f"gates must be And or Or, not {kind}")
        # Sort for a canonical (hashable) form, keeping multiplicity: a gate
        # with the same parent twice involves two distinct anonymous events.
        plist = sorted((int(w), float(q)) for w, q in parents)
        if not plist:
            raise ValueError("a gate needs at least one parent")
        for w, q in plist:
            if not 0 <= w < len(self._nodes):
                raise ValueError(f"unknown parent node {w}")
            if not 0.0 <= q <= 1.0:
                raise ProbabilityError(f"edge probability {q} outside [0, 1]")
        deterministic = all(q == 1.0 for _, q in plist)
        if deterministic and len(plist) == 1:
            return plist[0][0]
        memoisable = deterministic and self.hashing
        if memoisable:
            key = (kind, tuple(plist))
            hit = self._gate_memo.get(key)
            if hit is not None:
                return hit
        self._nodes.append(_Node(kind, 0.0, tuple(plist)))
        node = len(self._nodes) - 1
        if memoisable:
            self._gate_memo[key] = node
        return node

    # -------------------------------------------------------------- bulk growth
    def add_leaves(self, probabilities) -> np.ndarray:
        """Bulk :meth:`add_leaf`: append one fresh leaf per probability.

        Validates the whole array at once and returns the new node ids as an
        ``int64`` array. Like :meth:`add_leaf`, leaves are never memoised —
        every entry denotes a fresh independent event.
        """
        probs = np.asarray(probabilities, dtype=np.float64)
        if probs.ndim != 1:
            raise ValueError(f"add_leaves expects a 1-D array, got {probs.shape}")
        if probs.size and not ((probs >= 0.0) & (probs <= 1.0)).all():
            bad = probs[(probs < 0.0) | (probs > 1.0)][0]
            raise ProbabilityError(f"leaf probability {bad} outside [0, 1]")
        start = len(self._nodes)
        self._nodes.extend(
            _Node(NodeKind.LEAF, p, ()) for p in probs.tolist()
        )
        return np.arange(start, start + probs.size, dtype=np.int64)

    def add_gates(
        self, kind: NodeKind, parents, edge_probs, offsets=None
    ) -> np.ndarray:
        """Bulk :meth:`add_gate`: append many same-kind gates in one call.

        Two input layouts are accepted:

        * *rectangular* — ``parents`` and ``edge_probs`` are 2-D arrays of
          shape ``(gates, arity)`` (``offsets`` omitted), for uniform-arity
          batches such as the binary And gates of the pL-join;
        * *ragged (CSR)* — ``parents`` and ``edge_probs`` are flat 1-D arrays
          and ``offsets`` (length ``gates + 1``) delimits each gate's slice,
          for variable-size batches such as deduplication's Or groups.

        Canonicalisation, the single-parent collapse, and batch-wise
        hash-consing of deterministic gates all match :meth:`add_gate`
        gate-for-gate (in array order), so a bulk call allocates exactly the
        node ids a loop of scalar calls would. Returns the gate ids as an
        ``int64`` array.
        """
        if kind not in (NodeKind.AND, NodeKind.OR):
            raise ValueError(f"gates must be And or Or, not {kind}")
        parents = np.asarray(parents, dtype=np.int64)
        edge_probs = np.asarray(edge_probs, dtype=np.float64)
        if parents.shape != edge_probs.shape:
            raise ValueError(
                f"parents {parents.shape} and edge probabilities "
                f"{edge_probs.shape} differ in shape"
            )
        if offsets is None:
            if parents.ndim != 2:
                raise ValueError(
                    "without offsets, add_gates expects (gates, arity) arrays"
                )
            gates, arity = parents.shape
            counts = np.full(gates, arity, dtype=np.int64)
            offs = np.arange(gates + 1, dtype=np.int64) * arity
            parents = parents.reshape(-1)
            edge_probs = edge_probs.reshape(-1)
        else:
            if parents.ndim != 1:
                raise ValueError("with offsets, add_gates expects flat arrays")
            offs = np.asarray(offsets, dtype=np.int64)
            if offs.ndim != 1 or offs.size == 0 or offs[0] != 0 or offs[-1] != parents.size:
                raise ValueError(
                    f"offsets must run from 0 to {parents.size}, got {offs!r}"
                )
            gates = offs.size - 1
            counts = np.diff(offs)
        if gates == 0:
            return np.empty(0, dtype=np.int64)
        if (counts <= 0).any():
            raise ValueError("a gate needs at least one parent")
        if parents.size:
            if int(parents.min()) < 0 or int(parents.max()) >= len(self._nodes):
                bad = parents[(parents < 0) | (parents >= len(self._nodes))][0]
                raise ValueError(f"unknown parent node {bad}")
            if not ((edge_probs >= 0.0) & (edge_probs <= 1.0)).all():
                bad = edge_probs[(edge_probs < 0.0) | (edge_probs > 1.0)][0]
                raise ProbabilityError(f"edge probability {bad} outside [0, 1]")
        # Canonical per-gate sort by (parent, probability), exactly the scalar
        # path's sorted() order; the gate id is the (stable) primary key.
        gate_ids = np.repeat(np.arange(gates), counts)
        order = np.lexsort((edge_probs, parents, gate_ids))
        parents = parents[order]
        edge_probs = edge_probs[order]
        deterministic = (
            np.minimum.reduceat(edge_probs, offs[:-1]) == 1.0
        )
        p_list = parents.tolist()
        q_list = edge_probs.tolist()
        starts = offs[:-1].tolist()
        sizes = counts.tolist()
        det_list = deterministic.tolist()
        memo = self._gate_memo
        hashing = self.hashing
        nodes = self._nodes
        out = np.empty(gates, dtype=np.int64)
        for g in range(gates):
            s = starts[g]
            e = s + sizes[g]
            plist = list(zip(p_list[s:e], q_list[s:e]))
            det = det_list[g]
            if det and len(plist) == 1:
                out[g] = plist[0][0]
                continue
            if det and hashing:
                key = (kind, tuple(plist))
                hit = memo.get(key)
                if hit is not None:
                    out[g] = hit
                    continue
                nodes.append(_Node(kind, 0.0, tuple(plist)))
                node = len(nodes) - 1
                memo[key] = node
            else:
                nodes.append(_Node(kind, 0.0, tuple(plist)))
                node = len(nodes) - 1
            out[g] = node
        return out

    # ------------------------------------------------------------ structure
    def __len__(self) -> int:
        return len(self._nodes)

    def kind(self, node: int) -> NodeKind:
        """The label of *node*."""
        return self._nodes[node].kind

    def leaf_probability(self, node: int) -> float:
        """Prior probability of a leaf node."""
        n = self._nodes[node]
        if n.kind is not NodeKind.LEAF:
            raise ValueError(f"node {node} is a {n.kind.value} gate, not a leaf")
        return n.prob

    def parents(self, node: int) -> tuple[tuple[int, float], ...]:
        """``(parent, edge probability)`` pairs of *node* (empty for leaves)."""
        return self._nodes[node].parents

    def nodes(self) -> range:
        """All node ids, including :data:`EPSILON`."""
        return range(len(self._nodes))

    def leaves(self) -> list[int]:
        """Ids of all leaf nodes (including :data:`EPSILON`)."""
        return [i for i, n in enumerate(self._nodes) if n.kind is NodeKind.LEAF]

    def symbolic_leaves(self) -> list[int]:
        """Leaves other than ε — one per conditioned (offending) tuple."""
        return [i for i in self.leaves() if i != EPSILON]

    def ancestors(self, nodes: Iterable[int]) -> set[int]:
        """All nodes reachable from *nodes* by following parent edges."""
        seen: set[int] = set()
        stack = list(nodes)
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(w for w, _ in self._nodes[v].parents)
        return seen

    def undirected_edges(self) -> list[tuple[int, int]]:
        """Edges of the underlying undirected graph (for treewidth analysis)."""
        return [
            (w, v)
            for v, n in enumerate(self._nodes)
            for w, _ in n.parents
        ]

    # ----------------------------------------------------------- components
    def components(self) -> Components:
        """Connected components of the undirected graph, ε excluded.

        Union-find over :meth:`undirected_edges` (edges incident to ε are
        skipped: a probability-1 constant correlates nothing). The result is
        cached and recomputed only after the network has grown — nodes are
        append-only, so a stale cache is detectable from the node count.

        Examples
        --------
        >>> net = AndOrNetwork()
        >>> x, y, z = (net.add_leaf(0.5) for _ in range(3))
        >>> g = net.add_gate(NodeKind.OR, [(x, 1.0), (y, 1.0)])
        >>> c = net.components()
        >>> c.count, c.of(x) == c.of(g), c.of(x) == c.of(z)
        (2, True, False)
        """
        cached = self._components
        if cached is not None and len(cached.labels) == len(self._nodes):
            return cached
        n = len(self._nodes)
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]  # path halving
                x = parent[x]
            return x

        for v, node in enumerate(self._nodes):
            for w, _ in node.parents:
                if w == EPSILON:
                    continue
                rv, rw = find(v), find(w)
                if rv != rw:
                    parent[rv] = rw
        labels = np.full(n, -1, dtype=np.int64)
        label_of_root: dict[int, int] = {}
        for v in range(1, n):
            root = find(v)
            label = label_of_root.get(root)
            if label is None:
                label = len(label_of_root)
                label_of_root[root] = label
            labels[v] = label
        result = Components(labels, len(label_of_root))
        self._components = result
        return result

    def component_of(self, node: int) -> int:
        """Component label of *node* (``-1`` for ε)."""
        return self.components().of(node)

    def extract_component(self, node: int) -> ComponentSlice:
        """Extract the component containing *node* as a standalone network.

        The slice is a fresh :class:`AndOrNetwork` over ε plus the
        component's nodes (ascending original order, so acyclicity is
        preserved), with gate parents remapped. It is picklable — the unit
        shipped to worker processes by :mod:`repro.perf.parallel` — and
        marginals computed in it equal the source network's.

        Examples
        --------
        >>> net = AndOrNetwork()
        >>> x, y = net.add_leaf(0.3), net.add_leaf(0.8)
        >>> g = net.add_gate(NodeKind.OR, [(x, 0.5), (y, 0.5)])
        >>> part = net.extract_component(g)
        >>> len(part.network), part.to_orig(part.to_sub(g))
        (4, 3)
        """
        if node == EPSILON:
            raise ValueError("ε belongs to no component")
        comps = self.components()
        members = comps.members(comps.of(node))
        sub_of = {EPSILON: EPSILON}
        for i, v in enumerate(members.tolist(), start=1):
            sub_of[v] = i
        subnet = AndOrNetwork(hashing=self.hashing)
        nodes = subnet._nodes
        memo = subnet._gate_memo
        for v in members.tolist():
            orig = self._nodes[v]
            if orig.kind is NodeKind.LEAF:
                nodes.append(orig)
                continue
            plist = tuple(
                sorted((sub_of[w], q) for w, q in orig.parents)
            )
            nodes.append(_Node(orig.kind, orig.prob, plist))
            if self.hashing and all(q == 1.0 for _, q in plist):
                memo.setdefault((orig.kind, plist), len(nodes) - 1)
        orig_ids = np.concatenate(
            [np.zeros(1, dtype=np.int64), members.astype(np.int64)]
        )
        return ComponentSlice(subnet, orig_ids, sub_of)

    # ------------------------------------------------------------ semantics
    def conditional_probability(
        self, node: int, value: int, parent_values: Mapping[int, int]
    ) -> float:
        """``φ(x_v = value | x_parents)`` from Section 5.1."""
        n = self._nodes[node]
        if n.kind is NodeKind.LEAF:
            p1 = n.prob
        elif n.kind is NodeKind.OR:
            acc = 1.0
            for w, q in n.parents:
                acc *= 1.0 - parent_values[w] * q
            p1 = 1.0 - acc
        else:  # AND
            p1 = 1.0
            for w, q in n.parents:
                p1 *= parent_values[w] * q
        return p1 if value else 1.0 - p1

    def joint_probability(self, assignment: Mapping[int, int]) -> float:
        """``N(x)``: the joint probability of a full assignment.

        The assignment must cover every node except ε (ε may be included with
        value 1; including it with value 0 yields probability 0).
        """
        full = dict(assignment)
        full.setdefault(EPSILON, 1)
        prod = 1.0
        for v in range(len(self._nodes)):
            prod *= self.conditional_probability(v, full[v], full)
            if prod == 0.0:
                return 0.0
        return prod

    def brute_force_marginal(self, evidence: Mapping[int, int]) -> float:
        """``N^0(y)``: marginal of a partial assignment, by full enumeration.

        Exponential; used as the inference oracle in tests. For efficient
        inference use :mod:`repro.core.inference`.
        """
        free = [v for v in range(1, len(self._nodes)) if v not in evidence]
        if len(free) > _MAX_BRUTE_FORCE:
            raise CapacityError(
                f"{len(free)} free nodes exceed the brute-force limit"
            )
        if EPSILON in evidence and evidence[EPSILON] == 0:
            return 0.0
        total = 0.0
        for values in itertools.product((0, 1), repeat=len(free)):
            assignment = dict(zip(free, values))
            assignment.update(evidence)
            total += self.joint_probability(assignment)
        return total

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation.

        Invariants: node 0 is ε (a probability-1 leaf); every gate's parents
        precede it (acyclicity); probabilities lie in ``[0, 1]``.
        """
        if (
            self._nodes[EPSILON].kind is not NodeKind.LEAF
            or self._nodes[EPSILON].prob != 1.0
        ):
            raise ValueError("node 0 must be the ε leaf with probability 1")
        for v, n in enumerate(self._nodes):
            if n.kind is NodeKind.LEAF:
                if n.parents:
                    raise ValueError(f"leaf {v} has parents")
                if not 0.0 <= n.prob <= 1.0:
                    raise ValueError(f"leaf {v} probability {n.prob} outside [0,1]")
            else:
                if not n.parents:
                    raise ValueError(f"gate {v} has no parents")
                for w, q in n.parents:
                    if w >= v:
                        raise ValueError(f"gate {v} has non-preceding parent {w}")
                    if not 0.0 <= q <= 1.0:
                        raise ValueError(f"edge ({w},{v}) probability {q}")

    def __repr__(self) -> str:
        counts = {k: 0 for k in NodeKind}
        for n in self._nodes:
            counts[n.kind] += 1
        return (
            f"<AndOrNetwork {len(self._nodes)} nodes: "
            f"{counts[NodeKind.LEAF]} leaves, {counts[NodeKind.AND]} and, "
            f"{counts[NodeKind.OR]} or>"
        )
