"""Plan evaluation with partial lineage.

:class:`PartialLineageEvaluator` walks a plan bottom-up over a probabilistic
database, maintaining pL-relations over one shared And-Or network:

* ``Scan`` lifts a base relation (all lineage ε), applying the atom's
  constant and repeated-variable selections;
* ``Select`` / ``Project`` apply the Section 5.3 operators;
* ``Join`` applies Theorem 5.16: condition both inputs on their cSets, then
  ``⋈_pL``.

The result bundles the output pL-relation, the network, and per-operator
offending-tuple counts; :meth:`EvaluationResult.answer_probabilities` runs
exact inference (Theorem 5.17's variable-elimination counterpart) to turn
partial lineage into probabilities.

When the plan is *data safe* on the instance, no tuples are conditioned, the
network never grows beyond ε, and the evaluation is purely extensional — the
method degenerates to a safe plan, exactly as Section 4 promises. When every
tuple offends, it degenerates to full intensional lineage. The common case
sits in between.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core import columnar as _columnar
from repro.core.columnar import ColumnarPLRelation, ValueInterner
from repro.core.inference import compute_marginal
from repro.core.network import EPSILON, AndOrNetwork
from repro.core.operators import pl_join, project, select_eq, select_where
from repro.core.plan import (
    Filter,
    Join,
    Plan,
    Project,
    Scan,
    Select,
    left_deep_plan,
    plan_schema,
)
from repro.core.plrelation import PLRelation
from repro.obs.trace import span as _span
from repro.db.database import ProbabilisticDatabase
from repro.db.schema import Row
from repro.errors import PlanError
from repro.query.syntax import ConjunctiveQuery, Constant, Variable
from repro.resilience.budget import QueryBudget

#: Engines the evaluator can run the operator pipeline with.
ENGINES = ("columnar", "rows")


@dataclass
class OperatorStat:
    """Per-operator accounting recorded during evaluation."""

    operator: str
    output_size: int
    conditioned: int = 0
    #: Wall-clock spent in this operator alone (children excluded).
    seconds: float = 0.0

    def as_dict(self) -> dict:
        """Plain-dict view, the shape a
        :class:`~repro.obs.metrics.MetricsRegistry` absorbs."""
        return {
            "operator": self.operator,
            "output_size": self.output_size,
            "conditioned": self.conditioned,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class OffendingTuple:
    """Provenance of one conditioned tuple: which relation (base or
    intermediate, by display name), which row, and the network leaf/gate the
    conditioning created."""

    source: str
    row: Row
    node: int


@dataclass
class EvaluationResult:
    """Outcome of evaluating a plan with partial lineage."""

    relation: PLRelation
    network: AndOrNetwork
    stats: list[OperatorStat] = field(default_factory=list)
    #: provenance per conditioning, in evaluation order
    conditioned_tuples: list[OffendingTuple] = field(default_factory=list)
    #: default process-pool size for :meth:`answer_probabilities`
    #: (``None`` = solve in-process), inherited from the evaluator
    workers: int | None = None
    #: default :class:`~repro.resilience.QueryBudget` for final inference
    #: (``None`` = unlimited), inherited from the evaluator
    budget: QueryBudget | None = None
    #: default :class:`~repro.circuit.CircuitCache` for what-if circuit
    #: compilation (``None`` = compile per analysis), inherited from the
    #: evaluator
    circuit_cache: object | None = None
    #: operator backend that produced this result (``"columnar"``,
    #: ``"rows"``, ``"sqlite"``), stamped into flight-recorder records
    engine: str = ""

    def whatif(self, *, circuit_cache=None, budget=None):
        """A :class:`~repro.core.whatif.WhatIfAnalysis` over this result.

        The evaluator's :class:`~repro.circuit.CircuitCache` (when it was
        constructed with one) rides along, so repeated analyses of
        rename-equivalent answers skip recompilation; pass *circuit_cache*
        to override.
        """
        from repro.core.whatif import WhatIfAnalysis

        return WhatIfAnalysis(
            self,
            circuit_cache=(
                circuit_cache if circuit_cache is not None
                else self.circuit_cache
            ),
            budget=budget if budget is not None else self.budget,
        )

    @property
    def offending_count(self) -> int:
        """Total number of tuples conditioned across all joins.

        Zero iff the plan was data safe on this instance (Definition 3.1),
        in which case the evaluation was purely extensional.
        """
        return sum(s.conditioned for s in self.stats)

    def record_flight(
        self, kind: str, *, seconds: float, answers: int,
        inference: str = "", rungs: dict | None = None, degraded: int = 0,
        cache=None, budget=None, workers=None, error: str | None = None,
    ) -> dict:
        """Append one :mod:`repro.obs.telemetry` record for this result.

        The query hash is the digest of the plan's operator signature, so
        re-evaluations of the same plan shape aggregate under one hash in
        the flight log regardless of instance data.
        """
        from repro.obs import telemetry

        plan_sig = "|".join(s.operator for s in self.stats)
        return telemetry.record(
            kind,
            query_hash=telemetry.query_hash(plan_sig),
            engine=self.engine,
            inference=inference,
            plan=self.stats[-1].operator if self.stats else "",
            seconds=seconds,
            answers=answers,
            offending=self.offending_count,
            network_nodes=len(self.network),
            operators=telemetry.operator_dicts(self.stats),
            rungs=dict(rungs or {}),
            degraded=degraded,
            cache=telemetry.cache_dict(cache),
            budget=telemetry.budget_dict(budget),
            workers=workers if workers is not None else self.workers,
            error=error,
        )

    @property
    def is_data_safe(self) -> bool:
        """True when no conditioning happened anywhere in the plan."""
        return self.offending_count == 0

    def answer_probabilities(
        self,
        engine: str = "auto",
        dpll_max_calls: int = 5_000_000,
        cache=None,
        workers: int | None = None,
        budget=None,
    ) -> dict[Row, float]:
        """Exact probability of each output tuple.

        An output tuple with lineage ``l`` and probability column ``p`` exists
        with probability ``p · Pr(l = 1)`` — the anonymous event is
        independent of the network by construction.

        *engine* selects the final inference path: ``"auto"`` (linear-time
        tree propagation when the network is tree-factorable, otherwise the
        component-sliced driver of :mod:`repro.perf.parallel`), ``"ve"`` /
        ``"dpll"`` (component-sliced, forcing the respective per-component
        engine), ``"serial"`` (the pre-slicing per-answer loop over
        :func:`repro.core.inference.compute_marginal` — the oracle the
        benchmarks compare against), ``"tree"`` (bottom-up propagation,
        rejects non-tree-factorable networks), or ``"junction"`` (one
        clique-tree calibration per component, all marginals shared).

        *cache* is an optional shared :class:`~repro.perf.SubformulaCache`
        for the DPLL paths: the per-answer marginal solves then reuse each
        other's subformula probabilities, and the cache survives across
        queries when the caller keeps it. With process fan-out, worker cache
        entries are merged back into it.

        *workers* (default: the evaluator's ``workers`` knob) turns on
        process-parallel solving of independent network components for the
        sliced engines; ``None`` or ``1`` stays in-process.

        *budget* (default: the evaluator's ``budget`` knob) is an optional
        :class:`~repro.resilience.QueryBudget` whose deadline the inference
        backends checkpoint cooperatively; a blown budget raises
        :class:`~repro.errors.BudgetExceededError`. For graceful
        degradation to sound bounds instead, use
        :meth:`resilient_answer_probabilities`.
        """
        budget = budget if budget is not None else self.budget
        rows = list(self.relation.items())
        nodes = [l for _, l, _ in rows]
        flight_start = time.perf_counter()
        try:
            if budget is not None:
                budget.start().checkpoint("answer_probabilities")
            return self._answer_probabilities(
                engine, dpll_max_calls, cache, workers, budget,
                rows, nodes, flight_start,
            )
        except Exception as exc:
            self.record_flight(
                "query", seconds=time.perf_counter() - flight_start,
                answers=0, inference=engine, cache=cache, budget=budget,
                workers=workers, error=f"{type(exc).__name__}: {exc}",
            )
            raise

    def _answer_probabilities(
        self, engine, dpll_max_calls, cache, workers, budget,
        rows, nodes, flight_start,
    ) -> dict[Row, float]:
        from repro.core.junction import all_marginals
        from repro.core.treeprop import is_tree_factorable, tree_marginals
        from repro.perf.parallel import parallel_marginals

        marginals: dict[int, float]
        with _span(
            "answer_probabilities", engine=engine, nodes=len(self.network)
        ) as sp:
            if engine == "tree" or (
                engine == "auto" and is_tree_factorable(self.network)
            ):
                sp.annotate(path="tree")
                marginals = tree_marginals(
                    self.network, check=engine == "tree"
                )
            elif engine == "junction":
                sp.annotate(path="junction")
                marginals = all_marginals(self.network, nodes)
            elif engine == "serial":
                sp.annotate(path="serial")
                marginals = {EPSILON: 1.0}
                for l in nodes:
                    if l not in marginals:
                        marginals[l] = compute_marginal(
                            self.network, l, "auto", dpll_max_calls, cache,
                            budget,
                        )
            else:
                sp.annotate(path="sliced")
                marginals = parallel_marginals(
                    self.network,
                    nodes,
                    workers=workers if workers is not None else self.workers,
                    engine=engine,
                    dpll_max_calls=dpll_max_calls,
                    cache=cache,
                    budget=budget,
                )
            sp.add("answers", len(rows))
        answers = {row: p * marginals[l] for row, l, p in rows}
        self.record_flight(
            "query", seconds=time.perf_counter() - flight_start,
            answers=len(answers), inference=engine,
            rungs={"exact": len(answers)},
            cache=cache, budget=budget, workers=workers,
        )
        return answers

    def resilient_answer_probabilities(
        self,
        budget=None,
        *,
        workers: int | None = None,
        cache=None,
        timeout: float | None = None,
        max_retries: int = 2,
        chunks_per_worker: int = 4,
        fault_plan=None,
        registry=None,
        seed: int = 0,
    ) -> dict:
        """Per-answer probability *enclosures* that never fail on hardness.

        The resilient counterpart of :meth:`answer_probabilities`: every
        answer's lineage solves through the degradation ladder of
        :mod:`repro.resilience` — exact inference under (a fraction of) the
        *budget*'s deadline, then OBDD compilation, then sound
        Olteanu-Huang-Koch interval bounds, then Monte-Carlo with a
        Hoeffding interval — and comes back as a
        :class:`~repro.resilience.AnswerResult` carrying ``(lower, upper)``
        bounds, the winning ladder rung, and the full degradation
        provenance. Exactly solved answers have ``exact=True`` and a
        zero-width enclosure; a hard component degrades only its own
        answers.

        With ``workers >= 2`` the components fan out over the
        fault-tolerant pool (per-dispatch *timeout*, *max_retries* retry
        rounds, serial requeue — see
        :func:`repro.resilience.execute.resilient_marginals`); *fault_plan*
        injects deterministic failures for chaos tests, and *seed* fixes
        the sampling rung's randomness so parallel, serial, and retried
        runs agree bit-for-bit.
        """
        from repro.resilience.execute import resilient_marginals
        from repro.resilience.ladder import AnswerResult

        budget = budget if budget is not None else self.budget
        rows = list(self.relation.items())
        flight_start = time.perf_counter()
        outcomes = resilient_marginals(
            self.network,
            [l for _, l, _ in rows],
            budget=budget,
            workers=workers if workers is not None else self.workers,
            cache=cache,
            timeout=timeout,
            max_retries=max_retries,
            chunks_per_worker=chunks_per_worker,
            fault_plan=fault_plan,
            registry=registry,
            seed=seed,
        )
        answers = {
            row: AnswerResult.from_marginal(row, p, outcomes[l])
            for row, l, p in rows
        }
        rungs: dict[str, int] = {}
        for a in answers.values():
            rungs[a.method] = rungs.get(a.method, 0) + 1
        self.record_flight(
            "ladder", seconds=time.perf_counter() - flight_start,
            answers=len(answers), inference="ladder", rungs=rungs,
            degraded=sum(1 for a in answers.values() if a.degraded),
            cache=cache, budget=budget, workers=workers,
        )
        return answers

    def approximate_answer_probabilities(
        self,
        samples: int,
        rng=None,
        method: str = "forward",
    ) -> dict[Row, float]:
        """Monte-Carlo answer probabilities (Section 7's approximate regime).

        ``method="forward"`` estimates all answers jointly from shared forward
        samples of the network; ``method="karp-luby"`` runs the FPRAS on each
        answer's partial-lineage DNF (better for small probabilities).
        """
        from repro.core.approximate import (
            forward_sample_marginals,
            karp_luby_marginal,
        )

        rows = list(self.relation.items())
        if method == "forward":
            marginals = forward_sample_marginals(
                self.network, [l for _, l, _ in rows], samples, rng
            )
        elif method == "karp-luby":
            marginals = {}
            for _, l, _ in rows:
                if l not in marginals:
                    marginals[l] = karp_luby_marginal(
                        self.network, l, samples, rng
                    )
        else:
            raise ValueError(f"unknown approximation method {method!r}")
        return {row: p * marginals[l] for row, l, p in rows}

    def boolean_probability(
        self, engine: str = "auto", dpll_max_calls: int = 5_000_000
    ) -> float:
        """Probability of a Boolean (empty-schema) query answer."""
        if self.relation.attributes:
            raise PlanError(
                f"boolean_probability on a relation with attributes "
                f"{self.relation.attributes}; project to ∅ first"
            )
        probs = self.answer_probabilities(engine, dpll_max_calls)
        return probs.get((), 0.0)


class PartialLineageEvaluator:
    """Evaluates plans over a probabilistic database with partial lineage.

    Examples
    --------
    >>> from repro.db import ProbabilisticDatabase
    >>> from repro.query import parse_query
    >>> db = ProbabilisticDatabase()
    >>> _ = db.add_relation("R", ("A",), {(1,): 0.5})
    >>> _ = db.add_relation("S", ("A", "B"), {(1, 1): 0.5, (1, 2): 0.5})
    >>> _ = db.add_relation("T", ("B",), {(1,): 1.0, (2,): 1.0})
    >>> res = PartialLineageEvaluator(db).evaluate_query(
    ...     parse_query("q() :- R(x), S(x,y), T(y)"))
    >>> round(res.boolean_probability(), 6)
    0.375
    """

    def __init__(
        self,
        db: ProbabilisticDatabase,
        *,
        hashing: bool = True,
        engine: str = "columnar",
        workers: int | None = None,
        budget=None,
        circuit_cache=None,
    ) -> None:
        self.db = db
        #: Pass-through to :class:`AndOrNetwork`: disable to ablate the
        #: Section 5.4 node-reuse optimisation.
        self.hashing = hashing
        if engine not in ENGINES:
            raise PlanError(
                f"unknown evaluation engine {engine!r}; choose from {ENGINES}"
            )
        #: Default process-pool size for final inference, handed to every
        #: :class:`EvaluationResult` this evaluator produces (``None`` keeps
        #: inference in-process; see :mod:`repro.perf.parallel`).
        self.workers = workers
        #: Default :class:`~repro.resilience.QueryBudget` for the whole
        #: execution: checkpointed after every operator (deadline +
        #: network-size cap) and handed to every result for final inference.
        self.budget = budget
        #: ``"columnar"`` (vectorized NumPy operator pipeline, the default) or
        #: ``"rows"`` (the row-at-a-time reference implementation). Both grow
        #: identical networks; only throughput differs.
        self.engine = engine
        #: Optional :class:`~repro.circuit.CircuitCache` shared by every
        #: what-if analysis over this evaluator's results; subscribed to the
        #: database's mutation hooks so inserts invalidate compiled circuits.
        self.circuit_cache = circuit_cache
        if circuit_cache is not None:
            circuit_cache.watch(db)
        # Shared dictionary encoding plus a per-base-relation encode cache for
        # the columnar engine: scans of the same (unmodified) relation across
        # evaluations — e.g. the optimizer costing many join orders — reuse
        # the code matrix instead of re-interning every value.
        self._interner = ValueInterner()
        self._base_cache: dict = {}

    # ------------------------------------------------------------ entry points
    def evaluate(self, plan: Plan, budget=None) -> EvaluationResult:
        """Evaluate an explicit plan; validates its schema first.

        Regardless of engine, the result's ``relation`` is a row-backed
        :class:`PLRelation` (the columnar engine converts its final — small —
        output), so downstream consumers see one representation.

        *budget* (default: the evaluator's ``budget`` knob) is an optional
        :class:`~repro.resilience.QueryBudget`: the deadline and the
        network-size cap are checked after every operator, raising
        :class:`~repro.errors.DeadlineExceededError` /
        :class:`~repro.errors.BudgetExceededError` respectively, and the
        budget is handed to the result for final inference.
        """
        plan_schema(plan, self.db)
        budget = budget if budget is not None else self.budget
        if budget is not None:
            budget.start()
        network = AndOrNetwork(hashing=self.hashing)
        stats: list[OperatorStat] = []
        conditioned: list[OffendingTuple] = []
        rel = self._eval(plan, network, stats, conditioned, budget)
        if isinstance(rel, ColumnarPLRelation):
            rel = rel.to_rows()
        return EvaluationResult(
            rel, network, stats, conditioned,
            workers=self.workers, budget=budget,
            circuit_cache=self.circuit_cache,
            engine=self.engine,
        )

    def invalidate_cache(self) -> None:
        """Drop the columnar base-relation encode cache and any compiled
        circuits (call after mutating a base relation in place)."""
        self._base_cache.clear()
        if self.circuit_cache is not None:
            self.circuit_cache.clear()

    def evaluate_query(
        self,
        query: ConjunctiveQuery,
        join_order: list[str] | None = None,
        budget=None,
    ) -> EvaluationResult:
        """Build the left-deep plan for *query* and evaluate it."""
        return self.evaluate(left_deep_plan(query, join_order), budget=budget)

    # --------------------------------------------------------------- recursion
    def _eval(
        self,
        plan: Plan,
        network: AndOrNetwork,
        stats: list[OperatorStat],
        provenance: list[OffendingTuple],
        budget=None,
    ) -> PLRelation:
        # The operators dispatch on the relation type, so the recursion is
        # engine-agnostic; only the scan differs. Each operator's own wall
        # time (children excluded) lands in its OperatorStat, and — when a
        # tracer is active — in a per-operator span. A budget, when present,
        # is checkpointed after every operator: deadline plus network-size
        # cap, the two resources the operator pipeline itself consumes.
        if isinstance(plan, Scan):
            with _span("scan", op=str(plan), engine=self.engine) as sp:
                start = time.perf_counter()
                rel = (
                    self._scan_columnar(plan, network)
                    if self.engine == "columnar"
                    else self._scan(plan, network)
                )
                seconds = time.perf_counter() - start
                sp.add("output_size", len(rel))
        elif isinstance(plan, Select):
            child = self._eval(plan.child, network, stats, provenance, budget)
            with _span("select", op=str(plan), engine=self.engine) as sp:
                start = time.perf_counter()
                rel = select_eq(child, dict(plan.conditions))
                seconds = time.perf_counter() - start
                sp.add("output_size", len(rel))
        elif isinstance(plan, Filter):
            child = self._eval(plan.child, network, stats, provenance, budget)
            with _span("filter", op=str(plan), engine=self.engine) as sp:
                start = time.perf_counter()
                rel = select_where(child, list(plan.predicates))
                seconds = time.perf_counter() - start
                sp.add("output_size", len(rel))
        elif isinstance(plan, Project):
            child = self._eval(plan.child, network, stats, provenance, budget)
            with _span("project", op=str(plan), engine=self.engine) as sp:
                start = time.perf_counter()
                rel = project(child, plan.attributes)
                seconds = time.perf_counter() - start
                sp.add("output_size", len(rel))
        elif isinstance(plan, Join):
            left = self._eval(plan.left, network, stats, provenance, budget)
            right = self._eval(plan.right, network, stats, provenance, budget)
            with _span("join", op=str(plan), engine=self.engine) as sp:
                start = time.perf_counter()
                rel, conditioned = pl_join(
                    left,
                    right,
                    plan.on,
                    recorder=lambda node, source, row: provenance.append(
                        OffendingTuple(source, row, node)
                    ),
                )
                sp.add("output_size", len(rel))
                sp.add("conditioned", conditioned)
                stats.append(
                    OperatorStat(
                        str(plan),
                        output_size=len(rel),
                        conditioned=conditioned,
                        seconds=time.perf_counter() - start,
                    )
                )
            if budget is not None:
                budget.checkpoint(str(plan))
                budget.check_nodes(len(network), str(plan))
            return rel
        else:
            raise PlanError(f"unknown plan node {plan!r}")
        stats.append(
            OperatorStat(str(plan), output_size=len(rel), seconds=seconds)
        )
        if budget is not None:
            budget.checkpoint(str(plan))
            budget.check_nodes(len(network), str(plan))
        return rel

    # ------------------------------------------------------------------ scans
    def _base_arrays(self, name: str):
        """Cached dictionary encoding of a base relation (columnar engine)."""
        base = self.db[name]
        key = (name, id(base), len(base))
        hit = self._base_cache.get(key)
        if hit is None:
            hit = _columnar.encode_base(base, self._interner)
            self._base_cache[key] = hit
        return hit

    def _scan_columnar(
        self, scan: Scan, network: AndOrNetwork
    ) -> ColumnarPLRelation:
        base = self.db[scan.relation]
        codes, probs = self._base_arrays(scan.relation)
        lineage = np.full(len(base), EPSILON, dtype=np.int64)
        if scan.terms is None:
            return ColumnarPLRelation(
                base.schema.attributes,
                network,
                self._interner,
                codes,
                lineage,
                probs,
                name=base.name,
            )
        if len(scan.terms) != base.schema.arity:
            raise PlanError(
                f"scan of {scan.relation}: {len(scan.terms)} terms for arity "
                f"{base.schema.arity}"
            )
        mask = np.ones(len(base), dtype=bool)
        var_first: dict[str, int] = {}
        for i, t in enumerate(scan.terms):
            if isinstance(t, Constant):
                code = self._interner.code_of(t.value)
                if code is None:
                    mask[:] = False
                else:
                    mask &= codes[:, i] == code
            elif t.name in var_first:
                mask &= codes[:, i] == codes[:, var_first[t.name]]
            else:
                var_first[t.name] = i
        idx = np.flatnonzero(mask)
        positions = list(var_first.values())
        return ColumnarPLRelation(
            tuple(var_first),
            network,
            self._interner,
            codes[idx][:, positions] if positions else np.empty(
                (idx.size, 0), dtype=np.int64
            ),
            lineage[idx],
            probs[idx],
            name=str(scan),
        )

    def _scan(self, scan: Scan, network: AndOrNetwork) -> PLRelation:
        base = self.db[scan.relation]
        if scan.terms is None:
            return PLRelation.from_base(base, network)
        if len(scan.terms) != base.schema.arity:
            raise PlanError(
                f"scan of {scan.relation}: {len(scan.terms)} terms for arity "
                f"{base.schema.arity}"
            )
        var_first: dict[str, int] = {}
        for i, t in enumerate(scan.terms):
            if isinstance(t, Variable) and t.name not in var_first:
                var_first[t.name] = i
        out = PLRelation(tuple(var_first), network, name=str(scan))
        for row, p in base.items():
            binding: dict[str, object] = {}
            ok = True
            for i, t in enumerate(scan.terms):
                if isinstance(t, Constant):
                    if row[i] != t.value:
                        ok = False
                        break
                else:
                    bound = binding.get(t.name, _UNSET)
                    if bound is _UNSET:
                        binding[t.name] = row[i]
                    elif bound != row[i]:
                        ok = False
                        break
            if ok:
                out.add(tuple(row[i] for i in var_first.values()), EPSILON, p)
        return out


_UNSET = object()
