"""pL-relations: relations with partial lineage (Definition 5.2).

A pL-relation ``(R, p, l, N)`` attaches to every tuple a probability ``p(t)``
and a lineage node ``l(t)`` of an And-Or network ``N``. Its semantics
(Eq. 5 of the paper) is a distribution over subsets ``ω ⊆ R``::

    ρ(ω) = Σ_z  N(z) · Π_{t∈ω} z_{l(t)} p(t) · Π_{t∉ω} (1 - z_{l(t)} p(t))

Intuition: each tuple exists iff its lineage node is true *and* an anonymous
independent coin of bias ``p(t)`` comes up heads. Tuples with ``l(t) = ε``
(the always-true node) are purely extensional; an independent probabilistic
relation is a pL-relation with ``l ≡ ε`` (Example 5.3).

The class below stores one pL-relation over a *shared* network: all
intermediate relations produced while evaluating one plan point into the same
growing :class:`~repro.core.network.AndOrNetwork`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator

from repro.core.network import EPSILON, AndOrNetwork
from repro.db.relation import ProbabilisticRelation
from repro.db.schema import Row
from repro.errors import CapacityError, ProbabilityError, SchemaError


class PLRelation:
    """A relation with partial lineage over a shared And-Or network.

    Rows are unique (duplicates only exist transiently between independent
    project and deduplication, and are represented as plain lists there).

    Parameters
    ----------
    attributes:
        Ordered attribute names.
    network:
        The shared And-Or network the lineage nodes refer to.
    name:
        Optional label for debugging / plan explanation.
    """

    __slots__ = ("attributes", "network", "name", "_rows", "_positions")

    def __init__(
        self,
        attributes: Iterable[str],
        network: AndOrNetwork,
        name: str = "",
    ) -> None:
        self.attributes = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"duplicate attributes: {self.attributes}")
        self.network = network
        self.name = name
        self._rows: Dict[Row, tuple[int, float]] = {}
        self._positions = {a: i for i, a in enumerate(self.attributes)}

    # ------------------------------------------------------------- creation
    @classmethod
    def from_base(
        cls,
        relation: ProbabilisticRelation,
        network: AndOrNetwork,
        attributes: Iterable[str] | None = None,
    ) -> "PLRelation":
        """Lift an independent relation: every tuple gets lineage ε.

        This is Example 5.3 — an independent relation is a pL-relation whose
        lineage column is constantly the trivial node.
        """
        out = cls(
            attributes if attributes is not None else relation.schema.attributes,
            network,
            name=relation.name,
        )
        for row, p in relation.items():
            out.add(row, EPSILON, p)
        return out

    def empty_like(self, attributes: Iterable[str] | None = None, name: str = "") -> "PLRelation":
        """A fresh empty pL-relation over the same network."""
        return PLRelation(
            self.attributes if attributes is None else attributes,
            self.network,
            name or self.name,
        )

    def to_columnar(self, interner=None):
        """Column-oriented view of this relation (same network, same rows).

        Returns a :class:`~repro.core.columnar.ColumnarPLRelation` whose key
        columns are dictionary-encoded against *interner* (a fresh
        :class:`~repro.core.columnar.ValueInterner` when omitted). Relations
        that will be joined must share one interner.
        """
        from repro.core import columnar

        return columnar.from_plrelation(
            self, interner if interner is not None else columnar.ValueInterner()
        )

    # --------------------------------------------------------------- access
    def add(self, row: Iterable, lineage: int, probability: float) -> None:
        """Insert a row with its lineage node and probability."""
        r = tuple(row)
        if len(r) != len(self.attributes):
            raise SchemaError(
                f"row {r!r} has arity {len(r)}, expected {len(self.attributes)}"
            )
        p = float(probability)
        if not 0.0 < p <= 1.0:
            raise ProbabilityError(f"row {r!r} probability {p} outside (0, 1]")
        if not 0 <= lineage < len(self.network):
            raise SchemaError(f"row {r!r} references unknown lineage node {lineage}")
        if r in self._rows:
            raise SchemaError(f"duplicate row {r!r} in pL-relation {self.name!r}")
        self._rows[r] = (lineage, p)

    def lineage(self, row: Row) -> int:
        """Lineage node id of *row*."""
        return self._rows[tuple(row)][0]

    def probability(self, row: Row) -> float:
        """Probability column of *row* (the extensional part, not the marginal)."""
        return self._rows[tuple(row)][1]

    def items(self) -> Iterator[tuple[Row, int, float]]:
        """Iterate over ``(row, lineage, probability)`` triples."""
        for row, (l, p) in self._rows.items():
            yield row, l, p

    def rows(self) -> list[Row]:
        """All rows in insertion order."""
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rows

    def index_of(self, attribute: str) -> int:
        """Position of *attribute* in the schema."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"pL-relation {self.name!r} has no attribute {attribute!r}; "
                f"attributes are {self.attributes}"
            ) from None

    def key(self, row: Row, attributes: Iterable[str]) -> Row:
        """Project *row* onto *attributes* (by value, not a relation op)."""
        return tuple(row[self._positions[a]] for a in attributes)

    def symbolic_rows(self) -> list[Row]:
        """Rows whose lineage is not ε — the intensional part of the relation."""
        return [r for r, (l, _) in self._rows.items() if l != EPSILON]

    def is_purely_extensional(self) -> bool:
        """True when every row has trivial lineage (the relation 'looks independent')."""
        return not self.symbolic_rows()

    # ------------------------------------------------------------ semantics
    def marginal_via_enumeration(self, row: Row) -> float:
        """Exact ``Pr(row ∈ ω)`` by brute force on the network (tests only)."""
        l, p = self._rows[tuple(row)]
        return p * self.network.brute_force_marginal({l: 1})

    def world_probability(self, world: Iterable[Row], max_nodes: int = 20) -> float:
        """``ρ(ω)`` by literal evaluation of Eq. 5 (exponential; tests only).

        Enumerates every assignment ``z`` of the network's non-ε nodes and sums
        ``N(z) · P_I(ω, z_{l(t)} p(t))``.
        """
        ω = frozenset(tuple(r) for r in world)
        unknown = ω - set(self._rows)
        if unknown:
            return 0.0
        nodes = [v for v in self.network.nodes() if v != EPSILON]
        if len(nodes) > max_nodes:
            raise CapacityError(
                f"{len(nodes)} network nodes exceed the enumeration limit"
            )
        total = 0.0
        for values in itertools.product((0, 1), repeat=len(nodes)):
            z = dict(zip(nodes, values))
            z[EPSILON] = 1
            nz = self.network.joint_probability(z)
            if nz == 0.0:
                continue
            pi = 1.0
            for row, (l, p) in self._rows.items():
                presence = z[l] * p
                pi *= presence if row in ω else 1.0 - presence
                if pi == 0.0:
                    break
            total += nz * pi
        return total

    def distribution(self, max_nodes: int = 20) -> dict[frozenset, float]:
        """The full distribution over subsets of rows (tests only)."""
        rows = self.rows()
        if len(rows) > 16:
            raise CapacityError(f"{len(rows)} rows exceed the distribution limit")
        out: dict[frozenset, float] = {}
        for mask in range(1 << len(rows)):
            ω = frozenset(rows[i] for i in range(len(rows)) if mask >> i & 1)
            out[ω] = self.world_probability(ω, max_nodes=max_nodes)
        return out

    def __repr__(self) -> str:
        sym = len(self.symbolic_rows())
        return (
            f"<PLRelation {self.name!r}({', '.join(self.attributes)}) "
            f"{len(self)} rows, {sym} symbolic>"
        )
