"""Top-k answer ranking by probability, in the style of [21].

Ré-Dalvi-Suciu's multisimulation observes that ranking the k most probable
answers does not require converging every answer's probability — only enough
precision to *separate* the top k from the rest. We implement the idea on
And-Or networks:

* every answer keeps a Hoeffding confidence interval, refined in sampling
  rounds (forward sampling of its lineage node, scaled by the answer's
  probability column);
* after each round, answers whose upper bound falls below the k-th best
  lower bound are pruned — no more samples are spent on clear losers;
* the loop ends when the top k are separated (or the budget runs out), and
  the survivors are optionally *finalised* with exact inference, so ranks and
  values are exact while losers only ever paid for cheap sampling.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.approximate import forward_sample_once
from repro.core.executor import EvaluationResult
from repro.core.inference import compute_marginal
from repro.core.network import EPSILON
from repro.db.schema import Row


@dataclass
class RankedAnswer:
    """One ranked answer with its probability enclosure."""

    row: Row
    low: float
    high: float
    exact: bool

    @property
    def midpoint(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass
class TopKReport:
    """Outcome of a top-k computation."""

    answers: list[RankedAnswer]
    rounds: int
    samples_spent: int
    pruned_early: int


def _hoeffding_radius(samples: int, delta: float) -> float:
    return math.sqrt(math.log(2.0 / delta) / (2.0 * samples))


def top_k_answers(
    result: EvaluationResult,
    k: int,
    *,
    rng: random.Random | None = None,
    batch: int = 200,
    max_rounds: int = 60,
    delta: float = 0.01,
    finalize_exact: bool = True,
) -> TopKReport:
    """The k most probable answers of an evaluation result.

    Parameters
    ----------
    result:
        A partial-lineage evaluation result (any number of answers).
    k:
        How many answers to return, ranked by probability.
    batch / max_rounds:
        Sampling budget: up to ``max_rounds`` rounds of ``batch`` samples per
        still-active answer.
    delta:
        Per-interval confidence parameter for the Hoeffding radii.
    finalize_exact:
        Run exact inference on the surviving candidates at the end, making
        the returned values (not just the ranking) exact.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    rng = rng or random.Random()
    rows = list(result.relation.items())
    if not rows:
        return TopKReport([], 0, 0, 0)
    k = min(k, len(rows))
    net = result.network

    # state per answer: [hits, samples]; ε answers are exact immediately.
    state: dict[Row, list[int]] = {}
    fixed: dict[Row, float] = {}
    for row, l, p in rows:
        if l == EPSILON:
            fixed[row] = p
        else:
            state[row] = [0, 0]
    lineage = {row: (l, p) for row, l, p in rows}

    active = set(state)
    samples_spent = 0
    rounds = 0
    pruned = 0

    def interval(row: Row) -> tuple[float, float]:
        if row in fixed:
            return fixed[row], fixed[row]
        hits, n = state[row]
        _, p = lineage[row]
        if n == 0:
            return 0.0, p
        radius = _hoeffding_radius(n, delta)
        mean = hits / n
        return p * max(0.0, mean - radius), p * min(1.0, mean + radius)

    def kth_lower() -> float:
        lows = sorted((interval(row)[0] for row in lineage), reverse=True)
        return lows[k - 1]

    while rounds < max_rounds and active:
        rounds += 1
        # one shared batch of joint forward samples refines every active row
        targets = {lineage[row][0] for row in active}
        relevant = sorted(net.ancestors(targets))
        for _ in range(batch):
            values = forward_sample_once(net, relevant, rng)
            for row in active:
                l, _ = lineage[row]
                st = state[row]
                st[0] += values[l]
                st[1] += 1
        samples_spent += batch

        threshold = kth_lower()
        for row in list(active):
            if interval(row)[1] < threshold:
                active.discard(row)
                pruned += 1
        # separation check: are the top-k intervals disjoint from the rest?
        ordered = sorted(lineage, key=lambda r: -interval(r)[0])
        top, rest = ordered[:k], ordered[k:]
        if all(
            interval(t)[0] >= interval(r)[1] for t in top for r in rest
        ):
            break

    candidates = sorted(lineage, key=lambda r: -interval(r)[1])[: max(k * 2, k)]
    answers: list[RankedAnswer] = []
    for row in candidates:
        l, p = lineage[row]
        if row in fixed:
            answers.append(RankedAnswer(row, fixed[row], fixed[row], True))
        elif finalize_exact:
            exact = p * compute_marginal(net, l)
            answers.append(RankedAnswer(row, exact, exact, True))
        else:
            low, high = interval(row)
            answers.append(RankedAnswer(row, low, high, False))
    answers.sort(key=lambda a: -a.midpoint)
    return TopKReport(answers[:k], rounds, samples_spent, pruned)
