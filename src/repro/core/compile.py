"""Compiling partial lineage back to DNF form.

Section 4.2 presents partial lineage as a *formula* mixing Boolean variables
(offending tuples) and numbers (anonymous independent events); the And-Or
network is its graph representation. This module performs the reverse
translation: the sub-network rooted at a lineage node becomes a monotone DNF
whose variables are

* the network's symbolic leaves (one per conditioned/offending tuple), and
* one anonymous variable per *noisy* edge (edge probability < 1), carrying
  that probability — the "numbers" of the paper's partial lineage.

The result is exactly the partial-lineage DNF: a strict simplification of the
full lineage (Section 4.2: "the partial lineage is always a strict subset of
the full lineage"), so any DNF inference engine — we use the exact DPLL of
:mod:`repro.lineage.exact` — runs on it at least as easily as on the full
lineage. The evaluator uses this as the fallback when the network's treewidth
exceeds the variable-elimination budget, mirroring the paper's "on this we
run any general purpose probabilistic inference algorithm".
"""

from __future__ import annotations

from repro.core.network import EPSILON, AndOrNetwork, NodeKind
from repro.errors import CapacityError
from repro.lineage.dnf import DNF, EventVar

#: Refuse to materialise partial-lineage DNFs beyond this many clauses.
MAX_CLAUSES = 500_000


def partial_lineage_dnf(
    net: AndOrNetwork, node: int, max_clauses: int = MAX_CLAUSES
) -> tuple[DNF, dict[EventVar, float]]:
    """The partial-lineage DNF of *node*, with its variable probabilities.

    Variables named ``("leaf", (id,))`` are the network's leaves; variables
    ``("edge", (child, index))`` are the anonymous events of noisy edges
    (index positions into the child's parent list). ε contributes no
    variable: it is the constant true.

    Raises
    ------
    CapacityError
        If the expansion exceeds *max_clauses* (And gates multiply clause
        counts; query-plan networks stay within the full-lineage size, but
        adversarial networks need the guard).

    Examples
    --------
    >>> net = AndOrNetwork()
    >>> x = net.add_leaf(0.5)
    >>> g = net.add_gate(NodeKind.OR, [(x, 0.25), (EPSILON, 0.1)])
    >>> f, probs = partial_lineage_dnf(net, g)
    >>> len(f)                      # x ∧ anon(.25)  ∨  anon(.1)
    2
    >>> sorted(probs.values())
    [0.1, 0.25, 0.5]
    """
    probs: dict[EventVar, float] = {}
    memo: dict[int, frozenset[frozenset[EventVar]]] = {
        EPSILON: frozenset([frozenset()])
    }

    def leaf_var(v: int) -> EventVar:
        var = EventVar("leaf", (v,))
        probs[var] = net.leaf_probability(v)
        return var

    def edge_var(child: int, index: int, q: float) -> EventVar:
        var = EventVar("edge", (child, index))
        probs[var] = q
        return var

    def expand(v: int) -> frozenset[frozenset[EventVar]]:
        hit = memo.get(v)
        if hit is not None:
            return hit
        kind = net.kind(v)
        if kind is NodeKind.LEAF:
            result = frozenset([frozenset([leaf_var(v)])])
        else:
            branches: list[frozenset[frozenset[EventVar]]] = []
            for i, (w, q) in enumerate(net.parents(v)):
                sub = expand(w)
                if q < 1.0:
                    anon = edge_var(v, i, q)
                    sub = frozenset(c | {anon} for c in sub)
                branches.append(sub)
            if kind is NodeKind.OR:
                result = frozenset().union(*branches)
            else:  # AND: cross product of the parents' clause sets
                acc: frozenset[frozenset[EventVar]] = frozenset([frozenset()])
                for sub in branches:
                    acc = frozenset(a | b for a in acc for b in sub)
                    if len(acc) > max_clauses:
                        raise CapacityError(
                            f"partial-lineage DNF for node {v} exceeds "
                            f"{max_clauses} clauses"
                        )
                result = acc
        if len(result) > max_clauses:
            raise CapacityError(
                f"partial-lineage DNF for node {v} exceeds {max_clauses} clauses"
            )
        memo[v] = result
        return result

    clauses = expand(node)
    used = {var for clause in clauses for var in clause}
    return DNF(clauses), {v: p for v, p in probs.items() if v in used}
