"""The paper's primary contribution: partial-lineage query evaluation.

Modules
-------
``network``
    And-Or networks (Section 5.1): noisy-gate Bayesian networks grown by the
    relational operators, with hash-based reuse of deterministic gates.
``plrelation``
    pL-relations (Definition 5.2): relations carrying a probability and a
    lineage node per tuple, interpreted against a shared And-Or network.
``operators``
    The mixed extensional/intensional operators of Section 5.3: selection,
    independent project, deduplication, conditioning, ``cSet``, and the
    pL-join.
``columnar``
    The vectorized columnar execution backend: dictionary-encoded pL-relation
    columns and NumPy kernels for every operator, allocating the same network
    nodes as the row engine.
``plan``
    Relational plan AST (Scan/Select/Project/Join) and the left-deep plan
    builder used for the Table 1 queries.
``executor``
    Plan evaluation over a probabilistic database, producing per-answer
    partial lineage, plus final inference.
``safety``
    Data-safety predicates and offending-tuple accounting (Section 3).
``inference``
    Exact marginal inference on And-Or networks by factor decomposition and
    variable elimination (Theorem 5.17's practical counterpart).
"""

from repro.core.network import AndOrNetwork, EPSILON, NodeKind
from repro.core.plrelation import PLRelation
from repro.core.columnar import ColumnarPLRelation, Comparison, ValueInterner
from repro.core.plan import (
    Filter,
    Join,
    Project,
    Scan,
    Select,
    left_deep_plan,
    plan_schema,
)
from repro.core.executor import EvaluationResult, PartialLineageEvaluator
from repro.core.inference import compute_marginal, compute_marginals
from repro.core.compile import partial_lineage_dnf
from repro.core.approximate import (
    forward_sample_marginal,
    forward_sample_marginals,
    hoeffding_samples,
    karp_luby_marginal,
    karp_luby_samples,
)
from repro.core.junction import (
    CliqueTree,
    all_marginals,
    build_clique_tree,
    calibrate_clique_tree,
)
from repro.core.treeprop import (
    is_tree_factorable,
    tree_marginals,
    tree_marginals_array,
)
from repro.core.optimizer import PlanChoice, choose_join_order, optimized_plan
from repro.core.topk import RankedAnswer, TopKReport, top_k_answers
from repro.core.whatif import Sensitivity, WhatIfAnalysis
from repro.core.executor import OffendingTuple
from repro.core.explain import explain, network_to_dot, result_to_dot
from repro.core.simplify import compact_result, constant_fold, prune

__all__ = [
    "AndOrNetwork",
    "NodeKind",
    "EPSILON",
    "PLRelation",
    "ColumnarPLRelation",
    "Comparison",
    "ValueInterner",
    "Scan",
    "Select",
    "Filter",
    "Project",
    "Join",
    "left_deep_plan",
    "plan_schema",
    "PartialLineageEvaluator",
    "EvaluationResult",
    "compute_marginal",
    "compute_marginals",
    "partial_lineage_dnf",
    "forward_sample_marginal",
    "forward_sample_marginals",
    "karp_luby_marginal",
    "hoeffding_samples",
    "karp_luby_samples",
    "CliqueTree",
    "all_marginals",
    "build_clique_tree",
    "calibrate_clique_tree",
    "is_tree_factorable",
    "tree_marginals",
    "tree_marginals_array",
    "PlanChoice",
    "choose_join_order",
    "optimized_plan",
    "top_k_answers",
    "TopKReport",
    "RankedAnswer",
    "WhatIfAnalysis",
    "Sensitivity",
    "OffendingTuple",
    "explain",
    "network_to_dot",
    "result_to_dot",
    "prune",
    "constant_fold",
    "compact_result",
]
