"""Network simplification: pruning and constant folding.

Evaluation grows one network for the whole plan; answers usually depend on a
fraction of it (tuples conditioned early can drop out of later joins), and
sub-networks whose leaves are all ε are really just numbers. Two
distribution-preserving rewrites:

* :func:`prune` — keep only the ancestors of the given roots, renumbering
  densely (inference already prunes internally; this makes the compactness
  available for storage, DOT export, and the SQL network table);
* :func:`constant_fold` — collapse every gate whose (transitive) support
  contains no symbolic leaf into an ε-edge: the sub-network's marginal is a
  plain number, so the gate's consumers can treat it exactly like the
  anonymous probabilities of Section 4.2.

Both return the new network plus the old→new node mapping so pL-relations
can be re-pointed; :func:`compact_result` applies them to a whole
:class:`~repro.core.executor.EvaluationResult`.
"""

from __future__ import annotations

from repro.core.executor import EvaluationResult
from repro.core.network import EPSILON, AndOrNetwork, NodeKind
from repro.core.plrelation import PLRelation
from repro.core.treeprop import tree_marginals


def prune(
    net: AndOrNetwork, roots: set[int]
) -> tuple[AndOrNetwork, dict[int, int]]:
    """The sub-network of the ancestors of *roots*, densely renumbered.

    Returns the new network and the mapping from surviving old ids to new
    ids (ε maps to ε). Marginals of surviving nodes are unchanged.
    """
    keep = net.ancestors(roots)
    keep.add(EPSILON)
    mapping: dict[int, int] = {}
    out = AndOrNetwork(hashing=net.hashing)
    mapping[EPSILON] = EPSILON
    for v in sorted(keep):
        if v == EPSILON:
            continue
        kind = net.kind(v)
        if kind is NodeKind.LEAF:
            mapping[v] = out.add_leaf(net.leaf_probability(v))
        else:
            mapping[v] = out.add_gate(
                kind, [(mapping[w], q) for w, q in net.parents(v)]
            )
    return out, mapping


def constant_support(net: AndOrNetwork) -> set[int]:
    """Nodes whose transitive support holds no symbolic leaf (only ε).

    The marginal of such a node is a constant; it carries no correlation.
    """
    constant: set[int] = {EPSILON}
    for v in net.nodes():
        if v == EPSILON:
            continue
        if net.kind(v) is NodeKind.LEAF:
            continue  # symbolic leaves are never constant
        if all(w in constant for w, _ in net.parents(v)):
            constant.add(v)
    return constant


def constant_fold(
    net: AndOrNetwork,
    roots: set[int],
    root_references: dict[int, int] | None = None,
) -> tuple[AndOrNetwork, dict[int, int], dict[int, float]]:
    """Replace *exclusively owned* constant sub-networks by their marginals.

    Folding is only sound when the folded event is consumed exactly once:
    a constant node shared by two consumers is a single random event, and
    replacing each edge by an independent anonymous probability would break
    their correlation. A constant node is therefore folded iff every node of
    its closure (except ε) has exactly one consumer — gate edges and answer
    rows both count (*root_references* supplies per-root row counts; default
    one per root).

    Folded parents become ε-edges carrying ``q · Pr(subtree)``; folded roots
    are returned in the third value for the caller's probability columns.
    The mapping sends survivors to new ids and folded nodes to ε.
    """
    keep = net.ancestors(roots)
    keep.add(EPSILON)
    constant = constant_support(net) & keep
    # constant sub-networks are ε-leafed forests: exact linear propagation
    values = tree_marginals(net, check=False)

    consumers: dict[int, int] = {v: 0 for v in keep}
    for v in keep:
        if v == EPSILON or net.kind(v) is NodeKind.LEAF:
            continue
        for w, _ in net.parents(v):
            if w != EPSILON:
                consumers[w] += 1
    for r in roots:
        consumers[r] += (root_references or {}).get(r, 1)

    def exclusively_owned(v: int) -> bool:
        closure = net.ancestors([v]) - {EPSILON}
        return all(
            consumers[u] <= 1 if u == v else consumers[u] == 1
            for u in closure
        )

    foldable = {v for v in constant if v != EPSILON and exclusively_owned(v)}
    swallowed: set[int] = set()
    for v in foldable:
        swallowed |= net.ancestors([v]) - {EPSILON}

    out = AndOrNetwork(hashing=net.hashing)
    mapping: dict[int, int] = {EPSILON: EPSILON}
    folded_roots: dict[int, float] = {
        r: values[r] for r in roots if r in foldable
    }
    for v in sorted(keep):
        if v == EPSILON:
            continue
        if v in swallowed:
            mapping[v] = EPSILON
            continue
        kind = net.kind(v)
        if kind is NodeKind.LEAF:
            mapping[v] = out.add_leaf(net.leaf_probability(v))
            continue
        parents = []
        for w, q in net.parents(v):
            if w in foldable:
                parents.append((EPSILON, q * values[w]))
            else:
                parents.append((mapping[w], q))
        mapping[v] = out.add_gate(kind, parents)
    return out, mapping, folded_roots


def compact_result(result: EvaluationResult) -> EvaluationResult:
    """A semantically identical result over a pruned, constant-folded network.

    Answer tuples whose lineage folded to a constant have the number absorbed
    into their probability column (becoming purely extensional rows).
    """
    from collections import Counter

    references = Counter(l for _, l, _ in result.relation.items())
    roots = set(references)
    net, mapping, folded = constant_fold(
        result.network, roots, dict(references)
    )
    rel = PLRelation(
        result.relation.attributes, net, name=result.relation.name
    )
    for row, l, p in result.relation.items():
        if l in folded:
            value = p * folded[l]
            if value > 0.0:
                rel.add(row, EPSILON, value)
        else:
            rel.add(row, mapping[l], p)
    return EvaluationResult(
        rel,
        net,
        list(result.stats),
        list(result.conditioned_tuples),
        workers=result.workers,
    )
