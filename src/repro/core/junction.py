"""Junction-tree message passing: Theorem 5.17, computing *all* marginals.

Theorem 5.17 computes marginals from a tree decomposition of the network's
graph in ``O(|G| · 16^tw)``. Variable elimination (``repro.core.inference``)
answers one marginal per run; this module implements the full junction-tree
(clique-tree) algorithm, which after a *single* upward/downward message pass
yields the marginal of every variable — the right tool when an evaluation
result has many answer tuples sharing one network component.

Pipeline:

1. decompose the network into ternary factors (the shared ``D(G)`` step);
2. build cliques from a min-fill elimination order (each variable's
   elimination clique), connect them into a tree by running intersection
   (the standard construction: clique *i* connects to the first later clique
   containing its residual separator);
3. two-pass sum-product message passing over the clique tree;
4. read each variable's marginal off any clique containing it.

Exactness is tested against both brute force and per-node VE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.inference import (
    Factor,
    MAX_FACTOR_VARS,
    multiply,
    network_factors,
    reduce_evidence,
    sum_out,
)
from repro.core.network import EPSILON, AndOrNetwork
from repro.errors import InferenceError
from repro.obs.trace import span as _span


@dataclass
class CliqueTree:
    """A calibrated clique tree over Boolean variables."""

    cliques: list[tuple[int, ...]]
    #: parent index per clique (-1 for the root)
    parents: list[int]
    #: calibrated beliefs, aligned with ``cliques``
    beliefs: list[Factor] = field(default_factory=list)
    #: variable -> index of one clique containing it, precomputed at
    #: calibration time so per-variable lookups are O(1) instead of a linear
    #: scan over all cliques (``all_marginals`` reads many variables off one
    #: calibrated tree).
    clique_of: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.clique_of:
            for i, clique in enumerate(self.cliques):
                for var in clique:
                    self.clique_of.setdefault(var, i)

    def marginal(self, var: int) -> float:
        """``Pr(var = 1)`` from a clique containing *var* (O(1) lookup)."""
        index = self.clique_of.get(var)
        if index is None:
            raise KeyError(f"variable {var} not covered by the clique tree")
        f = self.beliefs[index]
        for other in self.cliques[index]:
            if other != var:
                f = sum_out(f, other)
        total = float(f.table.sum())
        if total <= 0.0:
            raise InferenceError("clique tree holds zero mass")
        return float(f.table[1]) / total


def _elimination_cliques(
    factors: list[Factor],
) -> tuple[list[tuple[int, ...]], list[int], list[list[int]]]:
    """Min-fill elimination producing one clique per eliminated variable.

    Returns the cliques, the clique-tree parent pointers, and the assignment
    of each input factor to the first clique covering it.
    """
    adj: dict[int, set[int]] = {}
    for f in factors:
        for v in f.vars:
            adj.setdefault(v, set()).update(w for w in f.vars if w != v)

    cliques: list[tuple[int, ...]] = []
    eliminated_at: dict[int, int] = {}
    order: list[int] = []
    remaining = set(adj)
    work = {v: set(nbrs) for v, nbrs in adj.items()}
    while remaining:
        def fill_cost(v: int) -> tuple[int, int, int]:
            nbrs = [w for w in work[v] if w in remaining]
            missing = sum(
                1
                for i, a in enumerate(nbrs)
                for b in nbrs[i + 1 :]
                if b not in work[a]
            )
            return (missing, len(nbrs), v)

        v = min(remaining, key=fill_cost)
        nbrs = [w for w in work[v] if w in remaining and w != v]
        clique = tuple(sorted([v, *nbrs]))
        if len(clique) > MAX_FACTOR_VARS:
            raise InferenceError(
                f"clique of {len(clique)} variables exceeds the budget; "
                f"treewidth too high for the junction tree"
            )
        cliques.append(clique)
        eliminated_at[v] = len(cliques) - 1
        order.append(v)
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1 :]:
                work[a].add(b)
                work[b].add(a)
        remaining.discard(v)

    # connect clique i to the clique where the earliest-eliminated variable
    # of its separator (clique minus its own variable) is eliminated
    position = {v: i for i, v in enumerate(order)}
    parents: list[int] = []
    for i, clique in enumerate(cliques):
        separator = [v for v in clique if v != order[i]]
        if not separator:
            parents.append(-1)
            continue
        nxt = min(separator, key=position.__getitem__)
        parents.append(eliminated_at[nxt])

    assignment: list[list[int]] = [[] for _ in cliques]
    for idx, f in enumerate(factors):
        home = min(
            (position[v] for v in f.vars),
            default=None,
        )
        if home is None:  # constant factor: park it at the root-most clique
            assignment[0].append(idx)
        else:
            assignment[eliminated_at[order[home]]].append(idx)
    return cliques, parents, assignment


def _unit_factor(vars_: tuple[int, ...]) -> Factor:
    return Factor(vars_, np.ones((2,) * len(vars_)))


def build_clique_tree(
    net: AndOrNetwork,
    relevant: set[int] | None = None,
    evidence: dict[int, int] | None = None,
) -> CliqueTree:
    """Build and calibrate a clique tree for (part of) a network.

    Parameters
    ----------
    net:
        The And-Or network.
    relevant:
        Ancestor-closed node set to cover (defaults to the whole network).
    evidence:
        Observed node values, folded into the potentials before calibration.
        Because :meth:`CliqueTree.marginal` renormalises, marginals read off
        the calibrated tree are then *conditional* on the evidence.
    """
    factors = network_factors(net, relevant)
    scalar = 1.0
    if evidence:
        reduced = []
        for f in (reduce_evidence(f, evidence) for f in factors):
            if f.vars:
                reduced.append(f)
            else:
                scalar *= float(f.table)
        factors = reduced
    if not factors:
        raise InferenceError("nothing to calibrate: no variables remain")
    del scalar  # beliefs are renormalised per marginal; the constant cancels
    return calibrate_clique_tree(factors)


def calibrate_clique_tree(
    factors: list[Factor],
    elimination: tuple[list[tuple[int, ...]], list[int], list[list[int]]]
    | None = None,
    budget=None,
) -> CliqueTree:
    """Calibrate a clique tree directly from decomposed factors.

    *elimination* optionally supplies a precomputed
    :func:`_elimination_cliques` result so callers that already ran the
    min-fill pass (e.g. the component-sliced driver, which uses the clique
    sizes as its width estimate) do not pay for it twice. *budget* is an
    optional :class:`~repro.resilience.QueryBudget` checkpointed once per
    clique during each pass.
    """
    if elimination is None:
        elimination = _elimination_cliques(factors)
    cliques, parents, assignment = elimination
    with _span("calibrate_clique_tree") as sp:
        sp.add("factors", len(factors))
        sp.add("cliques", len(cliques))
        potentials: list[Factor] = []
        for i, clique in enumerate(cliques):
            if budget is not None:
                budget.checkpoint("junction")
            f = _unit_factor(clique)
            for idx in assignment[i]:
                f = multiply(f, factors[idx])
            potentials.append(f)

        children: list[list[int]] = [[] for _ in cliques]
        roots: list[int] = []
        for i, parent in enumerate(parents):
            if parent < 0:
                roots.append(i)
            else:
                children[parent].append(i)

        # upward pass (children before parents: cliques are already in
        # elimination order, and parents always come later)
        upward: list[Factor | None] = [None] * len(cliques)
        for i, clique in enumerate(cliques):
            f = potentials[i]
            for child in children[i]:
                f = multiply(f, upward[child])
            message = f
            if parents[i] >= 0:
                separator = set(clique) & set(cliques[parents[i]])
                for v in clique:
                    if v not in separator:
                        message = sum_out(message, v)
            upward[i] = message

        # downward pass: parents carry higher indices than their children (a
        # clique's parent is eliminated later), so descending order visits
        # every parent before its children and downward[child] is ready in
        # time
        beliefs: list[Factor | None] = [None] * len(cliques)
        downward: list[Factor | None] = [None] * len(cliques)
        for i in range(len(cliques) - 1, -1, -1):
            f = potentials[i]
            for child in children[i]:
                f = multiply(f, upward[child])
            if parents[i] >= 0:
                f = multiply(f, downward[i])
            beliefs[i] = f
            for child in children[i]:
                g = potentials[i]
                for other in children[i]:
                    if other != child:
                        g = multiply(g, upward[other])
                if parents[i] >= 0:
                    g = multiply(g, downward[i])
                separator = set(cliques[i]) & set(cliques[child])
                for v in cliques[i]:
                    if v not in separator:
                        g = sum_out(g, v)
                downward[child] = g

    return CliqueTree(cliques=cliques, parents=parents, beliefs=list(beliefs))


def all_marginals(
    net: AndOrNetwork, nodes: list[int] | None = None
) -> dict[int, float]:
    """Marginals ``Pr(v=1)`` for many nodes via one calibration per component.

    Functionally equivalent to calling
    :func:`repro.core.inference.compute_marginal` per node, but the clique
    tree is calibrated once per connected component, so the cost is shared.
    """
    targets = [v for v in (nodes if nodes is not None else list(net.nodes()))]
    out: dict[int, float] = {}
    components = net.components()
    by_component: dict[int, list[int]] = {}
    for v in dict.fromkeys(targets):
        if v == EPSILON:
            out[EPSILON] = 1.0
            continue
        by_component.setdefault(components.of(v), []).append(v)
    with _span("all_marginals", targets=len(targets)) as sp:
        sp.add("components", len(by_component))
        for grouped in by_component.values():
            # barren-node pruning: only the targets' ancestors matter
            relevant = net.ancestors(grouped)
            relevant.add(EPSILON)
            tree = build_clique_tree(net, relevant)
            for v in grouped:
                out[v] = tree.marginal(v)
    return out
