"""Bottom-up probability propagation for tree-factorable networks.

Section 8 closes with the question whether "the second stage symbolic
evaluation that we currently do outside the database can be converted to
database operators … particularly advantageous when the scale of the data is
huge and treewidth is very small". The smallest-treewidth case is a network
where every gate's parents are probabilistically independent — then the gate
equations themselves *are* the inference::

    Pr(v) = 1 - Π (1 - q·Pr(w))     (Or)
    Pr(v) = Π q·Pr(w)               (And)

one aggregation per node, bottom-up, no tables over joint assignments at
all. We call such networks **tree-factorable**: every gate's distinct
parents have pairwise-disjoint ancestor sets (no variable feeds a gate along
two paths). Hash-collapsed networks of nearly-safe instances are typically
of this shape — e.g. the whole Section 5.4 family.

:func:`is_tree_factorable` decides the property; :func:`tree_marginals`
propagates. :func:`tree_marginals_array` is the batched kernel behind it:
instead of a per-node Python recurrence it groups gates by depth and runs
one ``np.multiply.reduceat`` sweep per level, so the float work of a whole
level — typically thousands of gates on benchmark networks — is a handful
of NumPy calls. The SQL twin lives in :mod:`repro.sqlbackend.inference`.
"""

from __future__ import annotations

import numpy as np

from repro.core.network import EPSILON, AndOrNetwork, NodeKind
from repro.errors import InferenceError
from repro.obs.trace import span as _span


def is_tree_factorable(net: AndOrNetwork) -> bool:
    """True iff every gate's distinct parents share no ancestors.

    Equivalent to: probability propagation through the gate equations is
    exact. ε is exempt (a constant correlates nothing).

    Examples
    --------
    >>> net = AndOrNetwork()
    >>> x, y = net.add_leaf(0.5), net.add_leaf(0.5)
    >>> g = net.add_gate(NodeKind.OR, [(x, 1.0), (y, 1.0)])
    >>> is_tree_factorable(net)
    True
    >>> h = net.add_gate(NodeKind.AND, [(g, 1.0), (x, 1.0)])  # x reaches h twice
    >>> is_tree_factorable(net)
    False
    """
    ancestors: dict[int, frozenset[int]] = {EPSILON: frozenset()}
    for v in net.nodes():
        if v == EPSILON:
            continue
        if net.kind(v) is NodeKind.LEAF:
            ancestors[v] = frozenset((v,))
            continue
        combined: set[int] = set()
        parent_ids = [w for w, _ in net.parents(v)]
        for w in parent_ids:
            anc = ancestors[w]
            if combined & anc:
                return False
            combined |= anc
        # a duplicated parent correlates with itself (unless it is ε)
        non_eps = [w for w in parent_ids if w != EPSILON]
        if len(set(non_eps)) != len(non_eps):
            return False
        ancestors[v] = frozenset(combined | {v})
    return True


def tree_marginals_array(
    net: AndOrNetwork, check: bool = True, budget=None
) -> np.ndarray:
    """Marginals of every node as a ``float64`` array — the batched kernel.

    One cheap Python pass flattens the gates into CSR arrays and assigns each
    gate its DAG depth (1 + max parent depth); gates are then processed level
    by level, each level's products computed with a single
    ``np.multiply.reduceat`` over the level's concatenated parent slices::

        And:  Pr(v) = Π q·Pr(w)             (product over the gate's slice)
        Or:   Pr(v) = 1 - Π (1 - q·Pr(w))

    All parents of a depth-``d`` gate sit at depths below ``d``, so every
    level reads only finished entries. The number of NumPy calls is
    proportional to the DAG depth (the plan depth on query networks), not to
    the gate count.

    *budget* is an optional :class:`~repro.resilience.QueryBudget`
    checkpointed before the factorability check and before the sweep (the
    sweep itself is a handful of NumPy calls, too coarse to interrupt).

    Raises
    ------
    InferenceError
        If *check* is on and the network is not tree-factorable (the
        propagation would silently compute wrong numbers otherwise).
    """
    if budget is not None:
        budget.checkpoint("treeprop")
    if check and not is_tree_factorable(net):
        raise InferenceError(
            "network is not tree-factorable; use compute_marginal instead"
        )
    if budget is not None:
        budget.checkpoint("treeprop")
    with _span("tree_marginals_array", nodes=len(net)):
        return _tree_marginals_array(net)


def _tree_marginals_array(net: AndOrNetwork) -> np.ndarray:
    n = len(net)
    out = np.zeros(n, dtype=np.float64)
    gates: list[int] = []
    depth: list[int] = []
    flat_parents: list[int] = []
    flat_q: list[float] = []
    counts: list[int] = []
    is_or: list[bool] = []
    node_depth = [0] * n
    for v in net.nodes():
        kind = net.kind(v)
        if kind is NodeKind.LEAF:
            out[v] = net.leaf_probability(v)
            continue
        parents = net.parents(v)
        d = 0
        for w, q in parents:
            flat_parents.append(w)
            flat_q.append(q)
            if node_depth[w] > d:
                d = node_depth[w]
        node_depth[v] = d + 1
        gates.append(v)
        depth.append(d + 1)
        counts.append(len(parents))
        is_or.append(kind is NodeKind.OR)
    if not gates:
        return out
    gate_ids = np.asarray(gates, dtype=np.int64)
    depths = np.asarray(depth, dtype=np.int64)
    counts_arr = np.asarray(counts, dtype=np.int64)
    parents_arr = np.asarray(flat_parents, dtype=np.int64)
    q_arr = np.asarray(flat_q, dtype=np.float64)
    or_mask = np.asarray(is_or, dtype=bool)
    starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts_arr)]
    )
    # Reorder the flat slices level by level so each level's gates form one
    # contiguous block that a single reduceat can sweep.
    order = np.argsort(depths, kind="stable")
    seg_starts = starts[order]
    seg_counts = counts_arr[order]
    total = int(seg_counts.sum())
    gather = np.repeat(seg_starts, seg_counts) + (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(seg_counts) - seg_counts, seg_counts)
    )
    parents_lv = parents_arr[gather]
    q_lv = q_arr[gather]
    offsets_lv = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(seg_counts)]
    )
    gates_lv = gate_ids[order]
    or_lv = or_mask[order]
    depths_lv = depths[order]
    level_bounds = np.searchsorted(
        depths_lv, np.arange(1, int(depths_lv[-1]) + 2)
    )
    lo = 0
    for hi in level_bounds.tolist():
        if hi == lo:
            continue
        sl = slice(int(offsets_lv[lo]), int(offsets_lv[hi]))
        contrib = q_lv[sl] * out[parents_lv[sl]]
        ors = or_lv[lo:hi]
        # Or gates multiply failure terms (1 - q·p); flip their slice so one
        # reduceat serves both kinds, then flip the products back.
        or_elems = np.repeat(ors, seg_counts[lo:hi])
        contrib[or_elems] = 1.0 - contrib[or_elems]
        probs = np.multiply.reduceat(contrib, offsets_lv[lo:hi] - offsets_lv[lo])
        probs[ors] = 1.0 - probs[ors]
        out[gates_lv[lo:hi]] = probs
        lo = hi
    return out


def tree_marginals(net: AndOrNetwork, check: bool = True) -> dict[int, float]:
    """Marginals of *every* node by one bottom-up pass (linear time).

    Delegates to the batched :func:`tree_marginals_array` kernel and returns
    the dict view keyed by node id.

    Raises
    ------
    InferenceError
        If *check* is on and the network is not tree-factorable (the
        propagation would silently compute wrong numbers otherwise).

    Examples
    --------
    >>> net = AndOrNetwork()
    >>> u, v = net.add_leaf(0.3), net.add_leaf(0.8)
    >>> w = net.add_gate(NodeKind.OR, [(u, 0.5), (v, 0.5)])
    >>> round(tree_marginals(net)[w], 6)
    0.49
    """
    arr = tree_marginals_array(net, check=check)
    return dict(enumerate(arr.tolist()))
