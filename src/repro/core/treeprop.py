"""Bottom-up probability propagation for tree-factorable networks.

Section 8 closes with the question whether "the second stage symbolic
evaluation that we currently do outside the database can be converted to
database operators … particularly advantageous when the scale of the data is
huge and treewidth is very small". The smallest-treewidth case is a network
where every gate's parents are probabilistically independent — then the gate
equations themselves *are* the inference::

    Pr(v) = 1 - Π (1 - q·Pr(w))     (Or)
    Pr(v) = Π q·Pr(w)               (And)

one aggregation per node, bottom-up, no tables over joint assignments at
all. We call such networks **tree-factorable**: every gate's distinct
parents have pairwise-disjoint ancestor sets (no variable feeds a gate along
two paths). Hash-collapsed networks of nearly-safe instances are typically
of this shape — e.g. the whole Section 5.4 family.

:func:`is_tree_factorable` decides the property; :func:`tree_marginals`
propagates. The SQL twin lives in :mod:`repro.sqlbackend.inference`.
"""

from __future__ import annotations

from repro.core.network import EPSILON, AndOrNetwork, NodeKind
from repro.errors import InferenceError


def is_tree_factorable(net: AndOrNetwork) -> bool:
    """True iff every gate's distinct parents share no ancestors.

    Equivalent to: probability propagation through the gate equations is
    exact. ε is exempt (a constant correlates nothing).

    Examples
    --------
    >>> net = AndOrNetwork()
    >>> x, y = net.add_leaf(0.5), net.add_leaf(0.5)
    >>> g = net.add_gate(NodeKind.OR, [(x, 1.0), (y, 1.0)])
    >>> is_tree_factorable(net)
    True
    >>> h = net.add_gate(NodeKind.AND, [(g, 1.0), (x, 1.0)])  # x reaches h twice
    >>> is_tree_factorable(net)
    False
    """
    ancestors: dict[int, frozenset[int]] = {EPSILON: frozenset()}
    for v in net.nodes():
        if v == EPSILON:
            continue
        if net.kind(v) is NodeKind.LEAF:
            ancestors[v] = frozenset((v,))
            continue
        combined: set[int] = set()
        parent_ids = [w for w, _ in net.parents(v)]
        for w in parent_ids:
            anc = ancestors[w]
            if combined & anc:
                return False
            combined |= anc
        # a duplicated parent correlates with itself (unless it is ε)
        non_eps = [w for w in parent_ids if w != EPSILON]
        if len(set(non_eps)) != len(non_eps):
            return False
        ancestors[v] = frozenset(combined | {v})
    return True


def tree_marginals(net: AndOrNetwork, check: bool = True) -> dict[int, float]:
    """Marginals of *every* node by one bottom-up pass (linear time).

    Raises
    ------
    InferenceError
        If *check* is on and the network is not tree-factorable (the
        propagation would silently compute wrong numbers otherwise).

    Examples
    --------
    >>> net = AndOrNetwork()
    >>> u, v = net.add_leaf(0.3), net.add_leaf(0.8)
    >>> w = net.add_gate(NodeKind.OR, [(u, 0.5), (v, 0.5)])
    >>> round(tree_marginals(net)[w], 6)
    0.49
    """
    if check and not is_tree_factorable(net):
        raise InferenceError(
            "network is not tree-factorable; use compute_marginal instead"
        )
    out: dict[int, float] = {}
    for v in net.nodes():
        kind = net.kind(v)
        if kind is NodeKind.LEAF:
            out[v] = net.leaf_probability(v)
        elif kind is NodeKind.OR:
            failure = 1.0
            for w, q in net.parents(v):
                failure *= 1.0 - q * out[w]
            out[v] = 1.0 - failure
        else:
            prob = 1.0
            for w, q in net.parents(v):
                prob *= q * out[w]
            out[v] = prob
    return out
