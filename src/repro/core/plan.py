"""Relational query plans.

A plan is a tree of :class:`Scan`, :class:`Select`, :class:`Project`, and
:class:`Join` nodes. Attribute names inside a plan are *query variable names*:
a :class:`Scan` binds the base relation's columns to the atom's terms, so the
rest of the plan joins and projects on variables, exactly as the plans of
Table 1 ("join order ``R1, S1, R2``") are written in the paper.

:func:`left_deep_plan` builds the left-deep plan for a conjunctive query and a
join order, inserting an early projection after every join that drops
variables no longer needed — the shape used throughout the paper's
experiments (Fig. 4 shows such a pipeline for ``q :- R(x), S(x,y), T(y)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.db.database import ProbabilisticDatabase
from repro.errors import PlanError
from repro.query.syntax import Atom, ConjunctiveQuery, Term, Variable

Plan = Union["Scan", "Select", "Filter", "Project", "Join"]


@dataclass(frozen=True)
class Scan:
    """Read a base relation, binding its columns to an atom's terms.

    ``terms`` may be ``None`` to read the relation as-is (attribute names from
    the schema). Otherwise, constant terms become selections, repeated
    variables become equality selections, and the output schema is the
    sequence of distinct variable names.
    """

    relation: str
    terms: tuple[Term, ...] | None = None

    def __str__(self) -> str:
        if self.terms is None:
            return self.relation
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class Select:
    """Equality selection ``σ_{A=a, ...}`` over a sub-plan."""

    child: Plan
    conditions: tuple[tuple[str, object], ...]

    def __str__(self) -> str:
        conds = ", ".join(f"{a}={v!r}" for a, v in self.conditions)
        return f"σ[{conds}]({self.child})"


@dataclass(frozen=True)
class Filter:
    """Comparison selection ``σ_{A ⋚ c, ...}`` over a sub-plan.

    *predicates* are :class:`repro.core.columnar.Comparison` instances (their
    conjunction); both pL engines compile them to vectorized masks /
    SQL ``WHERE`` clauses via ``select_where``. The plan builder pushes
    filters below all joins, directly onto the scan binding the compared
    variable, so dissociated safe plans stay selective.
    """

    child: Plan
    predicates: tuple

    def __str__(self) -> str:
        preds = ", ".join(
            f"{c.attribute} {c.op} {c.value!r}" for c in self.predicates
        )
        return f"σ[{preds}]({self.child})"


@dataclass(frozen=True)
class Project:
    """Projection with duplicate elimination onto the named attributes."""

    child: Plan
    attributes: tuple[str, ...]

    def __str__(self) -> str:
        return f"π[{', '.join(self.attributes) or '∅'}]({self.child})"


@dataclass(frozen=True)
class Join:
    """Natural equi-join of two sub-plans on the named shared attributes.

    ``on`` may be empty, denoting a cross product (used for disconnected
    queries, where it is always 1-1 at the Boolean level).
    """

    left: Plan
    right: Plan
    on: tuple[str, ...]

    def __str__(self) -> str:
        return f"({self.left} ⋈[{','.join(self.on)}] {self.right})"


def scan_schema(scan: Scan, db: ProbabilisticDatabase) -> tuple[str, ...]:
    """Output attributes of a scan: distinct variable names, or base columns."""
    rel = db[scan.relation]
    if scan.terms is None:
        return rel.schema.attributes
    if len(scan.terms) != rel.schema.arity:
        raise PlanError(
            f"scan of {scan.relation} binds {len(scan.terms)} terms but the "
            f"relation has arity {rel.schema.arity}"
        )
    seen: list[str] = []
    for t in scan.terms:
        if isinstance(t, Variable) and t.name not in seen:
            seen.append(t.name)
    return tuple(seen)


def plan_schema(plan: Plan, db: ProbabilisticDatabase) -> tuple[str, ...]:
    """Output attributes of a plan; validates attribute references throughout.

    Raises
    ------
    PlanError
        On unknown attributes, arity mismatches, or join attributes missing
        from either side.
    """
    if isinstance(plan, Scan):
        return scan_schema(plan, db)
    if isinstance(plan, Select):
        schema = plan_schema(plan.child, db)
        for a, _ in plan.conditions:
            if a not in schema:
                raise PlanError(f"selection on unknown attribute {a!r} of {schema}")
        return schema
    if isinstance(plan, Filter):
        schema = plan_schema(plan.child, db)
        for c in plan.predicates:
            if c.attribute not in schema:
                raise PlanError(
                    f"filter on unknown attribute {c.attribute!r} of {schema}"
                )
        return schema
    if isinstance(plan, Project):
        schema = plan_schema(plan.child, db)
        for a in plan.attributes:
            if a not in schema:
                raise PlanError(f"projection on unknown attribute {a!r} of {schema}")
        return tuple(plan.attributes)
    if isinstance(plan, Join):
        left = plan_schema(plan.left, db)
        right = plan_schema(plan.right, db)
        for a in plan.on:
            if a not in left or a not in right:
                raise PlanError(
                    f"join attribute {a!r} missing from {left} / {right}"
                )
        overlap = set(left) & set(right)
        if overlap - set(plan.on):
            raise PlanError(
                f"attributes {sorted(overlap - set(plan.on))} appear on both "
                f"sides but are not join attributes"
            )
        return left + tuple(a for a in right if a not in set(plan.on))
    raise PlanError(f"unknown plan node {plan!r}")


def left_deep_plan(
    query: ConjunctiveQuery,
    join_order: Sequence[str] | None = None,
    *,
    early_projection: bool = True,
) -> Plan:
    """Build the left-deep plan for *query* following *join_order*.

    Parameters
    ----------
    query:
        A self-join-free conjunctive query. The final projection is onto the
        head variables (empty head = Boolean query, final ``π_∅``).
    join_order:
        Relation names in the order they are joined (defaults to body order).
        Must be a permutation of the query's relations, and each prefix must
        stay connected unless cross products are acceptable.
    early_projection:
        Insert a projection after each join dropping variables that no later
        atom or the head needs (the paper's plans do this; disabling it is
        useful for ablations).

    Examples
    --------
    >>> from repro.query.parser import parse_query
    >>> q = parse_query("q() :- R(x), S(x,y), T(y)")
    >>> print(left_deep_plan(q, ["R", "S", "T"]))
    π[∅]((π[y]((R(x) ⋈[x] S(x, y))) ⋈[y] T(y)))
    """
    order = list(join_order) if join_order is not None else [
        a.relation for a in query.atoms
    ]
    atom_by_name = {a.relation: a for a in query.atoms}
    if sorted(order) != sorted(atom_by_name):
        raise PlanError(
            f"join order {order} is not a permutation of relations "
            f"{sorted(atom_by_name)}"
        )
    head_vars = {v.name for v in query.head}

    def atom_vars(atom: Atom) -> set[str]:
        return {v.name for v in atom.variables()}

    # Comparison pushdown: each predicate lands on the first scan (in join
    # order) that binds its variable, below every join.
    from repro.core.columnar import Comparison

    pending = list(query.comparisons)

    def scan_of(atom: Atom) -> Plan:
        bound = atom_vars(atom)
        mine = [c for c in pending if c.variable.name in bound]
        scan: Plan = Scan(atom.relation, atom.terms)
        if not mine:
            return scan
        for c in mine:
            pending.remove(c)
        return Filter(
            scan,
            tuple(Comparison(c.variable.name, c.op, c.value) for c in mine),
        )

    first = atom_by_name[order[0]]
    plan: Plan = scan_of(first)
    current = atom_vars(first)
    for i, name in enumerate(order[1:], start=1):
        atom = atom_by_name[name]
        shared = tuple(sorted(current & atom_vars(atom)))
        plan = Join(plan, scan_of(atom), on=shared)
        current |= atom_vars(atom)
        if early_projection:
            needed = set(head_vars)
            for later in order[i + 1 :]:
                needed |= atom_vars(atom_by_name[later])
            keep = current & needed
            if keep != current:
                plan = Project(plan, tuple(sorted(keep)))
                current = keep
    final = tuple(v.name for v in query.head)
    if isinstance(plan, Project) and plan.attributes == final:
        return plan
    return Project(plan, final)


def plan_operators(plan: Plan) -> list[Plan]:
    """All operator nodes of a plan, leaves first (post-order)."""
    out: list[Plan] = []

    def walk(p: Plan) -> None:
        if isinstance(p, Join):
            walk(p.left)
            walk(p.right)
        elif isinstance(p, (Select, Filter, Project)):
            walk(p.child)
        out.append(p)

    walk(plan)
    return out
