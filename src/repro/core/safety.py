"""Data safety analysis (Section 3).

A plan is *data safe* on an instance when every operator's extensional output
coincides with the possible-worlds semantics (Definition 3.1). Selections and
projections always are; a join is data safe iff every uncertain tuple has at
most one join partner (Proposition 3.2). The tuples violating this are the
*offending tuples* (Definition 3.4) — the paper's measure of how far an
instance is from safety, and exactly the tuples the evaluator conditions on.

This module provides the instance-level predicates on base relations, and a
plan-level report assembled by running the partial-lineage evaluator (the
offending sets of intermediate operators depend on intermediate results, so
running the — cheap, extensional-dominated — evaluation is the natural way to
obtain them; inference is *not* run for a report).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.executor import EvaluationResult, PartialLineageEvaluator
from repro.core.plan import Plan
from repro.db.database import ProbabilisticDatabase
from repro.db.relation import ProbabilisticRelation
from repro.db.schema import Row


def join_offending_tuples(
    left: ProbabilisticRelation,
    right: ProbabilisticRelation,
    left_on: Sequence[str],
    right_on: Sequence[str],
) -> list[Row]:
    """Offending tuples of *left* for the join ``left ⋈ right`` (Prop. 3.2).

    A tuple of *left* offends when it is uncertain and matches more than one
    tuple of *right* on the join attributes. All partners count, certain or
    not: sharing an uncertain tuple across several outputs correlates them.
    """
    fanout: dict[Row, int] = {}
    ridx = right.schema.indices_of(right_on)
    for row in right:
        key = tuple(row[i] for i in ridx)
        fanout[key] = fanout.get(key, 0) + 1
    lidx = left.schema.indices_of(left_on)
    return [
        row
        for row, p in left.items()
        if p < 1.0 and fanout.get(tuple(row[i] for i in lidx), 0) > 1
    ]


def join_is_data_safe(
    left: ProbabilisticRelation,
    right: ProbabilisticRelation,
    left_on: Sequence[str],
    right_on: Sequence[str],
) -> bool:
    """Proposition 3.2: the join is data safe iff it is 1-1 on uncertain tuples."""
    return not join_offending_tuples(left, right, left_on, right_on) and not (
        join_offending_tuples(right, left, right_on, left_on)
    )


@dataclass
class PlanSafetyReport:
    """How (un)safe a plan is on a specific instance.

    ``offending_per_operator`` lists, for every join in evaluation order, the
    number of tuples that had to be conditioned. A data-safe plan has an empty
    symbolic part: zero offending tuples and a one-node network.
    """

    offending_per_operator: list[tuple[str, int]]
    total_offending: int
    network_size: int
    is_data_safe: bool

    @classmethod
    def from_result(cls, result: EvaluationResult) -> "PlanSafetyReport":
        """Extract the report from an evaluation result."""
        per_op = [
            (s.operator, s.conditioned) for s in result.stats if s.conditioned or "⋈" in s.operator
        ]
        return cls(
            offending_per_operator=per_op,
            total_offending=result.offending_count,
            network_size=len(result.network),
            is_data_safe=result.is_data_safe,
        )


def analyze_plan(plan: Plan, db: ProbabilisticDatabase) -> PlanSafetyReport:
    """Evaluate *plan* on *db* (no inference) and report its data safety.

    The number of offending tuples is the paper's distance-from-safety
    measure: 0 means the whole evaluation was extensional; larger values mean
    more symbolic processing was needed.
    """
    result = PartialLineageEvaluator(db).evaluate(plan)
    return PlanSafetyReport.from_result(result)
