"""Columnar pL-relations: the vectorized execution backend (Section 5.3).

The row-at-a-time operators in :mod:`repro.core.operators` walk Python dicts
tuple by tuple, so on large instances the *extensional* arithmetic — the part
the paper proves is linear-time — dominates wall-clock. This module stores a
pL-relation column-wise and reimplements every operator as NumPy array
kernels:

* a ``float64`` probability column and an ``int64`` lineage-node column;
* dictionary-encoded key columns: every attribute value is interned once in a
  shared :class:`ValueInterner` and the relation stores only its ``int64``
  code, so selections, join-key comparisons, and group-bys are integer
  array operations;
* ``select_eq`` is a boolean mask; ``independent_project`` groups by
  (key, lineage) via ``np.unique`` and merges probabilities with a log-space
  ``1 - Π(1-p)`` grouped reduction; ``deduplicate`` batches whole Or groups
  into one :meth:`~repro.core.network.AndOrNetwork.add_gates` call; ``cset``
  is an ``np.unique`` fanout count plus a ``p < 1`` mask; ``condition``
  bulk-allocates leaves/gates; ``pl_join`` is a sort + ``searchsorted``
  key join that splits numeric-multiply pairs from gate-needing pairs in one
  vectorized pass.

Every kernel preserves the row engine's *operation order* — first-occurrence
group ordering, left-major/right-stable match ordering, row-order
conditioning — so an evaluation through this backend allocates exactly the
same network nodes (same ids, same structure) as the reference row engine,
with probabilities agreeing to float round-off. ``tests/property`` checks
this equivalence on random databases and plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.network import EPSILON, AndOrNetwork, NodeKind
from repro.core.plrelation import PLRelation
from repro.db.relation import ProbabilisticRelation
from repro.db.schema import Row
from repro.errors import CapacityError, SchemaError
from repro.obs.trace import span as _span

__all__ = [
    "ValueInterner",
    "ColumnarPLRelation",
    "ColumnarProjected",
    "Comparison",
    "from_base",
    "select_eq",
    "select_where",
    "independent_project",
    "deduplicate",
    "project",
    "condition",
    "cset",
    "cset_mask",
    "pl_join_raw",
    "pl_join",
]


class ValueInterner:
    """Append-only dictionary encoding of attribute values.

    Every distinct value (by ``==``/``hash``, exactly the row engine's tuple
    equality) gets one non-negative ``int64`` code; all columnar relations of
    one evaluation share a single interner, so codes are directly comparable
    across relations and a join never has to look at the values themselves.
    """

    __slots__ = ("_codes", "_values")

    def __init__(self) -> None:
        self._codes: dict = {}
        self._values: list = []

    def __len__(self) -> int:
        return len(self._values)

    def intern(self, value) -> int:
        """Code of *value*, interning it first if unseen."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def code_of(self, value) -> int | None:
        """Code of *value*, or ``None`` when it was never interned (in which
        case no columnar relation anywhere contains it)."""
        return self._codes.get(value)

    def encode_column(self, values: Sequence) -> np.ndarray:
        """Encode one column of values into an ``int64`` code array.

        Numeric and all-string columns take a vectorized path: ``np.unique``
        collapses the column to its distinct values at C speed (strings as a
        fixed-width array, so the sort compares flat character buffers, not
        Python objects) and only the few distinct values pass through the
        Python-level intern dict. Everything else (mixed types, unhashable
        oddities) falls back to a plain loop.
        """
        n = len(values)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        arr = None
        try:
            arr = np.asarray(values)
        except (ValueError, TypeError):  # ragged / unconvertible
            arr = None
        if arr is not None and arr.ndim == 1:
            # A "U" dtype alone is not proof of a string column — np.asarray
            # coerces mixed int/str input to strings, which would silently
            # merge 1 and "1". Only trust it when every element really is str.
            if arr.dtype.kind in "iufb" or (
                arr.dtype.kind == "U"
                and all(isinstance(v, str) for v in values)
            ):
                uniq, inv = np.unique(arr, return_inverse=True)
                return self._intern_unique(uniq)[inv]
        out = np.empty(n, dtype=np.int64)
        codes = self._codes
        vals = self._values
        for i, v in enumerate(values):
            c = codes.get(v)
            if c is None:
                c = len(vals)
                codes[v] = c
                vals.append(v)
            out[i] = c
        return out

    def _intern_unique(self, uniq: np.ndarray) -> np.ndarray:
        """Intern a small array of distinct values; returns their codes."""
        codes = self._codes
        vals = self._values
        append = vals.append
        out = np.empty(uniq.size, dtype=np.int64)
        for i, v in enumerate(uniq.tolist()):
            c = codes.get(v)
            if c is None:
                c = len(vals)
                codes[v] = c
                append(v)
            out[i] = c
        return out

    def decode_column(self, codes: np.ndarray) -> list:
        """Values behind a code array, as native Python objects."""
        vals = self._values
        return [vals[c] for c in codes.tolist()]


#: Transient columnar representation between independent project and
#: deduplication (the analogue of ``operators.ProjectedRows``): already
#: merged by (projected key, lineage), in first-occurrence order.
@dataclass
class ColumnarProjected:
    codes: np.ndarray  # (rows, len(attributes)) int64
    lineage: np.ndarray  # (rows,) int64
    probs: np.ndarray  # (rows,) float64


class ColumnarPLRelation:
    """A pL-relation stored column-wise over a shared And-Or network.

    Semantically identical to :class:`~repro.core.plrelation.PLRelation`
    (Definition 5.2); the representation differs: ``codes`` holds the
    dictionary-encoded key columns as an ``(n, arity)`` ``int64`` matrix,
    ``lineage`` the network node per row, ``probs`` the probability column.
    Row order is insertion order, as in the row engine.
    """

    __slots__ = (
        "attributes",
        "network",
        "interner",
        "name",
        "codes",
        "lineage",
        "probs",
        "_positions",
    )

    def __init__(
        self,
        attributes: Iterable[str],
        network: AndOrNetwork,
        interner: ValueInterner,
        codes: np.ndarray,
        lineage: np.ndarray,
        probs: np.ndarray,
        name: str = "",
    ) -> None:
        self.attributes = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"duplicate attributes: {self.attributes}")
        self.network = network
        self.interner = interner
        self.name = name
        self.codes = codes
        self.lineage = lineage
        self.probs = probs
        if codes.shape != (len(lineage), len(self.attributes)):
            raise SchemaError(
                f"code matrix {codes.shape} does not match "
                f"{len(lineage)} rows x {len(self.attributes)} attributes"
            )
        self._positions = {a: i for i, a in enumerate(self.attributes)}

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return len(self.lineage)

    def index_of(self, attribute: str) -> int:
        """Position of *attribute* in the schema."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"pL-relation {self.name!r} has no attribute {attribute!r}; "
                f"attributes are {self.attributes}"
            ) from None

    def rows(self) -> list[Row]:
        """All rows (decoded), in insertion order."""
        k = len(self.attributes)
        if k == 0:
            return [()] * len(self)
        cols = [
            self.interner.decode_column(self.codes[:, j]) for j in range(k)
        ]
        return list(zip(*cols))

    def items(self) -> Iterator[tuple[Row, int, float]]:
        """Iterate over ``(row, lineage, probability)`` triples (decoded)."""
        lineage = self.lineage.tolist()
        probs = self.probs.tolist()
        for row, l, p in zip(self.rows(), lineage, probs):
            yield row, l, p

    def symbolic_rows(self) -> list[Row]:
        """Rows whose lineage is not ε — the intensional part."""
        idx = np.flatnonzero(self.lineage != EPSILON)
        rows = self.rows()
        return [rows[i] for i in idx.tolist()]

    def is_purely_extensional(self) -> bool:
        """True when every row has trivial lineage."""
        return bool((self.lineage == EPSILON).all())

    def to_rows(self) -> PLRelation:
        """Convert to a row-engine :class:`PLRelation` (same network)."""
        with _span("to_rows", tuples=len(self)):
            out = PLRelation(self.attributes, self.network, name=self.name)
            for row, l, p in self.items():
                out.add(row, l, p)
            return out

    def _take(
        self, indices: np.ndarray, name: str, positions: Sequence[int] | None = None
    ) -> "ColumnarPLRelation":
        """Gather a row subset (and optionally a column subset) by index."""
        codes = self.codes[indices]
        attrs = self.attributes
        if positions is not None:
            codes = codes[:, positions]
            attrs = tuple(self.attributes[j] for j in positions)
        return ColumnarPLRelation(
            attrs,
            self.network,
            self.interner,
            codes,
            self.lineage[indices],
            self.probs[indices],
            name=name,
        )

    def __repr__(self) -> str:
        sym = int((self.lineage != EPSILON).sum())
        return (
            f"<ColumnarPLRelation {self.name!r}({', '.join(self.attributes)}) "
            f"{len(self)} rows, {sym} symbolic>"
        )


# ----------------------------------------------------------------- construction
def from_base(
    relation: ProbabilisticRelation,
    network: AndOrNetwork,
    interner: ValueInterner,
    attributes: Iterable[str] | None = None,
) -> ColumnarPLRelation:
    """Lift an independent relation column-wise: every tuple gets lineage ε."""
    attrs = tuple(
        attributes if attributes is not None else relation.schema.attributes
    )
    codes, probs = encode_base(relation, interner)
    lineage = np.full(len(relation), EPSILON, dtype=np.int64)
    return ColumnarPLRelation(
        attrs, network, interner, codes, lineage, probs, name=relation.name
    )


def encode_base(
    relation: ProbabilisticRelation, interner: ValueInterner
) -> tuple[np.ndarray, np.ndarray]:
    """Dictionary-encode a base relation: ``(codes matrix, probability column)``.

    Network-independent (base tuples all carry lineage ε), so the result can
    be cached across evaluations sharing one interner.
    """
    n = len(relation)
    k = relation.schema.arity
    codes = np.empty((n, k), dtype=np.int64)
    if not n:
        return codes, np.empty(0, dtype=np.float64)
    with _span("encode_base", relation=relation.name, tuples=n):
        return _encode_base(relation, interner, codes, n, k)


def _encode_base(relation, interner, codes, n, k):
    rows = relation.rows()
    probs = np.fromiter(
        (p for _, p in relation.items()), dtype=np.float64, count=n
    )
    # Homogeneous numeric relations convert to one (n, k) matrix at C speed,
    # so per column only the distinct values touch the Python-level interner.
    arr = None
    if k:
        try:
            arr = np.asarray(rows)
        except (ValueError, TypeError):
            arr = None
        if arr is not None and (
            arr.shape != (n, k) or arr.dtype.kind not in "iufb"
        ):
            arr = None
    if arr is not None:
        for j in range(k):
            uniq, inv = np.unique(arr[:, j], return_inverse=True)
            codes[:, j] = interner._intern_unique(uniq)[inv]
    else:
        columns = list(zip(*rows))
        for j in range(k):
            codes[:, j] = interner.encode_column(columns[j])
    return codes, probs


def from_plrelation(
    rel: PLRelation, interner: ValueInterner
) -> ColumnarPLRelation:
    """Columnar view of a row-engine pL-relation (shares its network)."""
    n = len(rel)
    k = len(rel.attributes)
    codes = np.empty((n, k), dtype=np.int64)
    lineage = np.empty(n, dtype=np.int64)
    probs = np.empty(n, dtype=np.float64)
    rows = rel.rows()
    if n:
        columns = list(zip(*rows)) if k else []
        for j in range(k):
            codes[:, j] = interner.encode_column(columns[j])
        for i, row in enumerate(rows):
            lineage[i] = rel.lineage(row)
            probs[i] = rel.probability(row)
    return ColumnarPLRelation(
        rel.attributes, rel.network, interner, codes, lineage, probs,
        name=rel.name,
    )


# ------------------------------------------------------------------- grouping
def _fuse(n: int, cols: list[np.ndarray]) -> np.ndarray:
    """Fuse non-negative code columns into one ``int64`` key per row.

    Mixed-radix packing; columns fused together must come from one shared
    code space (concatenate both sides of a join before fusing). Falls back
    to densifying intermediate keys if the radix product approaches 2^62.
    """
    if not cols:
        return np.zeros(n, dtype=np.int64)
    out = cols[0].astype(np.int64, copy=True)
    for c in cols[1:]:
        radix = int(c.max()) + 1 if c.size else 1
        hi = int(out.max()) if out.size else 0
        if (hi + 1) * radix >= 2 ** 62:
            _, out = np.unique(out, return_inverse=True)
            hi = int(out.max()) if out.size else 0
            if (hi + 1) * radix >= 2 ** 62:
                raise CapacityError(
                    "composite key space exceeds 62 bits even after "
                    "densification"
                )
        out = out * radix + c
    return out


def _group_first_occurrence(
    n: int, cols: list[np.ndarray]
) -> tuple[np.ndarray, int, np.ndarray]:
    """Group rows by the fused key, numbering groups in first-occurrence
    order (the row engine's dict-insertion order).

    Returns ``(group id per row, group count, first row index per group)``.
    """
    if n == 0:
        return np.empty(0, dtype=np.int64), 0, np.empty(0, dtype=np.int64)
    fused = _fuse(n, cols)
    _, first, inverse = np.unique(
        fused, return_index=True, return_inverse=True
    )
    order = np.argsort(first, kind="stable")
    rank = np.empty(order.size, dtype=np.int64)
    rank[order] = np.arange(order.size)
    return rank[inverse], order.size, first[order]


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(start, start+count)`` blocks, vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    reps = np.repeat(starts, counts)
    offs = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return reps + offs


# --------------------------------------------------------------------- select
def select_eq(
    rel: ColumnarPLRelation, conditions: Mapping[str, object]
) -> ColumnarPLRelation:
    """Vectorized ``σ_{A=a, ...}``: one boolean mask over the code columns."""
    mask = np.ones(len(rel), dtype=bool)
    for attr, value in conditions.items():
        j = rel.index_of(attr)
        code = rel.interner.code_of(value)
        if code is None:
            mask[:] = False
            break
        mask &= rel.codes[:, j] == code
    return rel._take(np.flatnonzero(mask), name=f"σ({rel.name})")


#: Comparison operators :class:`Comparison` can compile. ``>`` / ``>=`` ride
#: along for symmetry — they are the mirrored ``<`` / ``<=``.
_COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison:
    """A compilable selection predicate ``attribute <op> constant``.

    Handed to :func:`select_where` (either engine) instead of a callable,
    the predicate is evaluated as array expressions over the
    dictionary-encoded column — no per-row Python call, no row decoding:

    * ``==`` / ``!=`` compare codes directly: equal values share a code by
      construction, so one interner lookup turns the predicate into a single
      integer comparison against the column;
    * ``<`` / ``<=`` / ``>`` / ``>=`` cannot read off codes (interning order
      is first-appearance, not value order), so the column is collapsed to
      its *distinct* codes with ``np.unique``, only those few values are
      decoded and compared in Python, and the verdicts are gathered back
      over the rows — O(distinct) comparisons instead of O(rows).

    Examples
    --------
    >>> Comparison("A", "<", 3).matches((2, "x"), lambda a: 0)
    True
    """

    attribute: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise SchemaError(
                f"unknown comparison operator {self.op!r}; "
                f"choose from {_COMPARISON_OPS}"
            )

    def matches(self, row, index_of) -> bool:
        """Row-at-a-time evaluation (the row engine's path)."""
        v = row[index_of(self.attribute)]
        if self.op == "==":
            return v == self.value
        if self.op == "!=":
            return v != self.value
        if self.op == "<":
            return v < self.value
        if self.op == "<=":
            return v <= self.value
        if self.op == ">":
            return v > self.value
        return v >= self.value

    def mask(self, rel: "ColumnarPLRelation") -> np.ndarray:
        """Boolean row mask over a columnar relation (the compiled path)."""
        column = rel.codes[:, rel.index_of(self.attribute)]
        if self.op in ("==", "!="):
            code = rel.interner.code_of(self.value)
            if code is None:
                return np.full(len(rel), self.op == "!=", dtype=bool)
            return column == code if self.op == "==" else column != code
        uniq, inv = np.unique(column, return_inverse=True)
        values = rel.interner.decode_column(uniq)
        verdicts = np.fromiter(
            (
                self.matches((v,), lambda _attr: 0)
                for v in values
            ),
            dtype=bool,
            count=uniq.size,
        )
        return verdicts[inv]


def select_where(rel: ColumnarPLRelation, predicate) -> ColumnarPLRelation:
    """Selection with a row predicate — compiled when possible.

    *predicate* may be a :class:`Comparison`, an iterable of them (their
    conjunction), or an arbitrary callable. Comparisons are compiled to
    array expressions over the encoded columns; the callable form is the
    exotic-predicate fallback: decode once, evaluate per row, then gather
    with one mask.
    """
    compiled = _as_comparisons(predicate)
    if compiled is not None:
        mask = np.ones(len(rel), dtype=bool)
        for comparison in compiled:
            mask &= comparison.mask(rel)
    else:
        mask = np.fromiter(
            (bool(predicate(row)) for row in rel.rows()),
            dtype=bool,
            count=len(rel),
        )
    return rel._take(np.flatnonzero(mask), name=f"σ({rel.name})")


def _as_comparisons(predicate) -> list[Comparison] | None:
    """*predicate* as a conjunction of comparisons, or ``None`` (callable)."""
    if isinstance(predicate, Comparison):
        return [predicate]
    if isinstance(predicate, (list, tuple)) and all(
        isinstance(c, Comparison) for c in predicate
    ):
        return list(predicate)
    return None


# -------------------------------------------------------------------- project
def independent_project(
    rel: ColumnarPLRelation, attributes: Sequence[str]
) -> ColumnarProjected:
    """Vectorized independent project (Sec 5.3.2): group by (key, lineage),
    merge probabilities as ``1 - Π(1-p)`` via a log-space grouped reduction."""
    positions = [rel.index_of(a) for a in attributes]
    n = len(rel)
    cols = [rel.codes[:, j] for j in positions] + [rel.lineage]
    gid, groups, first = _group_first_occurrence(n, cols)
    counts = np.bincount(gid, minlength=groups)
    with np.errstate(divide="ignore"):
        logs = np.log1p(-rel.probs)
    sums = np.bincount(gid, weights=logs, minlength=groups)
    # Clamp the fold into [0, 1]: expm1 rounding on many near-1 inputs can
    # overshoot by an ulp, and an out-of-range probability poisons inference.
    probs = np.clip(-np.expm1(sums), 0.0, 1.0)
    # Singleton groups pass their probability through bit-exactly.
    single = counts == 1
    probs[single] = rel.probs[first[single]]
    codes = rel.codes[first][:, positions] if positions else np.empty(
        (groups, 0), dtype=np.int64
    )
    return ColumnarProjected(
        codes=codes, lineage=rel.lineage[first], probs=probs
    )


def deduplicate(
    rel: ColumnarPLRelation,
    attributes: Sequence[str],
    projected: ColumnarProjected,
) -> ColumnarPLRelation:
    """Vectorized deduplication (Sec 5.3.2): same-value groups become one row
    through an Or node, with the whole batch of Or gates allocated in one
    :meth:`~repro.core.network.AndOrNetwork.add_gates` call."""
    net = rel.network
    lineage, probs, codes = projected.lineage, projected.probs, projected.codes
    n = len(lineage)
    k = codes.shape[1]
    cols = [codes[:, j] for j in range(k)]
    gid, groups, first = _group_first_occurrence(n, cols)
    counts = np.bincount(gid, minlength=groups)
    out_lineage = np.empty(groups, dtype=np.int64)
    out_probs = np.empty(groups, dtype=np.float64)
    single = counts == 1
    out_lineage[single] = lineage[first[single]]
    out_probs[single] = probs[first[single]]
    multi = np.flatnonzero(~single)
    if multi.size:
        order = np.argsort(gid, kind="stable")
        sorted_gid = gid[order]
        seg_starts = np.searchsorted(sorted_gid, multi)
        seg_counts = counts[multi]
        flat = order[_concat_ranges(seg_starts, seg_counts)]
        offsets = np.zeros(multi.size + 1, dtype=np.int64)
        np.cumsum(seg_counts, out=offsets[1:])
        gates = net.add_gates(
            NodeKind.OR, lineage[flat], probs[flat], offsets=offsets
        )
        out_lineage[multi] = gates
        out_probs[multi] = 1.0
    return ColumnarPLRelation(
        tuple(attributes),
        net,
        rel.interner,
        codes[first],
        out_lineage,
        out_probs,
        name=f"π({rel.name})",
    )


def project(
    rel: ColumnarPLRelation, attributes: Sequence[str]
) -> ColumnarPLRelation:
    """Full projection ``π_A``: independent project + deduplication."""
    return deduplicate(rel, attributes, independent_project(rel, attributes))


# ---------------------------------------------------------------- conditioning
def _target_mask(rel: ColumnarPLRelation, rows: Iterable[Row]) -> np.ndarray:
    """Boolean mask of the given rows; raises on rows absent from *rel*."""
    targets = [tuple(r) for r in rows]
    if not targets:
        return np.zeros(len(rel), dtype=bool)
    interner = rel.interner
    k = len(rel.attributes)
    keys = np.empty((len(targets), k), dtype=np.int64)
    missing: list[Row] = []
    for i, row in enumerate(targets):
        if len(row) != k:
            raise SchemaError(
                f"row {row!r} has arity {len(row)}, expected {k}"
            )
        ok = True
        for j, v in enumerate(row):
            code = interner.code_of(v)
            if code is None:
                ok = False
                break
            keys[i, j] = code
        if not ok:
            missing.append(row)
            keys[i, :] = -1
    n = len(rel)
    cols = [
        np.concatenate([rel.codes[:, j], np.maximum(keys[:, j], 0)])
        for j in range(k)
    ]
    fused = _fuse(n + len(targets), cols)
    rel_keys, target_keys = fused[:n], fused[n:]
    valid = (keys >= 0).all(axis=1) if k else np.ones(len(targets), dtype=bool)
    present = np.isin(target_keys, rel_keys) & valid
    if not present.all():
        decoded = [targets[i] for i in np.flatnonzero(~present).tolist()]
        raise SchemaError(
            f"cannot condition on absent rows: {sorted(decoded)}"
        )
    return np.isin(rel_keys, target_keys[present])


def condition(
    rel: ColumnarPLRelation, rows, recorder=None
) -> ColumnarPLRelation:
    """Vectorized ``Cond`` (Sec 5.3.3).

    *rows* is either a boolean mask over the relation or an iterable of row
    tuples. Uncertain ε-rows get bulk-allocated leaves; uncertain rows that
    already carry lineage get single-parent And gates — in row order, in runs,
    so node ids match the row engine's one-at-a-time allocation exactly.
    """
    if isinstance(rows, np.ndarray) and rows.dtype == bool:
        mask = rows
    else:
        mask = _target_mask(rel, rows)
    net = rel.network
    todo = np.flatnonzero(mask & (rel.probs < 1.0))
    lineage = rel.lineage.copy()
    probs = rel.probs.copy()
    out = ColumnarPLRelation(
        rel.attributes,
        net,
        rel.interner,
        rel.codes,
        lineage,
        probs,
        name=f"cond({rel.name})",
    )
    if todo.size == 0:
        return out
    is_eps = rel.lineage[todo] == EPSILON
    new_nodes = np.empty(todo.size, dtype=np.int64)
    # Allocate in row order, in maximal same-kind runs, to keep node ids
    # identical to the scalar path's interleaved allocation.
    boundaries = np.flatnonzero(is_eps[1:] != is_eps[:-1]) + 1
    run_starts = np.concatenate([[0], boundaries, [todo.size]])
    for s, e in zip(run_starts[:-1], run_starts[1:]):
        seg = todo[s:e]
        if is_eps[s]:
            new_nodes[s:e] = net.add_leaves(rel.probs[seg])
        else:
            new_nodes[s:e] = net.add_gates(
                NodeKind.AND,
                rel.lineage[seg][:, None],
                rel.probs[seg][:, None],
            )
    lineage[todo] = new_nodes
    probs[todo] = 1.0
    if recorder is not None:
        all_rows = rel.rows()
        for i, node in zip(todo.tolist(), new_nodes.tolist()):
            recorder(node, rel.name, all_rows[i])
    return out


# ----------------------------------------------------------------------- join
def _join_positions(
    left: ColumnarPLRelation, right: ColumnarPLRelation, on: Sequence[str]
) -> tuple[list[int], list[int], list[int]]:
    lpos = [left.index_of(a) for a in on]
    rpos = [right.index_of(a) for a in on]
    keep = [i for i, a in enumerate(right.attributes) if a not in set(on)]
    return lpos, rpos, keep


def _joint_keys(
    left: ColumnarPLRelation,
    right: ColumnarPLRelation,
    lpos: Sequence[int],
    rpos: Sequence[int],
) -> tuple[np.ndarray, np.ndarray]:
    """Fuse both sides' join-key columns in one shared key space."""
    nl, nr = len(left), len(right)
    cols = [
        np.concatenate([left.codes[:, lj], right.codes[:, rj]])
        for lj, rj in zip(lpos, rpos)
    ]
    fused = _fuse(nl + nr, cols)
    return fused[:nl], fused[nl:]


def cset_mask(
    left: ColumnarPLRelation, right: ColumnarPLRelation, on: Sequence[str]
) -> np.ndarray:
    """Boolean mask of *left*'s offending tuples (Definition 5.14):
    uncertain and joining with more than one tuple of *right*."""
    lpos, rpos, _ = _join_positions(left, right, on)
    lkeys, rkeys = _joint_keys(left, right, lpos, rpos)
    uniq, inverse = np.unique(
        np.concatenate([lkeys, rkeys]), return_inverse=True
    )
    linv, rinv = inverse[: len(left)], inverse[len(left):]
    fanout = np.bincount(rinv, minlength=uniq.size)
    return (left.probs < 1.0) & (fanout[linv] > 1)


def cset(
    left: ColumnarPLRelation, right: ColumnarPLRelation, on: Sequence[str]
) -> list[Row]:
    """``cSet(left, right)`` as decoded rows (row-engine API parity)."""
    mask = cset_mask(left, right, on)
    rows = left.rows()
    return [rows[i] for i in np.flatnonzero(mask).tolist()]


def pl_join_raw(
    left: ColumnarPLRelation, right: ColumnarPLRelation, on: Sequence[str]
) -> ColumnarPLRelation:
    """Vectorized ``⋈_pL`` (Definition 5.13), *without* conditioning.

    A key-encoded sort/``searchsorted`` join yields match index pairs in the
    row engine's order (left-major, right insertion order within a key);
    one vectorized pass then splits pairs whose sides both carry lineage
    (batched And gates) from pairs folded by numeric multiplication.
    """
    if left.network is not right.network:
        raise SchemaError("pL-join requires both sides to share one network")
    if left.interner is not right.interner:
        raise SchemaError(
            "columnar pL-join requires both sides to share one interner"
        )
    net = left.network
    lpos, rpos, keep = _join_positions(left, right, on)
    lkeys, rkeys = _joint_keys(left, right, lpos, rpos)
    r_order = np.argsort(rkeys, kind="stable")
    r_sorted = rkeys[r_order]
    starts = np.searchsorted(r_sorted, lkeys, side="left")
    ends = np.searchsorted(r_sorted, lkeys, side="right")
    counts = ends - starts
    li = np.repeat(np.arange(len(left), dtype=np.int64), counts)
    ri = r_order[_concat_ranges(starts, counts)]

    ll = left.lineage[li]
    rl = right.lineage[ri]
    lp = left.probs[li]
    rp = right.probs[ri]
    out_lineage = np.where(rl == EPSILON, ll, rl)
    out_probs = lp * rp
    both = np.flatnonzero((ll != EPSILON) & (rl != EPSILON))
    if both.size:
        parents = np.stack([ll[both], rl[both]], axis=1)
        edge_probs = np.stack([lp[both], rp[both]], axis=1)
        out_lineage[both] = net.add_gates(NodeKind.AND, parents, edge_probs)
        out_probs[both] = 1.0

    out_attrs = left.attributes + tuple(right.attributes[i] for i in keep)
    left_codes = left.codes[li]
    if keep:
        out_codes = np.concatenate(
            [left_codes, right.codes[ri][:, keep]], axis=1
        )
    elif left_codes.shape[1]:
        out_codes = left_codes
    else:
        out_codes = np.empty((len(li), 0), dtype=np.int64)
    return ColumnarPLRelation(
        out_attrs,
        net,
        left.interner,
        out_codes,
        out_lineage,
        out_probs,
        name=f"({left.name}⋈{right.name})",
    )


def pl_join(
    left: ColumnarPLRelation,
    right: ColumnarPLRelation,
    on: Sequence[str],
    recorder=None,
) -> tuple[ColumnarPLRelation, int]:
    """Safe join (Theorem 5.16): condition both sides on their cSets, then
    ``⋈_pL`` — all steps vectorized. Returns (joined, conditioned count)."""
    lmask = cset_mask(left, right, on)
    rmask = cset_mask(right, left, on)
    left2 = condition(left, lmask, recorder) if lmask.any() else left
    right2 = condition(right, rmask, recorder) if rmask.any() else right
    joined = pl_join_raw(left2, right2, on)
    return joined, int(lmask.sum()) + int(rmask.sum())
