"""Relational operators over pL-relations (Section 5.3).

The operators are defined so that (i) on purely extensional inputs they reduce
to the classical extensional operators of [8] (Eqs. 2-4), and (ii) in general
they push as much work as possible into plain arithmetic on the probability
column, creating network nodes only where the data forces it:

* :func:`select_eq` — plain relational selection (always data safe, Sec 5.3.1);
* :func:`independent_project` / :func:`deduplicate` — the two halves of
  projection (Sec 5.3.2); deduplication is the only place Or nodes are born;
* :func:`condition` — the ``Cond`` operation (Sec 5.3.3): make a tuple
  deterministic and remember its probability as a fresh network leaf;
* :func:`cset` — the offending tuples of a join (Definition 5.14);
* :func:`pl_join_raw` — ``⋈_pL`` (Definition 5.13), correct only after
  conditioning; And nodes are born here;
* :func:`pl_join` — Theorem 5.16's recipe: condition both sides on their
  cSets, then ``⋈_pL``.

All operators return new :class:`~repro.core.plrelation.PLRelation` objects
sharing (and augmenting) the input's network.

Engines
-------
Each public operator accepts either a row-backed
:class:`~repro.core.plrelation.PLRelation` (the reference implementation,
kept as the oracle behind ``engine="rows"``) or a
:class:`~repro.core.columnar.ColumnarPLRelation`, in which case it dispatches
to the vectorized NumPy kernel in :mod:`repro.core.columnar`. The two paths
perform the same operations in the same order, so they grow identical
networks; ``tests/property`` asserts the equivalence on random inputs.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.core import columnar as _columnar
from repro.core.columnar import ColumnarPLRelation
from repro.core.network import EPSILON, NodeKind
from repro.core.plrelation import PLRelation
from repro.db.schema import Row
from repro.errors import SchemaError

#: Transient representation between independent project and deduplication:
#: a list of (projected row, lineage node, probability) — rows may repeat.
ProjectedRows = list[tuple[Row, int, float]]


# --------------------------------------------------------------------- select
def select_eq(rel: PLRelation, conditions: Mapping[str, object]) -> PLRelation:
    """Selection ``σ_{A=a, ...}``: keep rows matching every equality condition.

    Always data safe (Proposition 3.2); lineage and probability pass through.
    """
    if isinstance(rel, ColumnarPLRelation):
        return _columnar.select_eq(rel, conditions)
    idx = [(rel.index_of(a), v) for a, v in conditions.items()]
    out = rel.empty_like(name=f"σ({rel.name})")
    for row, l, p in rel.items():
        if all(row[i] == v for i, v in idx):
            out.add(row, l, p)
    return out


def select_where(rel: PLRelation, predicate) -> PLRelation:
    """Selection with a row predicate.

    *predicate* is either a callable ``Row -> bool``, a
    :class:`~repro.core.columnar.Comparison` (``attribute <op> constant``),
    or an iterable of comparisons (their conjunction). On columnar inputs
    comparisons compile to array expressions over the encoded columns;
    callables are the exotic-predicate fallback (decode rows, evaluate
    row-at-a-time, gather with one mask). Both engines accept both forms,
    so plans carry predicates without caring which backend runs them.
    """
    if isinstance(rel, ColumnarPLRelation):
        return _columnar.select_where(rel, predicate)
    comparisons = _columnar._as_comparisons(predicate)
    if comparisons is not None:
        def predicate(row, _cs=comparisons, _idx=rel.index_of):
            return all(c.matches(row, _idx) for c in _cs)
    out = rel.empty_like(name=f"σ({rel.name})")
    for row, l, p in rel.items():
        if predicate(row):
            out.add(row, l, p)
    return out


# -------------------------------------------------------------------- project
def independent_project(rel: PLRelation, attributes: Sequence[str]) -> ProjectedRows:
    """Independent project (Sec 5.3.2): group by projected value *and* lineage.

    Rows sharing both the projected value and the lineage node are merged
    extensionally: ``p' = 1 - Π (1 - p)``, folded pairwise in the
    cancellation-free form ``g + p - g·p`` (the naive ``1-(1-g)(1-p)``
    underflows to exactly 0 on subnormal-tiny inputs, which downstream
    ``(0, 1]`` range checks reject) and clamped to at most 1 so rounding can
    never hand inference a probability above 1.
    """
    if isinstance(rel, ColumnarPLRelation):
        return _columnar.independent_project(rel, attributes)
    positions = [rel.index_of(a) for a in attributes]
    groups: dict[tuple[Row, int], float] = {}
    order: list[tuple[Row, int]] = []
    for row, l, p in rel.items():
        key = (tuple(row[i] for i in positions), l)
        if key in groups:
            g = groups[key]
            groups[key] = min(1.0, g + p - g * p)
        else:
            groups[key] = p
            order.append(key)
    return [(row, l, groups[(row, l)]) for row, l in order]


def deduplicate(
    rel: PLRelation, attributes: Sequence[str], projected: ProjectedRows
) -> PLRelation:
    """Deduplication (Sec 5.3.2): merge same-value rows through an Or node.

    Groups with a single member pass through unchanged. A group with several
    members — necessarily with pairwise distinct lineage — becomes one row with
    probability 1 and a fresh Or node whose parents are the members' lineage
    nodes, with the members' probabilities as edge probabilities. The
    probability mass moves onto the edges; Theorem 5.10 shows the result obeys
    possible-worlds semantics.
    """
    if isinstance(rel, ColumnarPLRelation):
        return _columnar.deduplicate(rel, attributes, projected)
    net = rel.network
    groups: dict[Row, list[tuple[int, float]]] = {}
    order: list[Row] = []
    for row, l, p in projected:
        if row not in groups:
            groups[row] = []
            order.append(row)
        groups[row].append((l, p))
    out = PLRelation(attributes, net, name=f"π({rel.name})")
    for row in order:
        members = groups[row]
        if len(members) == 1:
            l, p = members[0]
            out.add(row, l, p)
        else:
            gate = net.add_gate(NodeKind.OR, members)
            out.add(row, gate, 1.0)
    return out


def project(rel: PLRelation, attributes: Sequence[str]) -> PLRelation:
    """Full projection ``π_A``: independent project followed by deduplication."""
    return deduplicate(rel, attributes, independent_project(rel, attributes))


# ---------------------------------------------------------------- conditioning
#: Optional callback invoked per conditioned tuple: (node id, source, row).
Recorder = Optional[Callable[[int, str, "Row"], None]]


def condition(
    rel: PLRelation, rows: Iterable[Row], recorder: Recorder = None
) -> PLRelation:
    """``Cond`` (Sec 5.3.3): make the given rows deterministic.

    For a row with trivial lineage, its probability moves to a fresh leaf (the
    paper's definition). For a row that already carries lineage ``l ≠ ε`` and
    probability ``p < 1`` — which arises when an intermediate relation feeds a
    later join — the event is ``l ∧ anon(p)``, so we allocate a single-parent
    And gate with edge probability ``p``; this generalises Lemma 5.12 and
    keeps the distribution unchanged.

    Rows that are already deterministic are left untouched (conditioning them
    would add a useless node).
    """
    if isinstance(rel, ColumnarPLRelation):
        return _columnar.condition(rel, rows, recorder)
    targets = {tuple(r) for r in rows}
    missing = [r for r in targets if r not in rel]
    if missing:
        raise SchemaError(f"cannot condition on absent rows: {sorted(missing)}")
    net = rel.network
    out = rel.empty_like(name=f"cond({rel.name})")
    for row, l, p in rel.items():
        if row in targets and p < 1.0:
            if l == EPSILON:
                node = net.add_leaf(p)
            else:
                node = net.add_gate(NodeKind.AND, [(l, p)])
            if recorder is not None:
                recorder(node, rel.name, row)
            out.add(row, node, 1.0)
        else:
            out.add(row, l, p)
    return out


# ----------------------------------------------------------------------- join
def _join_positions(
    left: PLRelation, right: PLRelation, on: Sequence[str]
) -> tuple[list[int], list[int], list[int]]:
    """Positions of the join attributes on both sides and of the right-side
    attributes that survive into the output (those not in *on*)."""
    lpos = [left.index_of(a) for a in on]
    rpos = [right.index_of(a) for a in on]
    keep = [i for i, a in enumerate(right.attributes) if a not in set(on)]
    return lpos, rpos, keep


def cset(left: PLRelation, right: PLRelation, on: Sequence[str]) -> list[Row]:
    """``cSet(left, right)`` (Definition 5.14): the offending tuples of *left*.

    A tuple offends when it is uncertain (``p < 1``) and joins with more than
    one tuple of *right*. Matching Proposition 3.2, *all* join partners count,
    deterministic or not: a shared uncertain left tuple correlates its output
    tuples regardless of the partners' probabilities.
    """
    if isinstance(left, ColumnarPLRelation):
        return _columnar.cset(left, right, on)
    lpos, rpos, _ = _join_positions(left, right, on)
    fanout: dict[Row, int] = {}
    for row, _, _ in right.items():
        key = tuple(row[i] for i in rpos)
        fanout[key] = fanout.get(key, 0) + 1
    out = []
    for row, _, p in left.items():
        if p < 1.0 and fanout.get(tuple(row[i] for i in lpos), 0) > 1:
            out.append(row)
    return out


def pl_join_raw(
    left: PLRelation, right: PLRelation, on: Sequence[str]
) -> PLRelation:
    """``⋈_pL`` (Definition 5.13), *without* conditioning.

    Correct (possible-worlds preserving) only when both cSets are empty —
    use :func:`pl_join` for the safe composition. Pairs where both sides carry
    non-trivial lineage produce an And gate; otherwise probabilities multiply
    and the non-trivial lineage (if any) passes through.
    """
    if isinstance(left, ColumnarPLRelation):
        return _columnar.pl_join_raw(left, right, on)
    if left.network is not right.network:
        raise SchemaError("pL-join requires both sides to share one network")
    lpos, rpos, keep = _join_positions(left, right, on)
    net = left.network
    out_attrs = left.attributes + tuple(right.attributes[i] for i in keep)
    out = PLRelation(out_attrs, net, name=f"({left.name}⋈{right.name})")
    index: dict[Row, list[tuple[Row, int, float]]] = {}
    for row, l, p in right.items():
        index.setdefault(tuple(row[i] for i in rpos), []).append((row, l, p))
    for lrow, ll, lp in left.items():
        for rrow, rl, rp in index.get(tuple(lrow[i] for i in lpos), ()):  # matches
            merged = lrow + tuple(rrow[i] for i in keep)
            if ll != EPSILON and rl != EPSILON:
                gate = net.add_gate(NodeKind.AND, [(ll, lp), (rl, rp)])
                out.add(merged, gate, 1.0)
            elif rl == EPSILON:
                out.add(merged, ll, lp * rp)
            else:
                out.add(merged, rl, lp * rp)
    return out


def pl_join(
    left: PLRelation, right: PLRelation, on: Sequence[str], recorder=None
) -> tuple[PLRelation, int]:
    """Safe join (Theorem 5.16): condition both sides on their cSets, then ``⋈_pL``.

    Returns the joined relation and the number of tuples conditioned — the
    per-operator offending-tuple count that measures data (un)safety. The
    optional *recorder* ``(node, source, row)`` receives the provenance of
    every conditioned tuple (used for what-if analysis).
    """
    if isinstance(left, ColumnarPLRelation):
        return _columnar.pl_join(left, right, on, recorder)
    left_offending = cset(left, right, on)
    right_offending = cset(right, left, on)
    left2 = condition(left, left_offending, recorder) if left_offending else left
    right2 = (
        condition(right, right_offending, recorder) if right_offending else right
    )
    joined = pl_join_raw(left2, right2, on)
    return joined, len(left_offending) + len(right_offending)
