"""EXPLAIN for partial-lineage plans.

Renders a plan as an annotated tree and — given a database — predicts each
join's data safety *before* running it, using the Proposition 3.2 predicate
on the base relations and conservative propagation through the plan. The
prediction is exact for joins whose inputs are base scans (the common first
join, where most conditioning happens) and marked "≤" (an upper bound of
"safe") elsewhere.

Also exports And-Or networks and plans to Graphviz DOT text for inspection.
"""

from __future__ import annotations

from repro.core.executor import EvaluationResult
from repro.core.network import EPSILON, AndOrNetwork, NodeKind
from repro.core.plan import Filter, Join, Plan, Project, Scan, Select, plan_schema
from repro.db.database import ProbabilisticDatabase
from repro.db.statistics import fanout_profile
from repro.query.syntax import Variable


def _scan_base_key(scan: Scan, db: ProbabilisticDatabase, on: tuple[str, ...]):
    """Map join attributes (variable names) back to base columns of a scan."""
    rel = db[scan.relation]
    if scan.terms is None:
        return rel, tuple(on)
    cols = []
    for name in on:
        for i, t in enumerate(scan.terms):
            if isinstance(t, Variable) and t.name == name:
                cols.append(rel.schema.attributes[i])
                break
        else:
            return None
    return rel, tuple(cols)


def _join_annotation(join: Join, db: ProbabilisticDatabase) -> str:
    """Predict the join's offending counts where both sides are base scans."""
    if not (isinstance(join.left, Scan) and isinstance(join.right, Scan)):
        return "offending: data-dependent (inputs are derived)"
    left = _scan_base_key(join.left, db, join.on)
    right = _scan_base_key(join.right, db, join.on)
    if left is None or right is None:
        return "offending: data-dependent"
    (lrel, lkey), (rrel, rkey) = left, right
    lprof = fanout_profile(rrel, rkey)
    rprof = fanout_profile(lrel, lkey)
    loff = sum(
        1
        for row, p in lrel.items()
        if p < 1.0
        and lprof.expected_partners(
            tuple(row[i] for i in lrel.schema.indices_of(lkey))
        )
        > 1
    )
    roff = sum(
        1
        for row, p in rrel.items()
        if p < 1.0
        and rprof.expected_partners(
            tuple(row[i] for i in rrel.schema.indices_of(rkey))
        )
        > 1
    )
    if loff == roff == 0:
        return "data safe (no offending tuples)"
    return f"offending: {loff} left + {roff} right tuples will be conditioned"


def explain(plan: Plan, db: ProbabilisticDatabase | None = None) -> str:
    """An indented tree rendering of *plan*, annotated when *db* is given.

    Examples
    --------
    >>> from repro.core.plan import left_deep_plan
    >>> from repro.query.parser import parse_query
    >>> q = parse_query("R(x), S(x,y)")
    >>> print(explain(left_deep_plan(q)))
    π[∅]
    └─ ⋈[x]
       ├─ scan R(x)
       └─ scan S(x, y)
    """
    lines: list[str] = []

    def annotate(node: Plan) -> str:
        if db is None:
            return ""
        if isinstance(node, Join):
            return f"   -- {_join_annotation(node, db)}"
        if isinstance(node, Scan):
            rel = db[node.relation]
            uncertain = len(rel.uncertain_rows())
            return f"   -- {len(rel)} tuples, {uncertain} uncertain"
        return ""

    def walk(node: Plan, prefix: str, connector: str) -> None:
        if isinstance(node, Project):
            label = f"π[{', '.join(node.attributes) or '∅'}]"
            children = [node.child]
        elif isinstance(node, Select):
            conds = ", ".join(f"{a}={v!r}" for a, v in node.conditions)
            label = f"σ[{conds}]"
            children = [node.child]
        elif isinstance(node, Filter):
            conds = ", ".join(
                f"{c.attribute} {c.op} {c.value!r}" for c in node.predicates
            )
            label = f"σ[{conds}]"
            children = [node.child]
        elif isinstance(node, Join):
            label = f"⋈[{','.join(node.on)}]"
            children = [node.left, node.right]
        else:
            label = f"scan {node}"
            children = []
        lines.append(f"{prefix}{connector}{label}{annotate(node)}")
        child_prefix = prefix
        if connector == "└─ ":
            child_prefix += "   "
        elif connector == "├─ ":
            child_prefix += "│  "
        for i, child in enumerate(children):
            last = i == len(children) - 1
            walk(child, child_prefix, "└─ " if last else "├─ ")

    if db is not None:
        plan_schema(plan, db)  # validate before annotating
    walk(plan, "", "")
    return "\n".join(lines)


def network_to_dot(net: AndOrNetwork, highlight: set[int] | None = None) -> str:
    """Graphviz DOT text for an And-Or network.

    Leaves are ellipses labelled with their probability; gates are boxes
    (``∨`` / ``∧``); edges carry their probability when below 1. Nodes in
    *highlight* (e.g. answer lineage nodes) are drawn bold.
    """
    highlight = highlight or set()
    lines = ["digraph andor {", "  rankdir=BT;"]
    for v in net.nodes():
        kind = net.kind(v)
        style = ", style=bold" if v in highlight else ""
        if kind is NodeKind.LEAF:
            label = "ε" if v == EPSILON else f"n{v}\\np={net.leaf_probability(v):g}"
            lines.append(f'  n{v} [label="{label}", shape=ellipse{style}];')
        else:
            symbol = "∨" if kind is NodeKind.OR else "∧"
            lines.append(f'  n{v} [label="n{v} {symbol}", shape=box{style}];')
        for w, q in net.parents(v):
            attr = "" if q == 1.0 else f' [label="{q:g}"]'
            lines.append(f"  n{w} -> n{v}{attr};")
    lines.append("}")
    return "\n".join(lines)


def result_to_dot(result: EvaluationResult) -> str:
    """DOT text for a result's network, highlighting the answers' lineage."""
    answers = {l for _, l, _ in result.relation.items() if l != EPSILON}
    return network_to_dot(result.network, highlight=answers)
