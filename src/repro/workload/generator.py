"""Synthetic data generator (Section 6.1).

The paper's tables and their construction, verbatim:

* ``R1..R4(H, A)``: the full grid ``[N] × [m]``. Each tuple's probability is
  1 with probability ``1 - r_d``, otherwise uniform in ``(0, 1)`` —
  so ``r_d`` is the fraction of *non-deterministic* tuples in the R tables.
* ``S1..S3(H, A, B)``: for each ``h ∈ [N], a ∈ [m]``, with probability
  ``1 - r_f`` one random ``b``; otherwise ``f ∈ [2, fanout]`` random ``b``
  values — a functional-dependency ``(H,A) → B`` violation, i.e. offending
  tuples. Generation stops at ``m`` tuples per ``h`` (uniform size), and every
  tuple is non-deterministic.
* ``T1(H, A, B, C)``: generate ``T'(H, B, C)`` as an S table, then for each
  ``h, a`` pick ``(b, c)`` pairs from ``π_{B,C} σ_{H=h} T'`` the same way
  ``b`` was picked from ``[m]`` — controlling the violations of both
  ``B → C`` and ``A → B,C``. All tuples non-deterministic. ``T2`` applies one
  more chaining step to reach the arity 5 that the star query S3 of Table 1
  requires (``T2(h,x,y,z,u)``).

So ``r_f`` bounds the offending fraction and ``r_d`` the uncertain fraction;
``r_f = 0`` or ``r_d = 0`` makes every Table 1 query data safe. Each relation
has exactly ``N * m`` tuples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.db.database import ProbabilisticDatabase
from repro.db.relation import ProbabilisticRelation
from repro.db.schema import RelationSchema


@dataclass(frozen=True)
class WorkloadParams:
    """Generator knobs, named as in the paper.

    ``N`` — number of head values (query answers); ``m`` — per-head relation
    size (and domain size of A/B/C); ``fanout`` — maximum FD-violation fanout;
    ``r_f`` — probability that a key violates the functional dependency;
    ``r_d`` — probability that an R-tuple is non-deterministic.
    """

    N: int = 10
    m: int = 100
    fanout: int = 3
    r_f: float = 0.01
    r_d: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.N <= 0 or self.m <= 0:
            raise ValueError("N and m must be positive")
        if self.fanout < 2:
            raise ValueError("fanout must be at least 2")
        if not 0.0 <= self.r_f <= 1.0 or not 0.0 <= self.r_d <= 1.0:
            raise ValueError("r_f and r_d must lie in [0, 1]")


def _r_table(name: str, params: WorkloadParams, rng: random.Random) -> ProbabilisticRelation:
    rel = ProbabilisticRelation(RelationSchema(name, ("H", "A")))
    for h in range(params.N):
        for a in range(params.m):
            if rng.random() < params.r_d:
                p = rng.uniform(1e-9, 1.0 - 1e-9)
            else:
                p = 1.0
            rel.add((h, a), p)
    return rel


def _pick_targets(
    pool: list, params: WorkloadParams, rng: random.Random
) -> list:
    """One target with probability ``1 - r_f``, else ``f ∈ [2, fanout]`` targets."""
    if rng.random() < 1.0 - params.r_f or len(pool) < 2:
        return [rng.choice(pool)]
    f = rng.randint(2, params.fanout)
    f = min(f, len(pool))
    return rng.sample(pool, f)


def _s_table(
    name: str,
    params: WorkloadParams,
    rng: random.Random,
    attributes: tuple[str, ...] = ("H", "A", "B"),
    pool_for_h=None,
) -> ProbabilisticRelation:
    """S-style construction; *pool_for_h* supplies the target pool per head
    (defaults to ``[m]``; T tables pass the per-head (B, C) pairs)."""
    rel = ProbabilisticRelation(RelationSchema(name, attributes))
    for h in range(params.N):
        pool = pool_for_h(h) if pool_for_h is not None else list(range(params.m))
        count = 0
        for a in range(params.m):
            if count >= params.m:
                break
            targets = _pick_targets(pool, params, rng)
            seen = set()
            for target in targets:
                if count >= params.m:
                    break
                key = target if isinstance(target, tuple) else (target,)
                if key in seen:
                    continue
                seen.add(key)
                rel.add((h, a, *key), rng.uniform(1e-9, 1.0 - 1e-9))
                count += 1
    return rel


def _t_table(
    name: str, params: WorkloadParams, rng: random.Random, tail: tuple[str, ...]
) -> ProbabilisticRelation:
    """The chained T construction: ``T(H, tail)`` picks its last ``len(tail)-1``
    columns from a recursively generated prime table ``T'(H, tail[1:])``.

    The paper builds ``T(H,A,B,C)`` from ``T'(H,B,C)``; the star query S3
    needs a 5-ary ``T2(H,A,B,C,D)``, obtained by one more chaining step.
    """
    if len(tail) == 2:
        return _s_table(name, params, rng, attributes=("H",) + tail)
    prime = _t_table(f"{name}_p", params, rng, tail[1:])
    pool_by_h: dict[int, list[tuple]] = {}
    for row in prime:
        pool_by_h.setdefault(row[0], []).append(row[1:])
    for h in pool_by_h:
        pool_by_h[h] = sorted(set(pool_by_h[h]))
    return _s_table(
        name,
        params,
        rng,
        attributes=("H",) + tail,
        pool_for_h=lambda h: pool_by_h.get(h, [(0,) * (len(tail) - 1)]),
    )


def generate_database(params: WorkloadParams) -> ProbabilisticDatabase:
    """Generate the full benchmark database ``R1..R4, S1..S3, T1..T2``.

    Deterministic given ``params.seed``.

    Examples
    --------
    >>> db = generate_database(WorkloadParams(N=2, m=5, seed=1))
    >>> sorted(db.names())
    ['R1', 'R2', 'R3', 'R4', 'S1', 'S2', 'S3', 'T1', 'T2']
    >>> len(db["S1"])
    10
    """
    rng = random.Random(params.seed)
    db = ProbabilisticDatabase()
    for i in range(1, 5):
        db.attach(_r_table(f"R{i}", params, rng))
    for i in range(1, 4):
        db.attach(_s_table(f"S{i}", params, rng))
    db.attach(_t_table("T1", params, rng, ("A", "B", "C")))
    db.attach(_t_table("T2", params, rng, ("A", "B", "C", "D")))
    return db
