"""The benchmark queries of Table 1, with their left-deep join orders.

Every query is unsafe (non-hierarchical once the head variable ``h`` is fixed)
but *data safe* when the generated instance satisfies the functional
dependencies (``r_f = 0``) or is fully deterministic (``r_d = 0``).

==== ===================================================================  =====================
Name Query                                                               Join order
==== ===================================================================  =====================
P1/S1 ``q(h) :- R1(h,x), S1(h,x,y), R2(h,y)``                            R1, S1, R2
P2   ``q(h) :- R1(h,x), S1(h,x,y), S2(h,y,z), R2(h,z)``                  R1, S1, S2, R2
P3   ``q(h) :- R1(h,x), S1(h,x,y), S2(h,y,z), S3(h,z,u), R2(h,u)``       R1, S1, S2, S3, R2
S2   ``q(h) :- R1(h,x), T1(h,x,y,z), R2(h,y), R3(h,z)``                  R1, T1, R2, R3
S3   ``q(h) :- R1(h,x), T2(h,x,y,z,u), R2(h,y), R3(h,z), R4(h,u)``       R1, T2, R2, R3, R4
==== ===================================================================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.parser import parse_query
from repro.query.syntax import ConjunctiveQuery


@dataclass(frozen=True)
class BenchmarkQuery:
    """One Table 1 entry: name, query text, and the plan's join order."""

    name: str
    text: str
    join_order: tuple[str, ...]

    @property
    def query(self) -> ConjunctiveQuery:
        """The parsed query."""
        return parse_query(self.text)


TABLE1_QUERIES: dict[str, BenchmarkQuery] = {
    q.name: q
    for q in (
        BenchmarkQuery(
            "P1",
            "q(h) :- R1(h,x), S1(h,x,y), R2(h,y)",
            ("R1", "S1", "R2"),
        ),
        BenchmarkQuery(
            "P2",
            "q(h) :- R1(h,x), S1(h,x,y), S2(h,y,z), R2(h,z)",
            ("R1", "S1", "S2", "R2"),
        ),
        BenchmarkQuery(
            "P3",
            "q(h) :- R1(h,x), S1(h,x,y), S2(h,y,z), S3(h,z,u), R2(h,u)",
            ("R1", "S1", "S2", "S3", "R2"),
        ),
        BenchmarkQuery(
            "S1",
            "q(h) :- R1(h,x), S1(h,x,y), R2(h,y)",
            ("R1", "S1", "R2"),
        ),
        BenchmarkQuery(
            "S2",
            "q(h) :- R1(h,x), T1(h,x,y,z), R2(h,y), R3(h,z)",
            ("R1", "T1", "R2", "R3"),
        ),
        BenchmarkQuery(
            "S3",
            "q(h) :- R1(h,x), T2(h,x,y,z,u), R2(h,y), R3(h,z), R4(h,u)",
            ("R1", "T2", "R2", "R3", "R4"),
        ),
    )
}


def benchmark_query(name: str) -> BenchmarkQuery:
    """Look up a Table 1 query by name (``P1``-``P3``, ``S1``-``S3``)."""
    try:
        return TABLE1_QUERIES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark query {name!r}; available: "
            f"{sorted(TABLE1_QUERIES)}"
        ) from None
