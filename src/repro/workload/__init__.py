"""Benchmark workloads: the data generator and queries of Section 6.

``generator`` reproduces the synthetic data of Section 6.1 (parameters ``N``,
``m``, ``fanout``, ``r_f``, ``r_d``); ``queries`` lists the path and star
queries of Table 1 with their left-deep join orders.
"""

from repro.workload.generator import WorkloadParams, generate_database
from repro.workload.queries import BenchmarkQuery, TABLE1_QUERIES, benchmark_query

__all__ = [
    "WorkloadParams",
    "generate_database",
    "BenchmarkQuery",
    "TABLE1_QUERIES",
    "benchmark_query",
]
