"""Performance infrastructure: cross-call caches and work counters.

The inference engines each memoise within a single call; this package holds
the state that is worth keeping *between* calls — most importantly the
canonical-key subformula cache that lets the DPLL solver and the OBDD
builder reuse results across the N per-answer lineages of a multi-answer
query (Section 6.1's "N Boolean queries" view) — plus the component-sliced,
process-parallel marginal drivers built on that cache
(:mod:`repro.perf.parallel`).
"""

from repro.perf.cache import CacheStats, SubformulaCache, canonical_key
from repro.perf.parallel import (
    DEFAULT_MIN_PARALLEL_COST,
    parallel_marginals,
    sliced_marginals,
    solve_slice,
)

__all__ = [
    "CacheStats",
    "SubformulaCache",
    "canonical_key",
    "DEFAULT_MIN_PARALLEL_COST",
    "parallel_marginals",
    "sliced_marginals",
    "solve_slice",
]
