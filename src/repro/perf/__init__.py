"""Performance infrastructure: cross-call caches and work counters.

The inference engines each memoise within a single call; this package holds
the state that is worth keeping *between* calls — most importantly the
canonical-key subformula cache that lets the DPLL solver and the OBDD
builder reuse results across the N per-answer lineages of a multi-answer
query (Section 6.1's "N Boolean queries" view).
"""

from repro.perf.cache import CacheStats, SubformulaCache, canonical_key

__all__ = [
    "CacheStats",
    "SubformulaCache",
    "canonical_key",
]
