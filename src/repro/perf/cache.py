"""Canonical-key subformula cache shared across inference calls.

The DPLL solver (:func:`repro.lineage.exact.dnf_probability`) and the OBDD
builder (:func:`repro.lineage.obdd.build_obdd`) both memoise per call, but a
multi-answer query (the "N Boolean queries" view of Section 6.1) solves N
structurally similar DNFs back to back and the per-call memos forget
everything in between. :class:`SubformulaCache` is the cross-call store: a
bounded LRU map from a *canonical* subformula key to its probability (or
compiled OBDD structure), with hit/miss/eviction counters so benchmarks can
report a hit-rate.

Keys are made rename-invariant by :func:`canonical_key`: variables are
relabelled ``0..k-1`` in a deterministic order, and the key records the full
clause structure over the new labels together with the per-label probability
vector. Two formulas mapping to the same key are therefore identical up to a
probability-preserving renaming, so sharing the cached value is always sound
— renaming hurts only the hit-rate, never correctness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence


@dataclass
class CacheStats:
    """Counter triple for one :class:`SubformulaCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of :meth:`SubformulaCache.get` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """``hits / lookups``; 0.0 before the first lookup."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict:
        """Plain-dict view for JSON benchmark reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class SubformulaCache:
    """Bounded LRU cache keyed by canonical subformula descriptions.

    Operations are thread-safe (one lock around the LRU map and counters):
    the query service shares a warm cache across concurrent requests, where
    an unguarded ``move_to_end`` racing an eviction would otherwise raise.

    Examples
    --------
    >>> cache = SubformulaCache(max_entries=2)
    >>> cache.put("a", 0.5)
    >>> cache.get("a")
    0.5
    >>> cache.get("b") is None
    True
    >>> cache.put("b", 0.25); cache.put("c", 0.75)   # evicts "a"
    >>> cache.get("a") is None
    True
    >>> (cache.stats.hits, cache.stats.misses, cache.stats.evictions)
    (1, 2, 1)
    """

    __slots__ = ("max_entries", "stats", "_entries", "_lock")

    def __init__(self, max_entries: int = 200_000) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable):
        """Cached value for *key*, or ``None``; counts the hit or miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert (or refresh) a binding, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def entries(self) -> list[tuple[Hashable, object]]:
        """All ``(key, value)`` bindings, LRU-first (picklable snapshot).

        The export half of worker-cache merging: a worker process solves its
        components against a fresh cache, ships the entries back, and the
        caller folds them in with :meth:`merge`.
        """
        with self._lock:
            return list(self._entries.items())

    def merge(self, entries: Iterable[tuple[Hashable, object]]) -> None:
        """Fold another cache's :meth:`entries` into this one.

        Existing bindings win (keys are canonical, so both sides would hold
        the same value anyway); new bindings count as ordinary inserts and
        respect the LRU bound. Stats counters are unaffected except for
        evictions.
        """
        for key, value in entries:
            with self._lock:
                known = key in self._entries
            if not known:
                self.put(key, value)


def canonical_key(
    clauses: Iterable[frozenset[int]], probs: Sequence[float]
) -> tuple:
    """Rename-invariant key for a positive DNF over integer variable ids.

    Variables are relabelled in ascending ``(probability, id)`` order; the key
    is the sorted clause structure over the new labels plus the probability
    vector. Equal keys imply equal probability (the key is a complete
    description of the formula up to variable renaming), so a cache keyed this
    way can never return a wrong answer — at worst a renaming that the
    deterministic tie-break does not recognise costs a hit.

    Examples
    --------
    >>> a = [frozenset({0, 1}), frozenset({1, 2})]
    >>> b = [frozenset({5, 7}), frozenset({7, 9})]   # same shape, new names
    >>> pa = [0.1, 0.2, 0.3]
    >>> pb = {5: 0.1, 7: 0.2, 9: 0.3}
    >>> canonical_key(a, pa) == canonical_key(b, pb)
    True
    >>> canonical_key(a, [0.1, 0.2, 0.4]) == canonical_key(a, pa)
    False
    """
    variables = sorted({v for c in clauses for v in c})
    prob_of = probs.__getitem__  # works for sequences and id-keyed mappings
    ranked = sorted(variables, key=lambda v: (prob_of(v), v))
    relabel = {v: i for i, v in enumerate(ranked)}
    shape = tuple(
        sorted(tuple(sorted(relabel[v] for v in c)) for c in clauses)
    )
    weights = tuple(prob_of(v) for v in ranked)
    return (shape, weights)
