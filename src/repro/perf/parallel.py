"""Component-sliced, process-parallel final inference.

The marginals of a multi-answer query are independent solves, and the
And-Or network of a Fig. 5-style workload splits into one connected
component per head value once ε — a constant that correlates nothing — is
set aside. This module exploits both facts:

* :func:`sliced_marginals` groups the requested nodes by connected
  component (:meth:`~repro.core.network.AndOrNetwork.components`), extracts
  each needed component once
  (:meth:`~repro.core.network.AndOrNetwork.extract_component`), and solves
  every component with the cheapest applicable engine: the batched
  tree-propagation kernel when the component is tree-factorable, one
  clique-tree calibration shared by all of the component's targets when its
  elimination width is small, and the DPLL path (against a shared
  :class:`~repro.perf.SubformulaCache`) beyond. The expensive per-answer
  width estimation of the serial path is replaced by one *early-exit*
  min-degree pass per component (:func:`estimate_component`), which stops
  the moment the width budget is exceeded.
* :func:`parallel_marginals` fans the extracted components out over a
  process pool driven by the fault-tolerant
  :func:`repro.resilience.pool.run_chunks` dispatcher: components are
  chunked by estimated cost (longest-processing-time-first over the
  factor-table sizes the elimination pass produced), each worker solves its
  chunk against a fresh subformula cache, and the workers' cache entries
  are merged back into the caller's cache — the canonical keys are
  rename-invariant, so entries survive the component id-remap. Worker
  crashes, stuck workers (per-dispatch *timeout*), and poisoned results
  retry on a fresh pool and finally requeue to the in-process serial path,
  so one dead worker never loses its chunk. A cost threshold keeps small
  workloads on the serial path, so tiny queries never pay pool startup.

Exactness is unaffected throughout: every path computes the same marginals
as :func:`repro.core.inference.compute_marginal` on the full network
(``tests/perf/test_parallel.py`` cross-checks against the serial oracle and
brute force).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.core.inference import (
    VE_WIDTH_LIMIT,
    _dpll_marginal,
    compute_marginal,
    eliminate,
    network_factors,
    reduce_evidence,
)
from repro.core.junction import _elimination_cliques, calibrate_clique_tree
from repro.core.network import EPSILON, AndOrNetwork, ComponentSlice
from repro.core.treeprop import is_tree_factorable, tree_marginals_array
from repro.errors import CapacityError
from repro.obs.trace import Tracer, current_tracer
from repro.obs.trace import span as _span
from repro.perf.cache import SubformulaCache
from repro.resilience.faults import apply_fault
from repro.resilience.pool import run_chunks

__all__ = [
    "ComponentWork",
    "estimate_component",
    "group_by_component",
    "solve_slice",
    "sliced_marginals",
    "parallel_marginals",
    "DEFAULT_MIN_PARALLEL_COST",
]

#: Estimated total cost (factor-table entries touched) below which
#: :func:`parallel_marginals` stays serial: pool startup plus pickling costs
#: on the order of tens of milliseconds, so fanning out cheaper workloads
#: than this loses wall-clock.
DEFAULT_MIN_PARALLEL_COST = 250_000

#: Cost charged per factor when a component blows the width budget and will
#: go to the DPLL engine (whose true cost is structure-, not width-, bound):
#: the table size of a width-budget clique.
_WIDE_FACTOR_COST = 2 ** (VE_WIDTH_LIMIT + 2)


@dataclass
class ComponentWork:
    """One component's share of a marginals request."""

    slice: ComponentSlice
    #: Requested nodes, in slice-local ids.
    targets: list[int]
    #: Estimated solve cost in factor-table entries (scheduling only).
    cost: float
    #: Width-probe verdict, forwarded to :func:`solve_slice` so the probe
    #: runs once per component, not once per grouping *and* once per solve.
    narrow: bool = True


def estimate_component(net: AndOrNetwork, limit: int = VE_WIDTH_LIMIT):
    """Early-exit width probe: is the network's elimination width ≤ *limit*?

    Runs a min-degree greedy elimination over the ternary-decomposed factor
    graph, abandoning the pass the moment every remaining variable's degree
    exceeds *limit* — on wide components this exits within a few
    eliminations instead of paying the full quadratic pass that dominated
    the serial per-answer profile. Returns ``(narrow, cost)`` where *cost*
    estimates the solve in factor-table entries: the sum of elimination
    clique sizes ``2^(degree+1)`` when narrow, a per-factor DPLL proxy when
    wide.
    """
    factors = network_factors(net)
    adj: dict[int, set[int]] = {}
    for f in factors:
        for v in f.vars:
            adj.setdefault(v, set()).update(w for w in f.vars if w != v)
    heap = [(len(nbrs), v) for v, nbrs in adj.items()]
    heapq.heapify(heap)
    cost = 0.0
    while heap:
        degree, v = heapq.heappop(heap)
        nbrs = adj.get(v)
        if nbrs is None:
            continue  # already eliminated
        if len(nbrs) != degree:
            heapq.heappush(heap, (len(nbrs), v))  # stale entry; re-rank
            continue
        if degree > limit:
            # the *minimum* degree exceeds the budget: this greedy order
            # (our width estimator, as in ``induced_width``) is over budget
            return False, len(factors) * _WIDE_FACTOR_COST
        cost += float(2 ** (degree + 1))
        nbr_list = list(nbrs)
        for i, a in enumerate(nbr_list):
            sa = adj[a]
            for b in nbr_list[i + 1 :]:
                if b not in sa:
                    sa.add(b)
                    adj[b].add(a)
        for w in nbr_list:
            wn = adj[w]
            wn.discard(v)
            heapq.heappush(heap, (len(wn), w))
        del adj[v]
    return True, cost


def group_by_component(
    net: AndOrNetwork, nodes, limit: int = VE_WIDTH_LIMIT
) -> list[ComponentWork]:
    """Group requested node ids by connected component, one slice each.

    ε is skipped (its marginal is 1 by definition); every other node lands
    in exactly one :class:`ComponentWork` with the component extracted once
    and the node translated to its slice-local id.
    """
    components = net.components()
    by_label: dict[int, list[int]] = {}
    for v in dict.fromkeys(nodes):
        if v == EPSILON:
            continue
        by_label.setdefault(components.of(v), []).append(v)
    works: list[ComponentWork] = []
    for targets in by_label.values():
        part = net.extract_component(targets[0])
        narrow, cost = estimate_component(part.network, limit)
        works.append(
            ComponentWork(
                part, [part.to_sub(v) for v in targets], cost, narrow
            )
        )
    return works


def solve_slice(
    subnet: AndOrNetwork,
    targets,
    engine: str = "auto",
    dpll_max_calls: int = 5_000_000,
    cache: SubformulaCache | None = None,
    narrow: bool | None = None,
    budget=None,
) -> dict[int, float]:
    """Marginals of *targets* (slice-local ids) within one component.

    *engine* mirrors :func:`repro.core.inference.compute_marginal`:
    ``"auto"`` picks batched tree propagation for tree-factorable
    components, variable elimination when the width probe stays within
    :data:`~repro.core.inference.VE_WIDTH_LIMIT` (one shared clique-tree
    calibration when the component carries several targets, a single
    evidence-reduced elimination when it carries one), and the cache-backed
    DPLL beyond (falling back to variable elimination if DNF compilation
    blows up); ``"ve"`` forces the elimination paths, ``"dpll"`` the DPLL
    path. *narrow* optionally forwards an already-computed
    :func:`estimate_component` verdict so the probe is not repeated.
    *budget* is an optional :class:`~repro.resilience.QueryBudget` threaded
    into every backend's cooperative checkpoints (its ``max_width`` also
    overrides the width-probe limit when the probe runs here).
    """
    if engine not in ("auto", "ve", "dpll"):
        raise ValueError(f"unknown inference engine {engine!r}")
    targets = [t for t in targets]
    if budget is not None:
        budget.checkpoint("solve_slice")
    with _span(
        "solve_slice", nodes=len(subnet), targets=len(targets)
    ) as sp:
        if engine == "auto" and is_tree_factorable(subnet):
            sp.annotate(path="tree")
            arr = tree_marginals_array(subnet, check=False, budget=budget)
            return {t: float(arr[t]) for t in targets}
        if engine != "dpll":
            if narrow is None:
                limit = (
                    VE_WIDTH_LIMIT
                    if budget is None
                    else budget.width_limit(VE_WIDTH_LIMIT)
                )
                narrow, _ = estimate_component(subnet, limit)
            if engine == "ve" or narrow:
                factors = network_factors(subnet)
                real = [t for t in targets if t != EPSILON]
                if len(real) == 1:
                    # the common sliced shape — one answer per component: a
                    # single evidence-reduced elimination beats calibrating a
                    # whole clique tree (two full message passes) for one read
                    sp.annotate(path="ve")
                    reduced = [
                        reduce_evidence(f, {real[0]: 1}) for f in factors
                    ]
                    out = {t: 1.0 for t in targets}
                    out[real[0]] = float(
                        eliminate(reduced, budget=budget).table
                    )
                    return out
                sp.annotate(path="junction")
                tree = calibrate_clique_tree(
                    factors, _elimination_cliques(factors), budget=budget
                )
                return {
                    t: 1.0 if t == EPSILON else tree.marginal(t)
                    for t in targets
                }
        sp.annotate(path="dpll")
        out: dict[int, float] = {}
        for t in targets:
            if t == EPSILON:
                out[t] = 1.0
                continue
            try:
                out[t] = _dpll_marginal(
                    subnet, t, dpll_max_calls, cache, budget
                )
            except CapacityError:
                # DNF blow-up: retry with plain variable elimination, exactly
                # the serial path's fallback.
                sp.add("ve_fallbacks")
                out[t] = compute_marginal(
                    subnet, t, "ve", dpll_max_calls, budget=budget
                )
        return out


def _merge_back(
    out: dict[int, float], work: ComponentWork, solved: dict[int, float]
) -> None:
    for sub, prob in solved.items():
        out[work.slice.to_orig(sub)] = prob


def sliced_marginals(
    net: AndOrNetwork,
    nodes,
    engine: str = "auto",
    dpll_max_calls: int = 5_000_000,
    cache: SubformulaCache | None = None,
    budget=None,
) -> dict[int, float]:
    """Marginals of *nodes*, solving each connected component exactly once.

    The serial half of the parallel layer (and the fallback
    :func:`parallel_marginals` takes for small workloads): same grouping and
    per-component engines, no process pool. A fresh subformula cache is
    created when the caller does not supply one, so the per-component DPLL
    solves still share work within the call.
    """
    out = {EPSILON: 1.0}
    if cache is None:
        cache = SubformulaCache()
    with _span("sliced_marginals", engine=engine) as sp:
        works = group_by_component(net, nodes)
        sp.add("components", len(works))
        for work in works:
            solved = solve_slice(
                work.slice.network,
                work.targets,
                engine,
                dpll_max_calls,
                cache,
                narrow=work.narrow,
                budget=budget,
            )
            _merge_back(out, work, solved)
    return out


def _chunk_by_cost(
    works: list[ComponentWork], chunks: int
) -> list[list[int]]:
    """LPT bin packing: indices of *works* split into ≤ *chunks* bins."""
    bins: list[tuple[float, list[int]]] = [(0.0, []) for _ in range(chunks)]
    heap = [(0.0, i) for i in range(chunks)]
    heapq.heapify(heap)
    order = sorted(
        range(len(works)), key=lambda i: works[i].cost, reverse=True
    )
    for i in order:
        load, b = heapq.heappop(heap)
        bins[b][1].append(i)
        heapq.heappush(heap, (load + works[i].cost, b))
    return [members for _, members in bins if members]


def _solve_chunk(payload):
    """Worker entry point: solve a list of (subnet, targets) tasks.

    Returns the per-task marginal dicts, the worker's subformula-cache
    entries (canonical keys are rename-invariant, so the caller's merge-back
    stays valid across the component id-remaps and across workers), and —
    when the dispatching process had a tracer active — the worker's span
    forest, which the caller grafts under its dispatch span so a
    ``workers=2`` run still renders as one timeline. The chunk's injected
    fault, if any, fires first (chaos tests only).
    """
    (tasks, engine, dpll_max_calls, traced,
     budget, chunk, attempt, fault_plan) = payload
    fault = None if fault_plan is None else fault_plan.for_chunk(chunk, attempt)
    poison = apply_fault(fault)
    if budget is not None:
        budget = budget.start()
    cache = SubformulaCache()

    def solve_all():
        return [
            solve_slice(
                subnet, targets, engine, dpll_max_calls, cache, narrow,
                budget=budget,
            )
            for subnet, targets, narrow in tasks
        ]

    if traced:
        with Tracer() as tracer:
            with tracer.span("worker_chunk", tasks=len(tasks)):
                solved = solve_all()
        spans = tracer.roots
    else:
        solved = solve_all()
        spans = []
    if poison:
        solved = [{t: math.nan for t in d} for d in solved]
    return solved, cache.entries(), spans


def _validate_marginals(result) -> str | None:
    """Reject chunk results carrying non-finite marginals (NaN poisoning)."""
    solved_list, _entries, _spans = result
    for solved in solved_list:
        for prob in solved.values():
            if not math.isfinite(prob):
                return "poisoned_result"
    return None


def parallel_marginals(
    net: AndOrNetwork,
    nodes,
    *,
    workers: int | None = None,
    engine: str = "auto",
    dpll_max_calls: int = 5_000_000,
    cache: SubformulaCache | None = None,
    min_parallel_cost: float = DEFAULT_MIN_PARALLEL_COST,
    chunks_per_worker: int = 4,
    registry=None,
    budget=None,
    timeout: float | None = None,
    max_retries: int = 2,
    fault_plan=None,
) -> dict[int, float]:
    """Marginals of *nodes* with component-parallel process fan-out.

    With ``workers`` unset (or < 2), or when the components' total estimated
    cost stays under *min_parallel_cost*, or when there is only one
    component, this is exactly :func:`sliced_marginals` — small workloads
    never pay pool startup. Otherwise the component slices are packed into
    ``workers * chunks_per_worker`` cost-balanced chunks and dispatched
    through the fault-tolerant :func:`repro.resilience.pool.run_chunks`;
    worker cache entries are merged back into *cache* afterwards, so later
    queries sharing the caller's cache still benefit from the fan-out's
    work.

    Fault tolerance: a worker crash (``BrokenProcessPool``), a chunk
    exceeding the per-dispatch *timeout*, or a poisoned (non-finite) result
    retries the chunk on a fresh pool up to *max_retries* rounds, then
    requeues it to the in-process serial path — so a dead or stuck worker
    degrades throughput, never correctness. *fault_plan* is a
    :class:`~repro.resilience.faults.FaultPlan` injecting deterministic
    failures for the chaos suite. *budget* is an optional
    :class:`~repro.resilience.QueryBudget` threaded into the workers (as a
    remaining-deadline copy) and the serial paths.

    *registry* is an optional :class:`~repro.obs.metrics.MetricsRegistry`
    recording the pool's scheduling decisions: worker and chunk counts,
    chunk-size/cost histograms (``pool.chunk_tasks``, ``pool.chunk_cost``),
    one ``pool.serial_fallback.<reason>`` counter per serial fallback
    (``no_workers``, ``single_component``, ``below_cost_threshold``), and
    the dispatcher's retry accounting (``pool.chunk_failure.<reason>``,
    ``pool.worker_crashes``, ``pool.timeouts``, ``pool.requeued_serial``).
    A tracer active on the calling thread
    (:class:`~repro.obs.trace.Tracer`) additionally makes the workers trace
    their solves and ship the span forests back, merged under this call's
    dispatch span.

    Worker failures still propagate: an
    :class:`~repro.errors.InferenceError` raised in a worker (e.g. the DPLL
    call budget) is retried, requeued, and finally re-raised by the serial
    path — matching the serial oracle exactly.
    """
    if engine not in ("auto", "ve", "dpll"):
        raise ValueError(f"unknown inference engine {engine!r}")
    if budget is not None:
        budget = budget.start()
    works = group_by_component(net, nodes)
    total_cost = sum(w.cost for w in works)
    if workers is None or workers < 2:
        fallback_reason = "no_workers"
    elif len(works) < 2:
        fallback_reason = "single_component"
    elif total_cost < min_parallel_cost:
        fallback_reason = "below_cost_threshold"
    else:
        fallback_reason = None
    with _span(
        "parallel_marginals",
        engine=engine,
        components=len(works),
        total_cost=total_cost,
    ) as sp:
        if registry is not None:
            registry.gauge("pool.components", len(works))
            registry.gauge("pool.total_cost", total_cost)
        if fallback_reason is not None:
            sp.annotate(mode="serial", fallback_reason=fallback_reason)
            if registry is not None:
                registry.inc(f"pool.serial_fallback.{fallback_reason}")
            out = {EPSILON: 1.0}
            if cache is None:
                cache = SubformulaCache()
            for work in works:
                solved = solve_slice(
                    work.slice.network,
                    work.targets,
                    engine,
                    dpll_max_calls,
                    cache,
                    narrow=work.narrow,
                    budget=budget,
                )
                _merge_back(out, work, solved)
            return out
        chunks = _chunk_by_cost(works, workers * chunks_per_worker)
        sp.annotate(mode="parallel", workers=workers, chunks=len(chunks))
        if registry is not None:
            registry.gauge("pool.workers", workers)
            registry.inc("pool.dispatches")
            registry.inc("pool.chunks", len(chunks))
            for members in chunks:
                registry.observe("pool.chunk_tasks", len(members))
                registry.observe(
                    "pool.chunk_cost", sum(works[i].cost for i in members)
                )
        tracer = current_tracer()
        out = {EPSILON: 1.0}
        if cache is None:
            cache = SubformulaCache()

        def chunk_tasks(members):
            return [
                (works[i].slice.network, works[i].targets, works[i].narrow)
                for i in members
            ]

        def payload_fn(index, attempt):
            return (
                chunk_tasks(chunks[index]),
                engine,
                dpll_max_calls,
                tracer is not None,
                None if budget is None else budget.for_worker(),
                index,
                attempt,
                fault_plan,
            )

        def serial_fn(index):
            solved = [
                solve_slice(
                    subnet, targets, engine, dpll_max_calls, cache, narrow,
                    budget=budget,
                )
                for subnet, targets, narrow in chunk_tasks(chunks[index])
            ]
            return solved, [], []

        outcomes = run_chunks(
            _solve_chunk,
            payload_fn,
            len(chunks),
            workers=workers,
            serial_fn=serial_fn,
            timeout=timeout,
            max_retries=max_retries,
            validate=_validate_marginals,
            registry=registry,
        )
        for index, chunk_outcome in enumerate(outcomes):
            solved_list, entries, worker_spans = chunk_outcome.result
            for i, solved in zip(chunks[index], solved_list):
                _merge_back(out, works[i], solved)
            if entries:
                cache.merge(entries)
            if worker_spans and tracer is not None:
                tracer.attach(worker_spans, under=sp.span)
        return out
