"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type at an API boundary. Subclasses distinguish the layer that
failed: schema/data problems, query-language problems, planning problems, and
inference problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relation, attribute, or arity was used inconsistently."""


class ProbabilityError(ReproError):
    """A probability value fell outside ``[0, 1]`` or a distribution is invalid."""


class QuerySyntaxError(ReproError):
    """A conjunctive query string could not be parsed."""


class QuerySemanticsError(ReproError):
    """A parsed query is structurally invalid (e.g. self-joins, unknown relation)."""


class PlanError(ReproError):
    """A query plan is malformed or inconsistent with the database schema."""


class UnsafePlanError(PlanError):
    """Raised when a safe plan was requested for a non-hierarchical query."""


class InferenceError(ReproError):
    """Exact or approximate inference failed (e.g. treewidth budget exceeded)."""


class CapacityError(ReproError):
    """An exhaustive computation was attempted on an instance that is too large."""
